//! Property-based tests for the core IR: expression evaluation, value
//! encodings, and the textual round-trip over randomly generated specs.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::{EvalCtx, Expr};
use ccr_core::ids::{RemoteId, StateId, VarId};
use ccr_core::process::{
    Branch, CommAction, Peer, Process, ProtocolSpec, State, StateKind, VarDecl,
};
use ccr_core::text::{parse, to_text};
use ccr_core::value::{Env, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        (-100i64..100).prop_map(Value::Int),
        (0u32..8).prop_map(|n| Value::Node(RemoteId(n))),
        (0u64..256).prop_map(Value::Mask),
    ]
}

fn arb_expr(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_value().prop_map(Expr::Const),
        Just(Expr::SelfId),
        (0..nvars.max(1)).prop_map(|v| Expr::Var(VarId(v as u32))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Ne(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mod(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::MaskHas(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::MaskAdd(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::MaskDel(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Expr::MaskIsEmpty(Box::new(a))),
            inner.clone().prop_map(|a| Expr::MaskFirst(Box::new(a))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

proptest! {
    /// Evaluation is total modulo `CoreError` (never panics) and
    /// deterministic.
    #[test]
    fn eval_is_total_and_deterministic(
        e in arb_expr(2),
        vals in proptest::collection::vec(arb_value(), 2),
        self_id in proptest::option::of(0u32..4),
    ) {
        let env = Env::new(vals);
        let ctx = EvalCtx { env: &env, self_id: self_id.map(RemoteId) };
        let a = e.eval(ctx);
        let b = e.eval(ctx);
        prop_assert_eq!(a, b);
    }

    /// Successful evaluations are stable under unrelated env growth... and
    /// mask operations agree with a reference set implementation.
    #[test]
    fn mask_ops_match_reference_sets(m in 0u64..256, n in 0u32..8) {
        let env = Env::new(vec![]);
        let ctx = EvalCtx { env: &env, self_id: None };
        let mexp = Expr::mask(m);
        let nexp = Expr::node(RemoteId(n));
        let mut set: std::collections::BTreeSet<u32> =
            (0..8).filter(|i| m & (1 << i) != 0).collect();

        let has = Expr::MaskHas(Box::new(mexp.clone()), Box::new(nexp.clone()));
        prop_assert_eq!(has.eval(ctx).unwrap(), Value::Bool(set.contains(&n)));

        let add = Expr::MaskAdd(Box::new(mexp.clone()), Box::new(nexp.clone()));
        set.insert(n);
        let expect: u64 = set.iter().map(|i| 1u64 << i).sum();
        prop_assert_eq!(add.eval(ctx).unwrap(), Value::Mask(expect));

        set.remove(&n);
        let del = Expr::MaskDel(Box::new(mexp.clone()), Box::new(nexp));
        let expect: u64 = set.iter().map(|i| 1u64 << i).sum();
        prop_assert_eq!(del.eval(ctx).unwrap(), Value::Mask(expect & !(1 << n)));

        let empty = Expr::MaskIsEmpty(Box::new(mexp.clone()));
        prop_assert_eq!(empty.eval(ctx).unwrap(), Value::Bool(m == 0));

        if m != 0 {
            let first = Expr::MaskFirst(Box::new(mexp));
            prop_assert_eq!(
                first.eval(ctx).unwrap(),
                Value::Node(RemoteId(m.trailing_zeros()))
            );
        }
    }

    /// Value encodings are injective.
    #[test]
    fn value_encoding_is_injective(a in arb_value(), b in arb_value()) {
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        a.encode(&mut ea);
        b.encode(&mut eb);
        prop_assert_eq!(a == b, ea == eb);
    }

    /// `Value::decode` inverts `encode`, reports the exact byte count
    /// consumed, and ignores trailing garbage.
    #[test]
    fn value_decode_roundtrips(
        v in arb_value(),
        suffix in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let mut bytes = Vec::new();
        v.encode(&mut bytes);
        let encoded_len = bytes.len();
        bytes.extend_from_slice(&suffix);
        let (decoded, used) = Value::decode(&bytes).expect("well-formed encoding");
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, encoded_len);
    }

    /// `Value::decode` is total on arbitrary bytes: it either rejects with
    /// `None` or yields a value whose re-encoding decodes back to itself.
    #[test]
    fn value_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        if let Some((v, used)) = Value::decode(&bytes) {
            prop_assert!(used <= bytes.len());
            let mut re = Vec::new();
            v.encode(&mut re);
            let (v2, _) = Value::decode(&re).expect("re-encoded value decodes");
            prop_assert_eq!(v2, v);
        }
    }

    /// `add_mod` keeps results in `[0, m)`.
    #[test]
    fn add_mod_stays_in_range(x in -50i64..50, y in -50i64..50, m in 1i64..20) {
        let env = Env::new(vec![]);
        let ctx = EvalCtx { env: &env, self_id: None };
        let e = Expr::add_mod(Expr::int(x), Expr::int(y), m);
        let v = e.eval(ctx).unwrap().as_int().unwrap();
        prop_assert!((0..m).contains(&v));
    }
}

// ---------------------------------------------------------------------------
// Textual round-trip over random specs
// ---------------------------------------------------------------------------

const STATE_NAMES: [&str; 4] = ["A", "B", "C", "D"];
const VAR_NAMES: [&str; 3] = ["x", "y", "z"];
const MSG_NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

fn arb_guard(nvars: usize) -> impl Strategy<Value = Option<Expr>> {
    proptest::option::of(arb_expr(nvars))
}

fn arb_assigns(nvars: usize) -> impl Strategy<Value = Vec<(VarId, Expr)>> {
    proptest::collection::vec(
        ((0..nvars.max(1)).prop_map(|v| VarId(v as u32)), arb_expr(nvars)),
        0..2,
    )
}

/// Generates a structurally well-formed (not necessarily §2.4-valid) spec
/// for exercising the textual round-trip: every reference is in range and
/// names are unique, which is all the round-trip requires.
fn arb_spec() -> impl Strategy<Value = ProtocolSpec> {
    (1..=3usize, 0..=2usize, 0..=2usize, 1..=3usize, 1..=3usize, any::<u64>()).prop_flat_map(
        |(nm, hv, rv, hs, rs, seed)| {
            let home_branches = proptest::collection::vec(
                arb_home_branch(nm, hv, hs),
                proptest::collection::SizeRange::from(1..=2),
            );
            let remote_branches = proptest::collection::vec(
                arb_remote_branch(nm, rv, rs),
                proptest::collection::SizeRange::from(1..=2),
            );
            (
                proptest::collection::vec(home_branches, hs..=hs),
                proptest::collection::vec(remote_branches, rs..=rs),
            )
                .prop_map(move |(hbs, rbs)| assemble_spec(nm, hv, rv, hbs, rbs, seed))
        },
    )
}

fn arb_home_branch(nm: usize, nv: usize, ns: usize) -> impl Strategy<Value = Branch> {
    let action = prop_oneof![
        // recv_any with optional binds
        (0..nm, proptest::option::of(0..nv.max(1)), proptest::option::of(0..nv.max(1))).prop_map(
            move |(m, sb, pb)| CommAction::Recv {
                from: Peer::AnyRemote {
                    bind: if nv == 0 { None } else { sb.map(|v| VarId(v as u32)) }
                },
                msg: ccr_core::ids::MsgType(m as u32),
                bind: if nv == 0 { None } else { pb.map(|v| VarId(v as u32)) },
            }
        ),
        // send to a node expression
        (0..nm, arb_expr(nv), proptest::option::of(arb_expr(nv))).prop_map(|(m, peer, pl)| {
            CommAction::Send {
                to: Peer::Remote(peer),
                msg: ccr_core::ids::MsgType(m as u32),
                payload: pl,
            }
        }),
    ];
    (arb_guard(nv), action, arb_assigns(nv), 0..ns, proptest::option::of("[a-z]{1,4}")).prop_map(
        |(guard, action, assigns, tgt, tag)| Branch {
            guard,
            action,
            assigns,
            target: StateId(tgt as u32),
            tag,
        },
    )
}

fn arb_remote_branch(nm: usize, nv: usize, ns: usize) -> impl Strategy<Value = Branch> {
    let action = prop_oneof![
        Just(CommAction::Tau),
        (0..nm, proptest::option::of(arb_expr(nv))).prop_map(|(m, pl)| CommAction::Send {
            to: Peer::Home,
            msg: ccr_core::ids::MsgType(m as u32),
            payload: pl,
        }),
        (0..nm, proptest::option::of(0..nv.max(1))).prop_map(move |(m, b)| CommAction::Recv {
            from: Peer::Home,
            msg: ccr_core::ids::MsgType(m as u32),
            bind: if nv == 0 { None } else { b.map(|v| VarId(v as u32)) },
        }),
    ];
    (arb_guard(nv), action, arb_assigns(nv), 0..ns, proptest::option::of("[a-z]{1,4}")).prop_map(
        |(guard, action, assigns, tgt, tag)| Branch {
            guard,
            action,
            assigns,
            target: StateId(tgt as u32),
            tag,
        },
    )
}

fn assemble_spec(
    nm: usize,
    hv: usize,
    rv: usize,
    home_branches: Vec<Vec<Branch>>,
    remote_branches: Vec<Vec<Branch>>,
    seed: u64,
) -> ProtocolSpec {
    let mut msgs = ccr_core::ids::SymbolTable::new();
    for name in MSG_NAMES.iter().take(nm) {
        msgs.intern(name);
    }
    let mk_vars = |n: usize, seed: u64| -> Vec<VarDecl> {
        (0..n)
            .map(|i| VarDecl {
                name: VAR_NAMES[i].to_string(),
                init: match (seed >> i) % 3 {
                    0 => Value::Int(((seed >> (i * 2)) % 7) as i64),
                    1 => Value::Node(RemoteId(((seed >> i) % 4) as u32)),
                    _ => Value::Mask(seed % 16),
                },
            })
            .collect()
    };
    let mk_states = |branches: Vec<Vec<Branch>>, seed: u64| -> Vec<State> {
        branches
            .into_iter()
            .enumerate()
            .map(|(i, brs)| {
                // Internal states must hold only taus; keep it simple by
                // making everything a communication state except when all
                // branches are taus and the seed says so.
                let all_tau = brs.iter().all(|b| b.action.is_tau());
                let kind = if all_tau && (seed >> i) & 1 == 1 {
                    StateKind::Internal
                } else {
                    StateKind::Communication
                };
                State { name: STATE_NAMES[i].to_string(), kind, branches: brs }
            })
            .collect()
    };
    ProtocolSpec {
        name: "fuzzed".to_string(),
        home: Process {
            name: "home".to_string(),
            states: mk_states(home_branches, seed),
            vars: mk_vars(hv, seed),
            initial: StateId(0),
        },
        remote: Process {
            name: "remote".to_string(),
            states: mk_states(remote_branches, seed.rotate_left(8)),
            vars: mk_vars(rv, seed.rotate_left(16)),
            initial: StateId(0),
        },
        msgs,
    }
}

/// Branch targets generated above may exceed the actual state count when
/// proptest shrinks; clamp them so the rendered text resolves.
fn clamp_targets(spec: &mut ProtocolSpec) {
    let hn = spec.home.states.len() as u32;
    for st in &mut spec.home.states {
        for br in &mut st.branches {
            br.target = StateId(br.target.0 % hn);
        }
    }
    let rn = spec.remote.states.len() as u32;
    for st in &mut spec.remote.states {
        for br in &mut st.branches {
            br.target = StateId(br.target.0 % rn);
        }
    }
}

/// Variable references inside generated expressions may exceed the real
/// var count; rewrite them into range (or to a constant when there are no
/// vars at all).
fn clamp_expr(e: &mut Expr, nvars: usize) {
    match e {
        Expr::Var(v) => {
            if nvars == 0 {
                *e = Expr::int(0);
            } else {
                *v = VarId(v.0 % nvars as u32);
            }
        }
        Expr::Const(_) | Expr::SelfId => {}
        Expr::Not(a) | Expr::MaskIsEmpty(a) | Expr::MaskFirst(a) => clamp_expr(a, nvars),
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mod(a, b)
        | Expr::MaskHas(a, b)
        | Expr::MaskAdd(a, b)
        | Expr::MaskDel(a, b) => {
            clamp_expr(a, nvars);
            clamp_expr(b, nvars);
        }
    }
}

fn clamp_vars(spec: &mut ProtocolSpec) {
    for (p, n) in [(&mut spec.home, 0usize), (&mut spec.remote, 0usize)] {
        let n = if n == 0 { p.vars.len() } else { n };
        for st in &mut p.states {
            for br in &mut st.branches {
                if let Some(g) = &mut br.guard {
                    clamp_expr(g, n);
                }
                match &mut br.action {
                    CommAction::Send { to, payload, .. } => {
                        if let Peer::Remote(e) = to {
                            clamp_expr(e, n);
                        }
                        if let Some(e) = payload {
                            clamp_expr(e, n);
                        }
                    }
                    CommAction::Recv { from, bind, .. } => {
                        if let Peer::AnyRemote { bind: sb } = from {
                            if let Some(v) = sb {
                                if n == 0 {
                                    *sb = None;
                                } else {
                                    *v = VarId(v.0 % n as u32);
                                }
                            }
                        }
                        if let Some(v) = bind {
                            if n == 0 {
                                *bind = None;
                            } else {
                                *v = VarId(v.0 % n as u32);
                            }
                        }
                    }
                    CommAction::Tau => {}
                }
                for (v, e) in &mut br.assigns {
                    if n == 0 {
                        br.guard = br.guard.take(); // no-op; assigns removed below
                    } else {
                        *v = VarId(v.0 % n as u32);
                    }
                    clamp_expr(e, n);
                }
                if n == 0 {
                    br.assigns.clear();
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    /// Any structurally well-formed spec round-trips exactly through the
    /// textual front end.
    #[test]
    fn text_round_trip(mut spec in arb_spec()) {
        clamp_targets(&mut spec);
        clamp_vars(&mut spec);
        let text = to_text(&spec);
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n---\n{text}"));
        prop_assert_eq!(parsed, spec, "\n---\n{}", text);
    }
}

#[test]
fn builder_spec_round_trips_too() {
    // Sanity: a builder-made spec passes through the same machinery.
    let mut b = ProtocolBuilder::new("sanity");
    let m = b.msg("alpha");
    let h = b.home_state("A");
    b.home(h).recv_any(m).goto(h);
    let r = b.remote_state("A");
    b.remote(r).send(m).goto(r);
    let spec = b.finish().unwrap();
    assert_eq!(parse(&to_text(&spec)).unwrap(), spec);
}
