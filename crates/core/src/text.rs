//! Textual front end: a CSP-like concrete syntax for protocol specs.
//!
//! The paper's methodology (§2.3) has users *write* the rendezvous protocol
//! in CSP notation with direct addressing. This module provides that
//! surface: [`to_text`] renders a [`ProtocolSpec`] into a canonical textual
//! form and [`parse`] reads it back; `parse(to_text(s)) == s` for every
//! valid spec (round-trip tested, including property-based tests).
//!
//! # Grammar
//!
//! ```text
//! protocol  := "protocol" IDENT "{" msgs? home remote "}"
//! msgs      := "messages" IDENT ("," IDENT)* ";"
//! home      := "home" "{" decl* state* "}"
//! remote    := "remote" "{" decl* state* "}"
//! decl      := "var" IDENT ":" kind ":=" literal ";"
//! kind      := "node" | "int" | "bool" | "mask" | "unit"
//! state     := ("state" | "internal") IDENT "init"? "{" branch* "}"
//! branch    := ("when" expr)? action tag? payload? assigns? "->" IDENT ";"
//! action    := "tau"
//!            | "h" ("?" | "!") IDENT
//!            | "r" "(" peer ")" ("?" | "!") IDENT
//! peer      := "*" | "*" "->" IDENT | expr
//! tag       := "#" IDENT
//! payload   := "(" (expr | "bind" IDENT) ")"
//! assigns   := "{" (IDENT ":=" expr ";")* "}"
//! expr      := or; standard precedence with fully parenthesized output
//! atom      := INT | "true" | "false" | "self" | "r" INT | IDENT
//!            | "(" expr ")" | "mask" "(" INT ")"
//!            | ("empty" | "first") "(" expr ")"
//!            | ("has" | "madd" | "mdel") "(" expr "," expr ")"
//! ```
//!
//! A receive's payload binding is written `(bind x)`; a send's payload is
//! an expression `(e)`.

use crate::error::{CoreError, Result};
use crate::expr::Expr;
use crate::ids::{MsgType, RemoteId, StateId, SymbolTable, VarId};
use crate::process::{Branch, CommAction, Peer, Process, ProtocolSpec, State, StateKind, VarDecl};
use crate::value::Value;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Renders `spec` into the canonical textual form accepted by [`parse`].
pub fn to_text(spec: &ProtocolSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "protocol {} {{", spec.name);
    if !spec.msgs.is_empty() {
        let names: Vec<&str> = spec.msgs.iter().map(|(_, n)| n).collect();
        let _ = writeln!(out, "  messages {};", names.join(", "));
    }
    render_process(spec, &spec.home, "home", &mut out);
    render_process(spec, &spec.remote, "remote", &mut out);
    out.push_str("}\n");
    out
}

fn render_process(spec: &ProtocolSpec, p: &Process, label: &str, out: &mut String) {
    let _ = writeln!(out, "  {label} {{");
    for v in &p.vars {
        let (kind, lit) = render_literal(v.init);
        let _ = writeln!(out, "    var {}: {kind} := {lit};", v.name);
    }
    for (si, st) in p.states.iter().enumerate() {
        let kw = match st.kind {
            StateKind::Communication => "state",
            StateKind::Internal => "internal",
        };
        let init = if si == p.initial.index() { " init" } else { "" };
        let _ = writeln!(out, "    {kw} {}{init} {{", st.name);
        for br in &st.branches {
            let _ = writeln!(out, "      {}", render_branch(spec, p, br));
        }
        let _ = writeln!(out, "    }}");
    }
    let _ = writeln!(out, "  }}");
}

fn render_literal(v: Value) -> (&'static str, String) {
    match v {
        Value::Unit => ("unit", "()".to_string()),
        Value::Bool(b) => ("bool", b.to_string()),
        Value::Int(i) => ("int", i.to_string()),
        Value::Node(r) => ("node", format!("r{}", r.0)),
        Value::Mask(m) => ("mask", format!("mask({m})")),
    }
}

fn var_name(p: &Process, v: VarId) -> String {
    p.vars.get(v.index()).map(|d| d.name.clone()).unwrap_or_else(|| format!("?v{}", v.0))
}

fn render_branch(spec: &ProtocolSpec, p: &Process, br: &Branch) -> String {
    let mut s = String::new();
    if let Some(g) = &br.guard {
        let _ = write!(s, "when {} ", render_expr(p, g));
    }
    match &br.action {
        CommAction::Tau => {
            s.push_str("tau");
            if let Some(t) = &br.tag {
                let _ = write!(s, " #{t}");
            }
        }
        CommAction::Send { to, msg, payload } => {
            match to {
                Peer::Home => s.push('h'),
                Peer::Remote(e) => {
                    let _ = write!(s, "r({})", render_expr(p, e));
                }
                Peer::AnyRemote { .. } => s.push_str("r(*)"),
            }
            let _ = write!(s, " ! {}", spec.msg_name(*msg));
            if let Some(t) = &br.tag {
                let _ = write!(s, " #{t}");
            }
            if let Some(e) = payload {
                let _ = write!(s, " ({})", render_expr(p, e));
            }
        }
        CommAction::Recv { from, msg, bind } => {
            match from {
                Peer::Home => s.push('h'),
                Peer::Remote(e) => {
                    let _ = write!(s, "r({})", render_expr(p, e));
                }
                Peer::AnyRemote { bind: None } => s.push_str("r(*)"),
                Peer::AnyRemote { bind: Some(v) } => {
                    let _ = write!(s, "r(* -> {})", var_name(p, *v));
                }
            }
            let _ = write!(s, " ? {}", spec.msg_name(*msg));
            if let Some(t) = &br.tag {
                let _ = write!(s, " #{t}");
            }
            if let Some(v) = bind {
                let _ = write!(s, " (bind {})", var_name(p, *v));
            }
        }
    }
    if !br.assigns.is_empty() {
        s.push_str(" { ");
        for (v, e) in &br.assigns {
            let _ = write!(s, "{} := {}; ", var_name(p, *v), render_expr(p, e));
        }
        s.push('}');
    }
    let target = p.state(br.target).map(|t| t.name.as_str()).unwrap_or("?");
    let _ = write!(s, " -> {target};");
    s
}

fn render_expr(p: &Process, e: &Expr) -> String {
    match e {
        Expr::Const(Value::Unit) => "unitlit".into(),
        Expr::Const(Value::Bool(b)) => b.to_string(),
        Expr::Const(Value::Int(i)) => i.to_string(),
        Expr::Const(Value::Node(r)) => format!("r{}", r.0),
        Expr::Const(Value::Mask(m)) => format!("mask({m})"),
        Expr::Var(v) => var_name(p, *v),
        Expr::SelfId => "self".into(),
        Expr::Not(a) => format!("!({})", render_expr(p, a)),
        Expr::And(a, b) => format!("({} && {})", render_expr(p, a), render_expr(p, b)),
        Expr::Or(a, b) => format!("({} || {})", render_expr(p, a), render_expr(p, b)),
        Expr::Eq(a, b) => format!("({} == {})", render_expr(p, a), render_expr(p, b)),
        Expr::Ne(a, b) => format!("({} != {})", render_expr(p, a), render_expr(p, b)),
        Expr::Lt(a, b) => format!("({} < {})", render_expr(p, a), render_expr(p, b)),
        Expr::Add(a, b) => format!("({} + {})", render_expr(p, a), render_expr(p, b)),
        Expr::Sub(a, b) => format!("({} - {})", render_expr(p, a), render_expr(p, b)),
        Expr::Mod(a, b) => format!("({} % {})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskHas(a, b) => format!("has({}, {})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskAdd(a, b) => format!("madd({}, {})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskDel(a, b) => format!("mdel({}, {})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskIsEmpty(a) => format!("empty({})", render_expr(p, a)),
        Expr::MaskFirst(a) => format!("first({})", render_expr(p, a)),
    }
}

// ---------------------------------------------------------------------------
// Lexing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
    Eof,
}

struct Lexer {
    toks: Vec<(Tok, usize)>, // token + line (pre-scanned by the process parser)
    pos: usize,
}

const PUNCTS: [&str; 20] = [
    "->", ":=", "==", "!=", "&&", "||", "{", "}", "(", ")", ",", ";", ":", "?", "!", "*", "#", "<",
    "%", "+",
];

fn lex(src: &str) -> Result<Lexer> {
    let mut toks = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                toks.push((Tok::Punct(p), line));
                i += p.len();
                continue 'outer;
            }
        }
        if c == '-' || c.is_ascii_digit() {
            let start = i;
            if c == '-' {
                i += 1;
                if !(i < bytes.len() && (bytes[i] as char).is_ascii_digit()) {
                    toks.push((Tok::Punct("-"), line));
                    continue;
                }
            }
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let n: i64 = src[start..i]
                .parse()
                .map_err(|_| CoreError::Builder(format!("line {line}: bad integer")))?;
            toks.push((Tok::Int(n), line));
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push((Tok::Ident(src[start..i].to_string()), line));
            continue;
        }
        return Err(CoreError::Builder(format!("line {line}: unexpected character {c:?}")));
    }
    toks.push((Tok::Eof, line));
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &'static str) -> Result<()> {
        match self.next() {
            Tok::Punct(q) if q == p => Ok(()),
            other => Err(CoreError::Builder(format!(
                "line {}: expected `{p}`, found {other:?}",
                self.line()
            ))),
        }
    }

    fn try_punct(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(CoreError::Builder(format!(
                "line {}: expected identifier, found {other:?}",
                self.line()
            ))),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let line = self.line();
        match self.next() {
            Tok::Ident(s) if s == kw => Ok(()),
            other => {
                Err(CoreError::Builder(format!("line {line}: expected `{kw}`, found {other:?}")))
            }
        }
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn int(&mut self) -> Result<i64> {
        match self.next() {
            Tok::Int(n) => Ok(n),
            other => Err(CoreError::Builder(format!(
                "line {}: expected integer, found {other:?}",
                self.line()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses the textual form back into a [`ProtocolSpec`]. The result is
/// *not* automatically validated; run [`crate::validate::validate`] (or use
/// [`parse_validated`]).
pub fn parse(src: &str) -> Result<ProtocolSpec> {
    let mut lx = lex(src)?;
    lx.keyword("protocol")?;
    let name = lx.ident()?;
    lx.eat_punct("{")?;

    let mut msgs = SymbolTable::new();
    if lx.try_keyword("messages") {
        loop {
            let m = lx.ident()?;
            msgs.intern(&m);
            if !lx.try_punct(",") {
                break;
            }
        }
        lx.eat_punct(";")?;
    }

    lx.keyword("home")?;
    let home = parse_process(&mut lx, "home", true, &mut msgs)?;
    lx.keyword("remote")?;
    let remote = parse_process(&mut lx, "remote", false, &mut msgs)?;
    lx.eat_punct("}")?;
    if lx.peek() != &Tok::Eof {
        return Err(CoreError::Builder(format!(
            "line {}: trailing input after protocol",
            lx.line()
        )));
    }
    Ok(ProtocolSpec { name, home, remote, msgs })
}

/// Parses and validates in one step.
pub fn parse_validated(src: &str) -> Result<ProtocolSpec> {
    let spec = parse(src)?;
    crate::validate::validate(&spec)?;
    Ok(spec)
}

struct Names {
    vars: Vec<String>,
    states: Vec<String>,
}

impl Names {
    fn var(&self, name: &str, line: usize) -> Result<VarId> {
        self.vars
            .iter()
            .position(|v| v == name)
            .map(|i| VarId(i as u32))
            .ok_or_else(|| CoreError::Builder(format!("line {line}: unknown variable `{name}`")))
    }

    fn state(&mut self, name: &str) -> StateId {
        if let Some(i) = self.states.iter().position(|s| s == name) {
            StateId(i as u32)
        } else {
            self.states.push(name.to_string());
            StateId((self.states.len() - 1) as u32)
        }
    }
}

fn parse_process(
    lx: &mut Lexer,
    pname: &str,
    is_home: bool,
    msgs: &mut SymbolTable,
) -> Result<Process> {
    lx.eat_punct("{")?;
    let mut vars: Vec<VarDecl> = Vec::new();
    while lx.try_keyword("var") {
        let name = lx.ident()?;
        lx.eat_punct(":")?;
        let kind = lx.ident()?;
        // '=' is not a punct; we reuse `:=`? No: grammar uses '='. Accept
        // either `=` via ident-free path: we lex `==` as one token, so a
        // single `=` never appears. Use `:=` instead in the canonical form?
        // The renderer emits `=`; add it here by accepting `==`? To keep the
        // lexer simple the canonical form uses `:=` for declarations too.
        lx.eat_punct(":=")?;
        let init = parse_literal(lx, &kind)?;
        lx.eat_punct(";")?;
        vars.push(VarDecl { name, init });
    }
    let mut names =
        Names { vars: vars.iter().map(|v| v.name.clone()).collect(), states: Vec::new() };
    // Pre-scan the block for state declarations so that StateIds follow
    // declaration order (matching the builder), not first-mention order —
    // forward references like `-> GS;` would otherwise renumber states.
    {
        let mut depth = 1usize;
        let mut i = lx.pos;
        while depth > 0 && i < lx.toks.len() {
            match &lx.toks[i].0 {
                Tok::Punct("{") => depth += 1,
                Tok::Punct("}") => depth -= 1,
                Tok::Ident(kw) if depth == 1 && (kw == "state" || kw == "internal") => {
                    if let Some((Tok::Ident(name), _)) = lx.toks.get(i + 1) {
                        names.state(name);
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let mut parsed: Vec<(StateId, State, bool)> = Vec::new();
    loop {
        let kind = if lx.try_keyword("state") {
            StateKind::Communication
        } else if lx.try_keyword("internal") {
            StateKind::Internal
        } else {
            break;
        };
        let sname = lx.ident()?;
        let sid = names.state(&sname);
        let is_init = lx.try_keyword("init");
        lx.eat_punct("{")?;
        let mut branches = Vec::new();
        while !lx.try_punct("}") {
            branches.push(parse_branch(lx, is_home, msgs, &mut names)?);
        }
        parsed.push((sid, State { name: sname, kind, branches }, is_init));
    }
    lx.eat_punct("}")?;

    // Assemble states in id order; forward references created placeholder
    // ids, so every id must be defined exactly once.
    let mut states: Vec<Option<State>> = vec![None; names.states.len()];
    let mut initial = None;
    for (sid, st, is_init) in parsed {
        if states[sid.index()].is_some() {
            return Err(CoreError::Builder(format!("{pname}: duplicate state `{}`", st.name)));
        }
        if is_init {
            if initial.is_some() {
                return Err(CoreError::Builder(format!("{pname}: two init states")));
            }
            initial = Some(sid);
        }
        states[sid.index()] = Some(st);
    }
    let states: Vec<State> = states
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            s.ok_or_else(|| {
                CoreError::Builder(format!(
                    "{pname}: state `{}` referenced but never defined",
                    names.states[i]
                ))
            })
        })
        .collect::<Result<_>>()?;
    let initial = initial.ok_or_else(|| CoreError::Builder(format!("{pname}: no `init` state")))?;
    Ok(Process { name: pname.to_string(), states, vars, initial })
}

fn parse_literal(lx: &mut Lexer, kind: &str) -> Result<Value> {
    let line = lx.line();
    match kind {
        "int" => Ok(Value::Int(lx.int()?)),
        "bool" => {
            if lx.try_keyword("true") {
                Ok(Value::Bool(true))
            } else if lx.try_keyword("false") {
                Ok(Value::Bool(false))
            } else {
                Err(CoreError::Builder(format!("line {line}: expected bool literal")))
            }
        }
        "node" => {
            let id = lx.ident()?;
            parse_node_name(&id, line).map(Value::Node)
        }
        "mask" => {
            lx.keyword("mask")?;
            lx.eat_punct("(")?;
            let m = lx.int()?;
            lx.eat_punct(")")?;
            Ok(Value::Mask(m as u64))
        }
        "unit" => {
            lx.eat_punct("(")?;
            lx.eat_punct(")")?;
            Ok(Value::Unit)
        }
        other => Err(CoreError::Builder(format!("line {line}: unknown kind `{other}`"))),
    }
}

fn parse_node_name(id: &str, line: usize) -> Result<RemoteId> {
    if let Some(num) = id.strip_prefix('r') {
        if let Ok(n) = num.parse::<u32>() {
            return Ok(RemoteId(n));
        }
    }
    Err(CoreError::Builder(format!("line {line}: expected node literal like `r0`, got `{id}`")))
}

fn parse_branch(
    lx: &mut Lexer,
    is_home: bool,
    msgs: &mut SymbolTable,
    names: &mut Names,
) -> Result<Branch> {
    let guard = if lx.try_keyword("when") { Some(parse_expr(lx, names)?) } else { None };

    let line = lx.line();
    let mut tag = None;
    let action = if lx.try_keyword("tau") {
        if lx.try_punct("#") {
            tag = Some(lx.ident()?);
        }
        CommAction::Tau
    } else if lx.try_keyword("h") {
        if is_home {
            return Err(CoreError::Builder(format!("line {line}: `h` peer inside home")));
        }
        parse_comm(lx, Peer::Home, msgs, names, &mut tag)?
    } else if lx.try_keyword("r") {
        lx.eat_punct("(")?;
        let peer = if lx.try_punct("*") {
            let bind = if lx.try_punct("->") {
                let v = lx.ident()?;
                Some(names.var(&v, line)?)
            } else {
                None
            };
            Peer::AnyRemote { bind }
        } else {
            Peer::Remote(parse_expr(lx, names)?)
        };
        lx.eat_punct(")")?;
        parse_comm(lx, peer, msgs, names, &mut tag)?
    } else {
        return Err(CoreError::Builder(format!(
            "line {line}: expected an action (tau / h / r), found {:?}",
            lx.peek()
        )));
    };

    let mut assigns = Vec::new();
    if lx.try_punct("{") {
        while !lx.try_punct("}") {
            let line = lx.line();
            let v = lx.ident()?;
            let vid = names.var(&v, line)?;
            lx.eat_punct(":=")?;
            let e = parse_expr(lx, names)?;
            lx.eat_punct(";")?;
            assigns.push((vid, e));
        }
    }
    lx.eat_punct("->")?;
    let target_name = lx.ident()?;
    let target = names.state(&target_name);
    lx.eat_punct(";")?;
    Ok(Branch { guard, action, assigns, target, tag })
}

fn parse_comm(
    lx: &mut Lexer,
    peer: Peer,
    msgs: &mut SymbolTable,
    names: &mut Names,
    tag: &mut Option<String>,
) -> Result<CommAction> {
    let line = lx.line();
    let is_send = if lx.try_punct("!") {
        true
    } else if lx.try_punct("?") {
        false
    } else {
        return Err(CoreError::Builder(format!("line {line}: expected `!` or `?`")));
    };
    let mname = lx.ident()?;
    let msg = MsgType(msgs.intern(&mname));
    if lx.try_punct("#") {
        *tag = Some(lx.ident()?);
    }
    if is_send {
        let payload = if lx.try_punct("(") {
            let e = parse_expr(lx, names)?;
            lx.eat_punct(")")?;
            Some(e)
        } else {
            None
        };
        Ok(CommAction::Send { to: peer, msg, payload })
    } else {
        let bind = if lx.try_punct("(") {
            lx.keyword("bind")?;
            let line = lx.line();
            let v = lx.ident()?;
            lx.eat_punct(")")?;
            Some(names.var(&v, line)?)
        } else {
            None
        };
        Ok(CommAction::Recv { from: peer, msg, bind })
    }
}

// Expression parsing with standard precedence.
fn parse_expr(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    parse_or(lx, names)
}

fn parse_or(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    let mut e = parse_and(lx, names)?;
    while lx.try_punct("||") {
        let rhs = parse_and(lx, names)?;
        e = Expr::Or(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn parse_and(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    let mut e = parse_cmp(lx, names)?;
    while lx.try_punct("&&") {
        let rhs = parse_cmp(lx, names)?;
        e = Expr::And(Box::new(e), Box::new(rhs));
    }
    Ok(e)
}

fn parse_cmp(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    let e = parse_arith(lx, names)?;
    if lx.try_punct("==") {
        let rhs = parse_arith(lx, names)?;
        Ok(Expr::Eq(Box::new(e), Box::new(rhs)))
    } else if lx.try_punct("!=") {
        let rhs = parse_arith(lx, names)?;
        Ok(Expr::Ne(Box::new(e), Box::new(rhs)))
    } else if lx.try_punct("<") {
        let rhs = parse_arith(lx, names)?;
        Ok(Expr::Lt(Box::new(e), Box::new(rhs)))
    } else {
        Ok(e)
    }
}

fn parse_arith(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    let mut e = parse_unary(lx, names)?;
    loop {
        if lx.try_punct("+") {
            let rhs = parse_unary(lx, names)?;
            e = Expr::Add(Box::new(e), Box::new(rhs));
        } else if lx.try_punct("-") {
            let rhs = parse_unary(lx, names)?;
            e = Expr::Sub(Box::new(e), Box::new(rhs));
        } else if lx.try_punct("%") {
            let rhs = parse_unary(lx, names)?;
            e = Expr::Mod(Box::new(e), Box::new(rhs));
        } else {
            return Ok(e);
        }
    }
}

fn parse_unary(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    if lx.try_punct("!") {
        let e = parse_unary(lx, names)?;
        return Ok(Expr::Not(Box::new(e)));
    }
    parse_atom(lx, names)
}

fn parse_atom(lx: &mut Lexer, names: &Names) -> Result<Expr> {
    let line = lx.line();
    if lx.try_punct("(") {
        let e = parse_expr(lx, names)?;
        lx.eat_punct(")")?;
        return Ok(e);
    }
    match lx.next() {
        Tok::Int(n) => Ok(Expr::int(n)),
        Tok::Ident(id) => match id.as_str() {
            "true" => Ok(Expr::bool(true)),
            "false" => Ok(Expr::bool(false)),
            "self" => Ok(Expr::SelfId),
            "unitlit" => Ok(Expr::Const(Value::Unit)),
            "mask" => {
                lx.eat_punct("(")?;
                let m = lx.int()?;
                lx.eat_punct(")")?;
                Ok(Expr::mask(m as u64))
            }
            "empty" => {
                lx.eat_punct("(")?;
                let e = parse_expr(lx, names)?;
                lx.eat_punct(")")?;
                Ok(Expr::MaskIsEmpty(Box::new(e)))
            }
            "first" => {
                lx.eat_punct("(")?;
                let e = parse_expr(lx, names)?;
                lx.eat_punct(")")?;
                Ok(Expr::MaskFirst(Box::new(e)))
            }
            "has" | "madd" | "mdel" => {
                lx.eat_punct("(")?;
                let a = parse_expr(lx, names)?;
                lx.eat_punct(",")?;
                let b = parse_expr(lx, names)?;
                lx.eat_punct(")")?;
                Ok(match id.as_str() {
                    "has" => Expr::MaskHas(Box::new(a), Box::new(b)),
                    "madd" => Expr::MaskAdd(Box::new(a), Box::new(b)),
                    _ => Expr::MaskDel(Box::new(a), Box::new(b)),
                })
            }
            other => {
                // A node literal (`r0`) or a variable name.
                if let Ok(node) = parse_node_name(other, line) {
                    if names.vars.iter().all(|v| v != other) {
                        return Ok(Expr::node(node));
                    }
                }
                names.var(other, line).map(Expr::Var)
            }
        },
        other => {
            Err(CoreError::Builder(format!("line {line}: expected expression, found {other:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::validate::validate;

    fn token_spec() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let rq = b.remote_state("RQ");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).tau().tag("acquire").goto(rq);
        b.remote(rq).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn token_round_trips() {
        let spec = token_spec();
        let text = to_text(&spec);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(parsed, spec, "round-trip must be exact\n---\n{text}");
        validate(&parsed).unwrap();
    }

    #[test]
    fn rendered_text_is_stable() {
        let spec = token_spec();
        let text = to_text(&spec);
        let text2 = to_text(&parse(&text).unwrap());
        assert_eq!(text, text2);
    }

    #[test]
    fn parse_reports_unknown_variable() {
        let src = "protocol p { home { state H init { r(*) ? m (bind nope) -> H; } } remote { state R init { h ! m -> R; } } }";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("unknown variable"), "{err}");
    }

    #[test]
    fn parse_reports_missing_init() {
        let src = "protocol p { home { state H { r(*) ? m -> H; } } remote { state R init { h ! m -> R; } } }";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("no `init` state"), "{err}");
    }

    #[test]
    fn parse_reports_undefined_state() {
        let src = "protocol p { home { state H init { r(*) ? m -> GONE; } } remote { state R init { h ! m -> R; } } }";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("never defined"), "{err}");
    }

    #[test]
    fn parse_handles_comments_and_whitespace() {
        let src = r#"
// the smallest protocol
protocol p {
  messages m;
  home {
    state H init { r(*) ? m -> H; } // serve forever
  }
  remote {
    state R init { h ! m -> R; }
  }
}
"#;
        let spec = parse_validated(src).unwrap();
        assert_eq!(spec.name, "p");
        assert_eq!(spec.msgs.len(), 1);
    }

    #[test]
    fn expressions_round_trip_via_branch_guards() {
        let mut b = ProtocolBuilder::new("x");
        let m = b.msg("m");
        let s = b.home_var("s", Value::Mask(0));
        let d = b.home_var("d", Value::Int(0));
        let h = b.home_state("H");
        let guard = Expr::And(
            Box::new(Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(s)))))),
            Box::new(Expr::Lt(Box::new(Expr::Var(d)), Box::new(Expr::int(3)))),
        );
        b.home(h)
            .when(guard)
            .recv_any(m)
            .assign(s, Expr::MaskAdd(Box::new(Expr::Var(s)), Box::new(Expr::node(RemoteId(1)))))
            .assign(d, Expr::add_mod(Expr::Var(d), Expr::int(1), 4))
            .goto(h);
        b.home(h).recv_any(m).goto(h);
        let r = b.remote_state("R");
        b.remote(r).send(m).payload(Expr::SelfId).goto(r);
        let spec = b.finish_unchecked().unwrap();
        let text = to_text(&spec);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, spec, "\n{text}");
    }

    #[test]
    fn migratory_like_spec_round_trips_with_tags() {
        let mut b = ProtocolBuilder::new("tagged");
        let m = b.msg("m");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r = b.remote_state("R");
        let r2 = b.remote_state("R2");
        b.remote(r).tau().tag("evict").goto(r2);
        b.remote(r2).send(m).goto(r);
        let spec = b.finish().unwrap();
        let text = to_text(&spec);
        assert!(text.contains("#evict"));
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn node_literal_vs_variable_disambiguation() {
        // A variable named `r1` shadows the node literal.
        let src = r#"
protocol p {
  home {
    var r1: int := 5;
    state H init { when (r1 == 5) r(*) ? m -> H; }
  }
  remote { state R init { h ! m -> R; } }
}
"#;
        let spec = parse(src).unwrap();
        let g = spec.home.states[0].branches[0].guard.as_ref().unwrap();
        assert_eq!(*g, Expr::eq(Expr::Var(VarId(0)), Expr::int(5)));
    }
}
