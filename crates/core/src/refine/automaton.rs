//! Explicit asynchronous automata produced by the refinement.
//!
//! These automata make the transient states *visible* — rendering the home
//! automaton of the refined migratory protocol reproduces Figure 4 of the
//! paper and the remote automaton reproduces Figure 5. They are also used
//! for static analysis (counting states and message legs).

use crate::ids::StateId;
use std::fmt;

/// Which process an automaton describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The home (directory) node.
    Home,
    /// The remote template.
    Remote,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Role::Home => write!(f, "home"),
            Role::Remote => write!(f, "remote"),
        }
    }
}

/// Kind of an asynchronous control state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ANodeKind {
    /// A communication state inherited from the rendezvous protocol.
    Comm(StateId),
    /// An internal state inherited from the rendezvous protocol.
    Internal(StateId),
    /// A transient state introduced by refinement: the process has sent a
    /// request for the rendezvous `(origin state, branch)` and is awaiting
    /// an ack/nack (or the optimized reply).
    Transient {
        /// The communication state the request was issued from.
        origin: StateId,
        /// The output branch requested.
        branch: u32,
    },
}

/// A node of the asynchronous automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ANode {
    /// Display name, e.g. `"E"` or `"E~inv"` for a transient state.
    pub name: String,
    /// Classification.
    pub kind: ANodeKind,
}

/// Classification of an edge of the asynchronous automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AEdgeKind {
    /// Send a request for rendezvous (`!!msg`).
    SendReq,
    /// Receive a request and ack it (`??msg / !!ack`) — a completed
    /// rendezvous in which this process is passive.
    RecvReqAck,
    /// Receive a request without acking (request/reply-optimized input).
    RecvReqNoAck,
    /// Receive an ack completing our own request (`??ack`).
    RecvAck,
    /// Receive the optimized reply completing our own request.
    RecvReply,
    /// Receive a nack; return to the communication state (`??nack`).
    RecvNack,
    /// Home only: a request from the awaited peer acts as an implicit nack
    /// (rule R3 / Table 2 row T3).
    ImplicitNack,
    /// Remote only: a request from home arriving in a transient state is
    /// ignored (Table 1 row T3, the `h??*` self-loop of Figure 5).
    Ignore,
    /// Send a nack for an unserviceable or unbufferable request.
    SendNack,
    /// Autonomous step.
    Tau,
}

/// An edge of the asynchronous automaton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Human-readable label (uses `!!`/`??` per the paper's Figures 4–5).
    pub label: String,
    /// Classification.
    pub kind: AEdgeKind,
}

/// An explicit asynchronous automaton for one role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsyncAutomaton {
    /// Role described.
    pub role: Role,
    /// Nodes; indices are referenced by [`AEdge`].
    pub states: Vec<ANode>,
    /// Edges.
    pub edges: Vec<AEdge>,
    /// Index of the initial node.
    pub initial: usize,
}

impl AsyncAutomaton {
    /// Number of transient states introduced by refinement.
    pub fn transient_count(&self) -> usize {
        self.states.iter().filter(|s| matches!(s.kind, ANodeKind::Transient { .. })).count()
    }

    /// Finds the node index of the non-transient image of a spec state.
    pub fn node_of_spec(&self, s: StateId) -> Option<usize> {
        self.states.iter().position(|n| match n.kind {
            ANodeKind::Comm(id) | ANodeKind::Internal(id) => id == s,
            ANodeKind::Transient { .. } => false,
        })
    }

    /// Finds the transient node for an output branch, if one was created
    /// (fire-and-forget sends have none).
    pub fn transient_of(&self, origin: StateId, branch: u32) -> Option<usize> {
        self.states.iter().position(|n| {
            matches!(n.kind, ANodeKind::Transient { origin: o, branch: b } if o == origin && b == branch)
        })
    }

    /// Outgoing edges of a node.
    pub fn edges_from(&self, node: usize) -> impl Iterator<Item = &AEdge> {
        self.edges.iter().filter(move |e| e.from == node)
    }

    /// Counts edges of a given kind.
    pub fn count_edges(&self, kind: AEdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AsyncAutomaton {
        AsyncAutomaton {
            role: Role::Remote,
            states: vec![
                ANode { name: "I".into(), kind: ANodeKind::Comm(StateId(0)) },
                ANode {
                    name: "I~req".into(),
                    kind: ANodeKind::Transient { origin: StateId(0), branch: 0 },
                },
                ANode { name: "V".into(), kind: ANodeKind::Comm(StateId(1)) },
            ],
            edges: vec![
                AEdge { from: 0, to: 1, label: "h!!req".into(), kind: AEdgeKind::SendReq },
                AEdge { from: 1, to: 2, label: "h??ack".into(), kind: AEdgeKind::RecvAck },
                AEdge { from: 1, to: 0, label: "h??nack".into(), kind: AEdgeKind::RecvNack },
                AEdge { from: 1, to: 1, label: "h??*".into(), kind: AEdgeKind::Ignore },
            ],
            initial: 0,
        }
    }

    #[test]
    fn automaton_queries() {
        let a = tiny();
        assert_eq!(a.transient_count(), 1);
        assert_eq!(a.node_of_spec(StateId(1)), Some(2));
        assert_eq!(a.node_of_spec(StateId(9)), None);
        assert_eq!(a.transient_of(StateId(0), 0), Some(1));
        assert_eq!(a.transient_of(StateId(0), 1), None);
        assert_eq!(a.edges_from(1).count(), 3);
        assert_eq!(a.count_edges(AEdgeKind::RecvNack), 1);
        assert_eq!(Role::Home.to_string(), "home");
        assert_eq!(Role::Remote.to_string(), "remote");
    }
}
