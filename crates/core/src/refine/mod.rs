//! The refinement procedure (paper §3): from rendezvous to asynchronous.
//!
//! [`refine`] takes a validated [`ProtocolSpec`] and produces a
//! [`RefinedProtocol`]:
//!
//! * every rendezvous is split into a **request** and an **ack**/**nack**;
//! * a **transient state** is introduced after every output guard, where
//!   unexpected messages are absorbed (remote rules of Table 1, home rules
//!   of Table 2, and the *implicit nack* rule R3);
//! * syntactically safe `req;repl` pairs are detected (or supplied
//!   explicitly) and their acks elided — the **request/reply optimization**
//!   of §3.3;
//! * explicit per-role [`AsyncAutomaton`]s are built, suitable for DOT
//!   rendering (they regenerate Figures 4 and 5 of the paper) and for
//!   static message-cost accounting.
//!
//! The *configuration-dependent* parts of Tables 1 and 2 — the home's
//! bounded buffer with its reserved *progress* and *ack* slots, nack
//! generation under buffer pressure, and retransmission — are interpreted
//! by the executable semantics in `ccr-runtime`, which consumes the
//! annotation tables produced here.

mod automaton;
mod build;
mod reqrep;

pub use automaton::{AEdge, AEdgeKind, ANode, ANodeKind, AsyncAutomaton, Role};
pub use reqrep::{PairDirection, ReqRepPair};

use crate::error::Result;
use crate::ids::{MsgType, StateId};
use crate::process::ProtocolSpec;
use std::collections::{HashMap, HashSet};

/// How request/reply pairs are chosen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ReqRepMode {
    /// Detect all syntactically safe pairs automatically.
    #[default]
    Auto,
    /// Do not apply the optimization (every rendezvous costs req+ack).
    Off,
    /// Use exactly these `(request, reply)` pairs, failing refinement if any
    /// pair does not pass the safety check.
    Explicit(Vec<(MsgType, MsgType)>),
}

/// Options controlling refinement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineOptions {
    /// Request/reply optimization mode (§3.3).
    pub reqrep: ReqRepMode,
}

/// A branch key: `(state, branch index)`.
pub type BranchKey = (StateId, u32);

/// The result of refinement: the original spec plus everything the
/// asynchronous executor and the DOT renderer need.
#[derive(Debug, Clone)]
pub struct RefinedProtocol {
    /// The underlying rendezvous specification.
    pub spec: ProtocolSpec,
    /// Accepted request/reply pairs.
    pub pairs: Vec<ReqRepPair>,
    /// Explicit asynchronous automaton of the home node.
    pub home: AsyncAutomaton,
    /// Explicit asynchronous automaton of the remote template.
    pub remote: AsyncAutomaton,
    /// Remote `Send` branches that complete without awaiting an ack
    /// (replies of home-requested pairs, e.g. `ID` in migratory).
    pub remote_fire_forget: HashSet<BranchKey>,
    /// Home `Send` branches that complete without awaiting an ack
    /// (replies of remote-requested pairs, e.g. `gr` in migratory).
    pub home_fire_forget: HashSet<BranchKey>,
    /// Remote `Send` branches whose completion arrives as a *reply message*
    /// rather than an ack: branch → expected reply type (e.g. `req → gr`).
    pub remote_reply: HashMap<BranchKey, MsgType>,
    /// Home `Send` branches whose completion arrives as a reply message
    /// (e.g. `inv → ID`).
    pub home_reply: HashMap<BranchKey, MsgType>,
    /// Message types the home consumes without generating an ack (requests
    /// of remote-requested pairs, e.g. `req`).
    pub home_noack: HashSet<MsgType>,
    /// Message types a remote consumes without generating an ack (requests
    /// of home-requested pairs, e.g. `inv`).
    pub remote_noack: HashSet<MsgType>,
    /// Message types sent by remotes *without any completion wait at all* —
    /// the hand-designed Avalanche baseline sends `LR` this way (the paper's
    /// "dotted line" discussion in §5). Empty for derived protocols; the
    /// baseline in `ccr-protocols` populates it via
    /// [`RefinedProtocol::make_unacked`]. The home must always sink these
    /// messages: the executor buffers them with an elastic allowance instead
    /// of nacking and reports the peak occupancy.
    pub unacked: HashSet<MsgType>,
}

impl RefinedProtocol {
    /// Number of wire messages a successfully completed rendezvous on `msg`
    /// costs in the derived protocol (ignoring nacks/retries): `2` for an
    /// ordinary request+ack rendezvous, `1` when the message participates in
    /// a request/reply pair (its ack is elided).
    pub fn message_cost(&self, msg: MsgType) -> u32 {
        if self.unacked.contains(&msg) {
            return 1;
        }
        for p in &self.pairs {
            if p.req == msg || p.repl == msg {
                return 1;
            }
        }
        2
    }

    /// Looks up an accepted pair by its request message.
    pub fn pair_for_req(&self, req: MsgType) -> Option<&ReqRepPair> {
        self.pairs.iter().find(|p| p.req == req)
    }

    /// Converts remote→home rendezvous on `msg` into *unacknowledged*
    /// messages: the remote sends and proceeds immediately; the home
    /// consumes without acking and must always sink the message. This is how
    /// the hand-designed Avalanche migratory baseline treats `LR` (§5).
    /// Returns an error if `msg` is not a remote-sent message or already
    /// participates in a request/reply pair.
    pub fn make_unacked(&mut self, msg: MsgType) -> Result<()> {
        if self.pairs.iter().any(|p| p.req == msg || p.repl == msg) {
            return Err(crate::error::CoreError::ReqRepUnsafe {
                req: msg,
                repl: msg,
                reason: "message already participates in a request/reply pair".into(),
            });
        }
        let keys = send_branches(&self.spec.remote, msg);
        if keys.is_empty() {
            return Err(crate::error::CoreError::ReqRepUnsafe {
                req: msg,
                repl: msg,
                reason: "message is never sent by a remote".into(),
            });
        }
        for key in keys {
            self.remote_fire_forget.insert(key);
        }
        self.home_noack.insert(msg);
        self.unacked.insert(msg);
        Ok(())
    }

    /// Total static message cost of one instance of every rendezvous in the
    /// spec — the metric the paper's "quality" criterion (1) refers to.
    pub fn total_static_cost(&self) -> u32 {
        let mut seen = HashSet::new();
        let mut total = 0;
        for p in [&self.spec.home, &self.spec.remote] {
            for st in &p.states {
                for br in &st.branches {
                    if let Some(m) = br.action.msg() {
                        if br.action.is_send() && seen.insert(m) {
                            total += self.message_cost(m);
                        }
                    }
                }
            }
        }
        total
    }
}

/// Refines `spec` into an asynchronous protocol.
///
/// `spec` must already satisfy [`crate::validate::validate`]; this function
/// re-validates defensively and then:
///
/// 1. resolves the request/reply pairs per `opts.reqrep`;
/// 2. derives the annotation tables consumed by the executor;
/// 3. constructs the explicit per-role automata.
pub fn refine(spec: &ProtocolSpec, opts: &RefineOptions) -> Result<RefinedProtocol> {
    crate::validate::validate(spec)?;
    let pairs = reqrep::resolve_pairs(spec, &opts.reqrep)?;

    let mut remote_fire_forget = HashSet::new();
    let mut home_fire_forget = HashSet::new();
    let mut remote_reply = HashMap::new();
    let mut home_reply = HashMap::new();
    let mut home_noack = HashSet::new();
    let mut remote_noack = HashSet::new();

    for pair in &pairs {
        match pair.direction {
            PairDirection::RemoteRequests => {
                home_noack.insert(pair.req);
                for key in send_branches(&spec.remote, pair.req) {
                    remote_reply.insert(key, pair.repl);
                }
                for key in send_branches(&spec.home, pair.repl) {
                    home_fire_forget.insert(key);
                }
            }
            PairDirection::HomeRequests => {
                remote_noack.insert(pair.req);
                for key in send_branches(&spec.home, pair.req) {
                    home_reply.insert(key, pair.repl);
                }
                for key in send_branches(&spec.remote, pair.repl) {
                    remote_fire_forget.insert(key);
                }
            }
        }
    }

    let annotations = build::Annotations {
        remote_fire_forget: &remote_fire_forget,
        home_fire_forget: &home_fire_forget,
        remote_reply: &remote_reply,
        home_reply: &home_reply,
        home_noack: &home_noack,
        remote_noack: &remote_noack,
    };
    let home = build::build_automaton(spec, Role::Home, &annotations);
    let remote = build::build_automaton(spec, Role::Remote, &annotations);

    Ok(RefinedProtocol {
        spec: spec.clone(),
        pairs,
        home,
        remote,
        remote_fire_forget,
        home_fire_forget,
        remote_reply,
        home_reply,
        home_noack,
        remote_noack,
        unacked: HashSet::new(),
    })
}

/// All `Send` branches of `p` carrying message `msg`.
fn send_branches(p: &crate::process::Process, msg: MsgType) -> Vec<BranchKey> {
    let mut out = Vec::new();
    for (sidx, st) in p.states.iter().enumerate() {
        for (bidx, br) in st.branches.iter().enumerate() {
            if let crate::process::CommAction::Send { msg: m, .. } = &br.action {
                if *m == msg {
                    out.push((StateId(sidx as u32), bidx as u32));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;

    /// Remote asks home for a token (`req`), home replies `gr`; remote
    /// releases with `rel` (plain rendezvous). `req/gr` should be detected
    /// as a request/reply pair; `rel` should not.
    fn token_spec() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", crate::value::Value::Node(crate::ids::RemoteId(0)));

        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(crate::expr::Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, crate::expr::Expr::Var(o)).goto(f);

        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn detects_req_gr_pair_and_costs() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        assert_eq!(refined.pairs.len(), 1);
        let p = &refined.pairs[0];
        assert_eq!(spec.msg_name(p.req), "req");
        assert_eq!(spec.msg_name(p.repl), "gr");
        assert_eq!(p.direction, PairDirection::RemoteRequests);
        assert_eq!(refined.message_cost(p.req), 1);
        assert_eq!(refined.message_cost(p.repl), 1);
        let rel = spec.msg_by_name("rel").unwrap();
        assert_eq!(refined.message_cost(rel), 2);
        // req(1) + gr(1) + rel(2)
        assert_eq!(refined.total_static_cost(), 4);
    }

    #[test]
    fn off_mode_disables_pairs() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
        assert!(refined.pairs.is_empty());
        assert_eq!(refined.total_static_cost(), 6);
        assert!(refined.home_noack.is_empty());
        assert!(refined.home_fire_forget.is_empty());
    }

    #[test]
    fn annotation_tables_are_consistent() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let req = spec.msg_by_name("req").unwrap();
        let gr = spec.msg_by_name("gr").unwrap();
        assert!(refined.home_noack.contains(&req));
        // The remote's single req-send branch expects gr as its completion.
        assert_eq!(refined.remote_reply.len(), 1);
        assert!(refined.remote_reply.values().all(|&m| m == gr));
        // The home's gr-send is fire-and-forget.
        assert_eq!(refined.home_fire_forget.len(), 1);
        assert!(refined.remote_noack.is_empty());
        assert!(refined.home_reply.is_empty());
    }

    #[test]
    fn explicit_mode_rejects_unsafe_pair() {
        let spec = token_spec();
        let req = spec.msg_by_name("req").unwrap();
        let rel = spec.msg_by_name("rel").unwrap();
        let opts = RefineOptions { reqrep: ReqRepMode::Explicit(vec![(rel, req)]) };
        assert!(refine(&spec, &opts).is_err());
    }

    #[test]
    fn pair_for_req_lookup() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let req = spec.msg_by_name("req").unwrap();
        let rel = spec.msg_by_name("rel").unwrap();
        assert!(refined.pair_for_req(req).is_some());
        assert!(refined.pair_for_req(rel).is_none());
    }
}
