//! Detection and checking of request/reply pairs (paper §3.3).
//!
//! A pair `(q, p)` qualifies in one of two directions:
//!
//! * **RemoteRequests** (`req/gr` in migratory): the remote sends `q` and
//!   the home answers `p`. Safe when (a) every remote output of `q` is
//!   immediately followed by a passive state whose *only* guard is
//!   `h?p`, and (b) every home output of `p` is *reply-dominated* by an
//!   input of `q` from the same peer — on every path leading to the send,
//!   the most recent interaction with that peer is the `q` input, with no
//!   intervening communication addressed to it and no reassignment of the
//!   peer designator.
//! * **HomeRequests** (`inv/ID` in migratory): the home sends `q` and the
//!   remote answers `p`. Safe when (a) every remote input of `q` leads
//!   through internal states only to an active state whose single output is
//!   `p`, and (b) every home output of `q` targets a state that offers an
//!   unguarded input of `p` from the same peer.
//!
//! Peer designators are compared *textually* (same expression). This is a
//! deliberate, documented under-approximation: textually distinct variables
//! are assumed to denote distinct peers, exactly as the paper's informal
//! side condition assumes. The executable semantics assert at run time that
//! a fire-and-forget reply always finds its addressee waiting, and the
//! simulation checker in `ccr-mc` verifies Equation 1 over the full state
//! space, so an unsound pair cannot survive verification silently.

use super::ReqRepMode;
use crate::error::{CoreError, Result};
use crate::ids::{MsgType, StateId};
use crate::process::{CommAction, Peer, Process, ProtocolSpec, StateKind};
use std::collections::HashSet;

/// Who initiates the optimized request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PairDirection {
    /// The remote sends the request; the home sends the reply (`req/gr`).
    RemoteRequests,
    /// The home sends the request; the remote sends the reply (`inv/ID`).
    HomeRequests,
}

/// An accepted request/reply pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqRepPair {
    /// The request message.
    pub req: MsgType,
    /// The reply message, which doubles as the ack of the request.
    pub repl: MsgType,
    /// Who requests.
    pub direction: PairDirection,
}

/// Resolves the pair set according to `mode`.
pub fn resolve_pairs(spec: &ProtocolSpec, mode: &ReqRepMode) -> Result<Vec<ReqRepPair>> {
    match mode {
        ReqRepMode::Off => Ok(Vec::new()),
        ReqRepMode::Auto => Ok(detect_pairs(spec)),
        ReqRepMode::Explicit(list) => {
            let mut out = Vec::new();
            for &(req, repl) in list {
                match classify_pair(spec, req, repl) {
                    Some(p) => out.push(p),
                    None => {
                        return Err(CoreError::ReqRepUnsafe {
                            req,
                            repl,
                            reason: format!(
                                "pair ({}, {}) fails the syntactic safety conditions of §3.3",
                                spec.msg_name(req),
                                spec.msg_name(repl)
                            ),
                        })
                    }
                }
            }
            check_disjoint(spec, &out)?;
            Ok(out)
        }
    }
}

fn check_disjoint(spec: &ProtocolSpec, pairs: &[ReqRepPair]) -> Result<()> {
    let mut seen = HashSet::new();
    for p in pairs {
        if !seen.insert(p.req) || !seen.insert(p.repl) {
            return Err(CoreError::ReqRepUnsafe {
                req: p.req,
                repl: p.repl,
                reason: format!(
                    "message {} or {} participates in more than one pair",
                    spec.msg_name(p.req),
                    spec.msg_name(p.repl)
                ),
            });
        }
    }
    Ok(())
}

/// Auto-detects all safe pairs, greedily and deterministically (message-id
/// order), never reusing a message in two pairs.
pub fn detect_pairs(spec: &ProtocolSpec) -> Vec<ReqRepPair> {
    let nmsgs = spec.msgs.len() as u32;
    let mut used: HashSet<MsgType> = HashSet::new();
    let mut out = Vec::new();
    for qi in 0..nmsgs {
        let q = MsgType(qi);
        if used.contains(&q) {
            continue;
        }
        for pi in 0..nmsgs {
            let p = MsgType(pi);
            if p == q || used.contains(&p) {
                continue;
            }
            if let Some(pair) = classify_pair(spec, q, p) {
                used.insert(q);
                used.insert(p);
                out.push(pair);
                break;
            }
        }
    }
    out
}

/// Checks whether `(q, p)` is a safe pair in either direction.
pub fn classify_pair(spec: &ProtocolSpec, q: MsgType, p: MsgType) -> Option<ReqRepPair> {
    if remote_requests_safe(spec, q, p) {
        return Some(ReqRepPair { req: q, repl: p, direction: PairDirection::RemoteRequests });
    }
    if home_requests_safe(spec, q, p) {
        return Some(ReqRepPair { req: q, repl: p, direction: PairDirection::HomeRequests });
    }
    None
}

fn sends_of(p: &Process, msg: MsgType) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for (si, st) in p.states.iter().enumerate() {
        for (bi, br) in st.branches.iter().enumerate() {
            if matches!(&br.action, CommAction::Send { msg: m, .. } if *m == msg) {
                v.push((si, bi));
            }
        }
    }
    v
}

fn recvs_of(p: &Process, msg: MsgType) -> Vec<(usize, usize)> {
    let mut v = Vec::new();
    for (si, st) in p.states.iter().enumerate() {
        for (bi, br) in st.branches.iter().enumerate() {
            if matches!(&br.action, CommAction::Recv { msg: m, .. } if *m == msg) {
                v.push((si, bi));
            }
        }
    }
    v
}

/// Direction purity: `q` flows remote→home and `p` home→remote only.
fn purity_remote_requests(spec: &ProtocolSpec, q: MsgType, p: MsgType) -> bool {
    sends_of(&spec.home, q).is_empty()
        && sends_of(&spec.remote, p).is_empty()
        && !sends_of(&spec.remote, q).is_empty()
        && !sends_of(&spec.home, p).is_empty()
}

fn purity_home_requests(spec: &ProtocolSpec, q: MsgType, p: MsgType) -> bool {
    sends_of(&spec.remote, q).is_empty()
        && sends_of(&spec.home, p).is_empty()
        && !sends_of(&spec.home, q).is_empty()
        && !sends_of(&spec.remote, p).is_empty()
}

/// Form A: remote sends `q`, home replies `p`.
fn remote_requests_safe(spec: &ProtocolSpec, q: MsgType, p: MsgType) -> bool {
    if !purity_remote_requests(spec, q, p) {
        return false;
    }
    // (a) every remote q-send lands in a passive state whose only branch is
    // an unguarded `h?p`.
    for (si, bi) in sends_of(&spec.remote, q) {
        let br = &spec.remote.states[si].branches[bi];
        let tgt = match spec.remote.state(br.target) {
            Some(s) => s,
            None => return false,
        };
        let sole_recv = tgt.branches.len() == 1
            && tgt.branches[0].guard.is_none()
            && matches!(
                &tgt.branches[0].action,
                CommAction::Recv { from: Peer::Home, msg, .. } if *msg == p
            );
        if !sole_recv {
            return false;
        }
    }
    // (b) every home p-send is reply-dominated by a q-recv from the same peer.
    for (si, bi) in sends_of(&spec.home, p) {
        if !home_send_reply_dominated(spec, si, bi, q) {
            return false;
        }
    }
    true
}

/// Form B: home sends `q`, remote replies `p`.
fn home_requests_safe(spec: &ProtocolSpec, q: MsgType, p: MsgType) -> bool {
    if !purity_home_requests(spec, q, p) {
        return false;
    }
    // (a) every remote q-recv leads through internal states only to an
    // active state whose single output is `p`.
    for (si, bi) in recvs_of(&spec.remote, q) {
        let br = &spec.remote.states[si].branches[bi];
        if !remote_chain_ends_in_send(&spec.remote, br.target, p, 0) {
            return false;
        }
    }
    // (a') dually, every remote p-send must actually *be* a reply: walking
    // backwards from the sending state, every path must consume a `q` (via
    // internal hops only) before reaching the initial state or any other
    // communication. Without this, a remote that emits `p` spontaneously
    // (e.g. from its initial state) is marked fire-and-forget, the home
    // acks the unsolicited `p` as an ordinary message, and the remote
    // traps on the unexpected ack — found by derivation fuzzing, shipped
    // as `specs/zoo_unsound_pair.ccp`.
    if !remote_reply_sends_dominated(&spec.remote, q, p) {
        return false;
    }
    // (b) every home q-send targets a state offering an unguarded `p` input
    // from the textually same peer.
    for (si, bi) in sends_of(&spec.home, q) {
        let br = &spec.home.states[si].branches[bi];
        let peer = match &br.action {
            CommAction::Send { to: Peer::Remote(e), .. } => e,
            _ => return false,
        };
        let tgt = match spec.home.state(br.target) {
            Some(s) => s,
            None => return false,
        };
        let has_reply_recv = tgt.branches.iter().any(|b| {
            b.guard.is_none()
                && matches!(
                    &b.action,
                    CommAction::Recv { from: Peer::Remote(e2), msg, .. }
                        if *msg == p && e2 == peer
                )
        });
        if !has_reply_recv {
            return false;
        }
        // The request branch must not reassign its own peer designator.
        let mut peer_vars = Vec::new();
        peer.collect_vars(&mut peer_vars);
        if br.assigns.iter().any(|(v, _)| peer_vars.contains(v)) {
            return false;
        }
    }
    true
}

/// Reply-domination for the *remote* side of a home-requested pair: every
/// send of the reply `p` must be entered only through a receive of the
/// request `q`, possibly via single-tau internal hops. Reaching the remote
/// initial state backwards, or any non-`q` entering edge, means the remote
/// can emit `p` that no pending request is waiting for.
fn remote_reply_sends_dominated(proc_: &Process, q: MsgType, p: MsgType) -> bool {
    let mut preds: Vec<Vec<(usize, usize)>> = vec![Vec::new(); proc_.states.len()];
    for (fsi, st) in proc_.states.iter().enumerate() {
        for (fbi, b) in st.branches.iter().enumerate() {
            if proc_.state(b.target).is_some() {
                preds[b.target.index()].push((fsi, fbi));
            }
        }
    }
    for (si, _bi) in sends_of(proc_, p) {
        let mut visited = vec![false; proc_.states.len()];
        let mut queue = vec![si];
        visited[si] = true;
        while let Some(node) = queue.pop() {
            if node == proc_.initial.index() {
                return false; // the send is live from system start, no q consumed
            }
            for &(fsi, fbi) in &preds[node] {
                let edge = &proc_.states[fsi].branches[fbi];
                let anchor = matches!(
                    &edge.action,
                    CommAction::Recv { from: Peer::Home, msg, .. } if *msg == q
                );
                if anchor {
                    continue; // certified entry; stop walking past it
                }
                // Only internal tau hops may propagate the obligation
                // backwards; any other entering communication means the
                // send is reachable without a pending request.
                let internal_hop = matches!(proc_.states[fsi].kind, StateKind::Internal)
                    && matches!(edge.action, CommAction::Tau);
                if !internal_hop {
                    return false;
                }
                if !visited[fsi] {
                    visited[fsi] = true;
                    queue.push(fsi);
                }
            }
        }
    }
    true
}

/// Walks a chain of internal states (single tau branches) from `s`,
/// accepting when it reaches an active state whose single branch is an
/// unguarded send of `p` to home.
fn remote_chain_ends_in_send(proc_: &Process, s: StateId, p: MsgType, depth: usize) -> bool {
    if depth > proc_.states.len() {
        return false; // cycle guard
    }
    let st = match proc_.state(s) {
        Some(s) => s,
        None => return false,
    };
    match st.kind {
        StateKind::Communication => {
            st.branches.len() == 1
                && st.branches[0].guard.is_none()
                && matches!(
                    &st.branches[0].action,
                    CommAction::Send { to: Peer::Home, msg, .. } if *msg == p
                )
        }
        StateKind::Internal => {
            st.branches.len() == 1
                && st.branches[0].guard.is_none()
                && remote_chain_ends_in_send(proc_, st.branches[0].target, p, depth + 1)
        }
    }
}

/// Reply-domination check for a home send of the reply `p` at
/// `(state, branch)`: walking *backwards* from the sending state, every path
/// must reach an input of `q` that produces the send's peer designator
/// before it reaches the initial state, any other communication with the
/// textually same peer, or a reassignment of the designator.
fn home_send_reply_dominated(spec: &ProtocolSpec, si: usize, bi: usize, q: MsgType) -> bool {
    let home = &spec.home;
    let br = &home.states[si].branches[bi];
    let peer = match &br.action {
        CommAction::Send { to: Peer::Remote(e), .. } => e.clone(),
        _ => return false,
    };
    let mut peer_vars = Vec::new();
    peer.collect_vars(&mut peer_vars);

    // Predecessor edges: (from_state, branch idx) -> to_state.
    let mut preds: Vec<Vec<(usize, usize)>> = vec![Vec::new(); home.states.len()];
    for (fsi, st) in home.states.iter().enumerate() {
        for (fbi, b) in st.branches.iter().enumerate() {
            if let Some(tgt) = home.state(b.target).map(|_| b.target.index()) {
                preds[tgt].push((fsi, fbi));
            }
        }
    }

    // An "anchor" edge is a Recv of q that produces the peer designator:
    // either it binds the sender directly into the designator variable, or
    // its assigns end with the designator := <something>.
    let is_anchor = |b: &crate::process::Branch| -> bool {
        match &b.action {
            CommAction::Recv { from, msg, .. } if *msg == q => {
                let binds_designator = match from {
                    Peer::AnyRemote { bind: Some(v) } => peer_vars == vec![*v],
                    Peer::Remote(e) => e == &peer,
                    _ => false,
                };
                let assigns_designator = b.assigns.iter().any(|(v, _)| peer_vars.contains(v));
                binds_designator || assigns_designator
            }
            _ => false,
        }
    };
    // A "blocking" edge invalidates the path: any *other* communication with
    // the textually same peer, or a reassignment of the designator.
    let is_blocking = |b: &crate::process::Branch| -> bool {
        let same_peer_comm = match &b.action {
            CommAction::Send { to: Peer::Remote(e), .. } => *e == peer,
            CommAction::Recv { from: Peer::Remote(e), msg, .. } => *e == peer && *msg != q,
            _ => false,
        };
        let reassigns = b.assigns.iter().any(|(v, _)| peer_vars.contains(v));
        same_peer_comm || reassigns
    };

    // Backward BFS over *states*; we must certify every incoming edge of
    // every reached state. Reaching the initial state means a path exists on
    // which no q was ever received -> unsafe.
    let mut visited = vec![false; home.states.len()];
    let mut queue = vec![si];
    visited[si] = true;
    while let Some(node) = queue.pop() {
        if node == home.initial.index() {
            // Also need an incoming anchor? The initial state could itself
            // be preceded by nothing: a path from system start reaches the
            // send without any q input.
            return false;
        }
        for &(fsi, fbi) in &preds[node] {
            let edge = &home.states[fsi].branches[fbi];
            if is_anchor(edge) {
                continue; // this path is certified; stop walking past it
            }
            if is_blocking(edge) {
                return false;
            }
            if !visited[fsi] {
                visited[fsi] = true;
                queue.push(fsi);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::expr::Expr;
    use crate::ids::RemoteId;
    use crate::value::Value;

    /// Home that *spontaneously* sends `gr` without a prior `req` must fail
    /// the domination check.
    #[test]
    fn rejects_reply_without_request_path() {
        let mut b = ProtocolBuilder::new("bad");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g = b.home_state("G");
        // Home can reach G (and send gr) either after a req or directly
        // via an internal hop that never consumed req.
        let hop = b.home_internal("HOP");
        b.home(f).recv_any(req).bind_sender(o).goto(g);
        b.home(g).send_to(Expr::Var(o), gr).goto(hop);
        b.home(hop).tau().goto(g); // back to G without a req!
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(i);
        let spec = b.finish().unwrap();
        assert!(classify_pair(&spec, req, gr).is_none());
    }

    /// Reassigning the designator between the request and the reply breaks
    /// domination.
    #[test]
    fn rejects_designator_reassignment() {
        let mut b = ProtocolBuilder::new("bad2");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let mid = b.home_internal("M");
        let g = b.home_state("G");
        b.home(f).recv_any(req).bind_sender(o).goto(mid);
        b.home(mid).tau().assign(o, Expr::node(RemoteId(0))).goto(g);
        b.home(g).send_to(Expr::Var(o), gr).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(i);
        let spec = b.finish().unwrap();
        assert!(classify_pair(&spec, req, gr).is_none());
    }

    /// Remote whose post-request state has a second guard cannot use the
    /// optimization (it is not guaranteed to be waiting for the reply).
    #[test]
    fn rejects_remote_with_extra_guard_after_request() {
        let mut b = ProtocolBuilder::new("bad3");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let other = b.msg("other");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g = b.home_state("G");
        b.home(f).recv_any(req).bind_sender(o).goto(g);
        b.home(g).send_to(Expr::Var(o), gr).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(i);
        b.remote(w).recv(other).goto(i);
        let spec = b.finish().unwrap();
        assert!(classify_pair(&spec, req, gr).is_none());
    }

    /// Home-requested direction: `inv` answered by `done` through an
    /// internal hop on the remote.
    #[test]
    fn accepts_home_requested_pair_with_internal_chain() {
        let mut b = ProtocolBuilder::new("hb");
        let inv = b.msg("inv");
        let done = b.msg("done");
        let req = b.msg("req");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let e = b.home_state("E");
        let i1 = b.home_state("I1");
        b.home(e).recv_any(req).bind_sender(o).goto(i1);
        b.home(i1).send_to(Expr::Var(o), inv).goto(i1);
        b.home(i1).recv_exact(done, Expr::Var(o)).goto(e);

        let v = b.remote_state("V");
        let hop = b.remote_internal("HOP");
        let d = b.remote_state("D");
        let w = b.remote_state("W");
        b.remote(v).recv(inv).goto(hop);
        b.remote(hop).tau().goto(d);
        b.remote(d).send(done).goto(v);
        b.remote(v).tau().goto(w);
        b.remote(w).send(req).goto(v);
        let spec = b.finish().unwrap();
        let pair = classify_pair(&spec, inv, done).unwrap();
        assert_eq!(pair.direction, PairDirection::HomeRequests);
    }

    /// `inv` whose home target state lacks the reply input is rejected.
    #[test]
    fn rejects_home_request_without_reply_guard() {
        let mut b = ProtocolBuilder::new("hb2");
        let inv = b.msg("inv");
        let done = b.msg("done");
        let req = b.msg("req");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let e = b.home_state("E");
        let i1 = b.home_state("I1");
        let i2 = b.home_state("I2");
        b.home(e).recv_any(req).bind_sender(o).goto(i1);
        b.home(i1).send_to(Expr::Var(o), inv).goto(i2); // I2 lacks ?done
        b.home(i2).recv_any(req).goto(e);
        b.home(i1).recv_exact(done, Expr::Var(o)).goto(e);

        let v = b.remote_state("V");
        let d = b.remote_state("D");
        let w = b.remote_state("W");
        b.remote(v).recv(inv).goto(d);
        b.remote(d).send(done).goto(v);
        b.remote(v).tau().goto(w);
        b.remote(w).send(req).goto(v);
        let spec = b.finish().unwrap();
        assert!(classify_pair(&spec, inv, done).is_none());
    }

    /// The fuzzer's counterexample shape (`specs/zoo_unsound_pair.ccp`):
    /// the remote sends the would-be reply *spontaneously* from its initial
    /// state and never receives the request at all, making condition (a)
    /// vacuous. The pair must be rejected.
    #[test]
    fn rejects_spontaneous_reply_sender() {
        let mut b = ProtocolBuilder::new("zoo_unsound_pair");
        let m0 = b.msg("m0");
        let m1 = b.msg("m1");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let h0 = b.home_state("H0");
        let h1 = b.home_state("H1");
        b.home(h0).recv_exact(m0, Expr::Var(o)).goto(h1);
        b.home(h1).send_to(Expr::Var(o), m1).goto(h0);
        let r0 = b.remote_state("R0");
        b.remote(r0).send(m0).goto(r0);
        let spec = b.finish().unwrap();
        // Before the remote-side domination check this classified as
        // (m1, m0) HomeRequests and the derived executor trapped on an
        // unexpected ack.
        assert!(classify_pair(&spec, m1, m0).is_none());
        assert!(detect_pairs(&spec).is_empty());
    }

    /// A legitimate home-requested pair whose reply send is dominated by
    /// the request receive (the migratory `inv/ID` shape) must survive the
    /// new check.
    #[test]
    fn accepts_dominated_reply_sender() {
        let mut b = ProtocolBuilder::new("ok");
        let inv = b.msg("inv");
        let id = b.msg("id");
        let req = b.msg("req");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let e = b.home_state("E");
        let i1 = b.home_state("I1");
        b.home(e).recv_any(req).bind_sender(o).goto(i1);
        b.home(i1).send_to(Expr::Var(o), inv).goto(i1);
        b.home(i1).recv_exact(id, Expr::Var(o)).goto(e);
        let v = b.remote_state("V");
        let ids = b.remote_state("IDS");
        let w = b.remote_state("W");
        b.remote(v).recv(inv).goto(ids);
        b.remote(ids).send(id).goto(v);
        b.remote(v).tau().goto(w);
        b.remote(w).send(req).goto(v);
        let spec = b.finish().unwrap();
        let pair = classify_pair(&spec, inv, id).unwrap();
        assert_eq!(pair.direction, PairDirection::HomeRequests);
    }

    #[test]
    fn detect_pairs_is_deterministic_and_disjoint() {
        // Reuse the token spec from the parent module's tests via a local copy.
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        let spec = b.finish().unwrap();

        let p1 = detect_pairs(&spec);
        let p2 = detect_pairs(&spec);
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 1);
        assert_eq!(p1[0].req, req);
        assert_eq!(p1[0].repl, gr);
        let _ = rel;
    }
}
