//! Construction of the explicit asynchronous automata from a spec plus
//! request/reply annotations.

use super::automaton::{AEdge, AEdgeKind, ANode, ANodeKind, AsyncAutomaton, Role};
use super::BranchKey;
use crate::ids::{MsgType, StateId};
use crate::process::{CommAction, Peer, Process, ProtocolSpec, StateKind};
use std::collections::{HashMap, HashSet};

/// Borrowed view of the annotation tables while building.
pub(super) struct Annotations<'a> {
    pub remote_fire_forget: &'a HashSet<BranchKey>,
    pub home_fire_forget: &'a HashSet<BranchKey>,
    pub remote_reply: &'a HashMap<BranchKey, MsgType>,
    pub home_reply: &'a HashMap<BranchKey, MsgType>,
    pub home_noack: &'a HashSet<MsgType>,
    pub remote_noack: &'a HashSet<MsgType>,
}

impl<'a> Annotations<'a> {
    fn fire_forget(&self, role: Role, key: BranchKey) -> bool {
        match role {
            Role::Home => self.home_fire_forget.contains(&key),
            Role::Remote => self.remote_fire_forget.contains(&key),
        }
    }

    fn reply_of(&self, role: Role, key: BranchKey) -> Option<MsgType> {
        match role {
            Role::Home => self.home_reply.get(&key).copied(),
            Role::Remote => self.remote_reply.get(&key).copied(),
        }
    }

    fn noack_recv(&self, role: Role, msg: MsgType) -> bool {
        match role {
            Role::Home => self.home_noack.contains(&msg),
            Role::Remote => self.remote_noack.contains(&msg),
        }
    }
}

fn peer_label(role: Role, peer: &Peer) -> String {
    match (role, peer) {
        (Role::Remote, _) => "h".to_string(),
        (Role::Home, Peer::Remote(e)) => format!("r({e})"),
        (Role::Home, Peer::AnyRemote { bind: Some(v) }) => format!("r({v})"),
        (Role::Home, Peer::AnyRemote { bind: None }) => "r(i)".to_string(),
        (Role::Home, Peer::Home) => "h".to_string(),
    }
}

/// Builds the asynchronous automaton of one role.
pub(super) fn build_automaton(
    spec: &ProtocolSpec,
    role: Role,
    ann: &Annotations<'_>,
) -> AsyncAutomaton {
    let proc_: &Process = match role {
        Role::Home => &spec.home,
        Role::Remote => &spec.remote,
    };

    let mut states: Vec<ANode> = Vec::new();
    let mut edges: Vec<AEdge> = Vec::new();

    // One node per spec state, in order, so spec StateId == node index here.
    for (si, st) in proc_.states.iter().enumerate() {
        let kind = match st.kind {
            StateKind::Communication => ANodeKind::Comm(StateId(si as u32)),
            StateKind::Internal => ANodeKind::Internal(StateId(si as u32)),
        };
        states.push(ANode { name: st.name.clone(), kind });
    }

    for (si, st) in proc_.states.iter().enumerate() {
        let sid = StateId(si as u32);
        for (bi, br) in st.branches.iter().enumerate() {
            let key: BranchKey = (sid, bi as u32);
            match &br.action {
                CommAction::Tau => {
                    edges.push(AEdge {
                        from: si,
                        to: br.target.index(),
                        label: "tau".into(),
                        kind: AEdgeKind::Tau,
                    });
                }
                CommAction::Recv { from, msg, .. } => {
                    let pl = peer_label(role, from);
                    let mname = spec.msg_name(*msg);
                    if ann.noack_recv(role, *msg) {
                        edges.push(AEdge {
                            from: si,
                            to: br.target.index(),
                            label: format!("{pl}??{mname}"),
                            kind: AEdgeKind::RecvReqNoAck,
                        });
                    } else {
                        edges.push(AEdge {
                            from: si,
                            to: br.target.index(),
                            label: format!("{pl}??{mname} / {pl}!!ack"),
                            kind: AEdgeKind::RecvReqAck,
                        });
                    }
                }
                CommAction::Send { to, msg, .. } => {
                    let pl = peer_label(role, to);
                    let mname = spec.msg_name(*msg);
                    if ann.fire_forget(role, key) {
                        // Reply sends complete immediately.
                        edges.push(AEdge {
                            from: si,
                            to: br.target.index(),
                            label: format!("{pl}!!{mname}"),
                            kind: AEdgeKind::SendReq,
                        });
                        continue;
                    }
                    // Materialize the transient state.
                    let tname = format!("{}~{}", st.name, mname);
                    let tnode = states.len();
                    states.push(ANode {
                        name: tname,
                        kind: ANodeKind::Transient { origin: sid, branch: bi as u32 },
                    });
                    edges.push(AEdge {
                        from: si,
                        to: tnode,
                        label: format!("{pl}!!{mname}"),
                        kind: AEdgeKind::SendReq,
                    });
                    edges.push(AEdge {
                        from: tnode,
                        to: si,
                        label: format!("{pl}??nack"),
                        kind: AEdgeKind::RecvNack,
                    });
                    if let Some(repl) = ann.reply_of(role, key) {
                        // Completion arrives as the optimized reply: it also
                        // consumes the follow-up input of the target state.
                        let rname = spec.msg_name(repl);
                        let land = reply_landing(proc_, br.target, repl);
                        edges.push(AEdge {
                            from: tnode,
                            to: land.index(),
                            label: format!("{pl}??{rname}"),
                            kind: AEdgeKind::RecvReply,
                        });
                    } else {
                        edges.push(AEdge {
                            from: tnode,
                            to: br.target.index(),
                            label: format!("{pl}??ack"),
                            kind: AEdgeKind::RecvAck,
                        });
                    }
                    match role {
                        Role::Remote => {
                            // Table 1 row T3: ignore home requests while
                            // transient (the `h??*` self-loop of Figure 5).
                            edges.push(AEdge {
                                from: tnode,
                                to: tnode,
                                label: "h??*".into(),
                                kind: AEdgeKind::Ignore,
                            });
                        }
                        Role::Home => {
                            // Table 2 row T3: a request from the awaited
                            // remote is an implicit nack.
                            edges.push(AEdge {
                                from: tnode,
                                to: si,
                                label: format!("{pl}??req [implicit nack]"),
                                kind: AEdgeKind::ImplicitNack,
                            });
                            // Rows T4–T6: requests from other remotes are
                            // buffered or nacked; represented as a self-loop.
                            edges.push(AEdge {
                                from: tnode,
                                to: tnode,
                                label: "r(x)??msg / buffer|nack".into(),
                                kind: AEdgeKind::SendNack,
                            });
                        }
                    }
                }
            }
        }
    }

    AsyncAutomaton { role, states, edges, initial: proc_.initial.index() }
}

/// Where an optimized reply lands: consuming the unguarded `repl` input of
/// the request branch's target state. Falls back to the target itself if the
/// input is missing (the reqrep safety check prevents this for accepted
/// pairs).
fn reply_landing(proc_: &Process, target: StateId, repl: MsgType) -> StateId {
    if let Some(st) = proc_.state(target) {
        for br in &st.branches {
            if br.guard.is_none() {
                if let CommAction::Recv { msg, .. } = &br.action {
                    if *msg == repl {
                        return br.target;
                    }
                }
            }
        }
    }
    target
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::expr::Expr;
    use crate::ids::RemoteId;
    use crate::refine::{refine, RefineOptions, ReqRepMode};
    use crate::value::Value;

    fn token_spec() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn optimized_remote_has_one_transient_for_rel_only() {
        let refined = refine(&token_spec(), &RefineOptions::default()).unwrap();
        // req is optimized: its transient expects the reply `gr`.
        // rel is a plain rendezvous: its transient expects ack/nack.
        assert_eq!(refined.remote.transient_count(), 2);
        assert_eq!(refined.remote.count_edges(AEdgeKind::RecvReply), 1);
        assert_eq!(refined.remote.count_edges(AEdgeKind::RecvAck), 1);
        // Home: gr is fire-and-forget, so no transient at all.
        assert_eq!(refined.home.transient_count(), 0);
    }

    #[test]
    fn unoptimized_remote_has_plain_transients() {
        let refined = refine(&token_spec(), &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
        assert_eq!(refined.remote.transient_count(), 2);
        assert_eq!(refined.remote.count_edges(AEdgeKind::RecvReply), 0);
        assert_eq!(refined.remote.count_edges(AEdgeKind::RecvAck), 2);
        // Every remote transient carries the `h??*` ignore loop.
        assert_eq!(refined.remote.count_edges(AEdgeKind::Ignore), 2);
        // Home still has no output guards in this protocol except gr.
        assert_eq!(refined.home.transient_count(), 1);
        assert_eq!(refined.home.count_edges(AEdgeKind::ImplicitNack), 1);
    }

    #[test]
    fn reply_lands_past_the_follow_up_input() {
        let refined = refine(&token_spec(), &RefineOptions::default()).unwrap();
        let spec = &refined.spec;
        let i = spec.remote.state_by_name("I").unwrap();
        let v = spec.remote.state_by_name("V").unwrap();
        let t = refined.remote.transient_of(i, 0).expect("transient for req");
        let reply_edge =
            refined.remote.edges_from(t).find(|e| e.kind == AEdgeKind::RecvReply).unwrap();
        // Receiving gr lands directly in V, skipping the waiting state W.
        assert_eq!(reply_edge.to, v.index());
    }

    #[test]
    fn node_names_mark_transients() {
        let refined = refine(&token_spec(), &RefineOptions::default()).unwrap();
        assert!(refined.remote.states.iter().any(|s| s.name == "I~req"));
        assert!(refined.remote.states.iter().any(|s| s.name == "V~rel"));
    }
}
