//! Well-formedness and §2.4 syntactic-restriction checks.
//!
//! The refinement procedure is only sound for specifications obeying the
//! paper's restrictions:
//!
//! * **star topology** — remotes talk only to home; home talks only to
//!   remotes;
//! * **remote guard restriction** — each remote communication state is
//!   either *active* (exactly one output guard) or *passive* (input guards
//!   from home plus autonomous `tau` guards);
//! * **eventual communication** — internal states cannot form a cycle that
//!   never reaches a communication state (checked syntactically, as the
//!   paper notes is possible);
//! * plus ordinary referential integrity (no dangling states/variables, no
//!   terminal states, guards independent of same-branch bindings).

use crate::error::{CoreError, Result};
use crate::expr::Expr;
use crate::ids::{StateId, VarId};
use crate::process::{Branch, CommAction, Peer, Process, ProtocolSpec, StateKind};

/// Validates `spec` against all restrictions. Returns the first violation.
pub fn validate(spec: &ProtocolSpec) -> Result<()> {
    validate_process(&spec.home, "home", true)?;
    validate_process(&spec.remote, "remote", false)?;
    Ok(())
}

fn validate_process(p: &Process, label: &'static str, is_home: bool) -> Result<()> {
    if p.states.is_empty() {
        return Err(CoreError::EmptyProcess { process: label });
    }
    if p.state(p.initial).is_none() {
        return Err(CoreError::DanglingState { process: label, state: p.initial });
    }
    for (idx, st) in p.states.iter().enumerate() {
        let sid = StateId(idx as u32);
        if st.branches.is_empty() {
            return Err(CoreError::TerminalState { process: label, state: sid });
        }
        for br in &st.branches {
            check_branch(p, label, sid, br, is_home)?;
        }
        match st.kind {
            StateKind::Internal => {
                if st.branches.iter().any(|b| !b.action.is_tau()) {
                    return Err(CoreError::InternalStateCommunicates {
                        process: label,
                        state: sid,
                    });
                }
            }
            StateKind::Communication => {
                if is_home {
                    // Home communication states use generalized guards but
                    // autonomous decisions belong in internal states.
                    if st.branches.iter().any(|b| b.action.is_tau()) {
                        return Err(CoreError::StarViolation {
                            process: label,
                            state: sid,
                            detail:
                                "home communication state has a tau guard; use an internal state",
                        });
                    }
                } else {
                    check_remote_guard_restriction(sid, st)?;
                }
            }
        }
    }
    check_internal_cycles(p, label)?;
    Ok(())
}

/// §2.4: a remote communication state is active (one output) xor passive
/// (inputs + taus).
fn check_remote_guard_restriction(sid: StateId, st: &crate::process::State) -> Result<()> {
    let sends = st.branches.iter().filter(|b| b.action.is_send()).count();
    if sends > 1 {
        return Err(CoreError::RemoteGuardRestriction {
            state: sid,
            detail: "more than one output guard; a remote may request a single rendezvous",
        });
    }
    if sends == 1 && st.branches.len() != 1 {
        return Err(CoreError::RemoteGuardRestriction {
            state: sid,
            detail: "an active remote state must contain exactly the one output guard",
        });
    }
    Ok(())
}

fn check_branch(
    p: &Process,
    label: &'static str,
    sid: StateId,
    br: &Branch,
    is_home: bool,
) -> Result<()> {
    if p.state(br.target).is_none() {
        return Err(CoreError::DanglingState { process: label, state: br.target });
    }
    let mut used: Vec<VarId> = Vec::new();
    if let Some(g) = &br.guard {
        g.collect_vars(&mut used);
    }
    let mut bound: Vec<VarId> = Vec::new();
    match &br.action {
        CommAction::Send { to, payload, .. } => {
            match (is_home, to) {
                (true, Peer::Remote(e)) => e.collect_vars(&mut used),
                (true, _) => {
                    return Err(CoreError::StarViolation {
                        process: label,
                        state: sid,
                        detail: "home outputs must address a specific remote",
                    })
                }
                (false, Peer::Home) => {}
                (false, _) => {
                    return Err(CoreError::StarViolation {
                        process: label,
                        state: sid,
                        detail: "remote outputs must address home",
                    })
                }
            }
            if let Some(e) = payload {
                e.collect_vars(&mut used);
            }
        }
        CommAction::Recv { from, bind, .. } => {
            match (is_home, from) {
                (true, Peer::AnyRemote { bind: sender_bind }) => {
                    if let Some(v) = sender_bind {
                        bound.push(*v);
                    }
                }
                (true, Peer::Remote(e)) => e.collect_vars(&mut used),
                (true, Peer::Home) => {
                    return Err(CoreError::StarViolation {
                        process: label,
                        state: sid,
                        detail: "home cannot receive from itself",
                    })
                }
                (false, Peer::Home) => {}
                (false, _) => {
                    return Err(CoreError::StarViolation {
                        process: label,
                        state: sid,
                        detail: "remote inputs must come from home",
                    })
                }
            }
            if let Some(v) = bind {
                bound.push(*v);
            }
        }
        CommAction::Tau => {}
    }
    // Guards may not depend on bindings made by the same branch.
    if let Some(g) = &br.guard {
        let mut guard_vars = Vec::new();
        g.collect_vars(&mut guard_vars);
        if guard_vars.iter().any(|v| bound.contains(v)) {
            return Err(CoreError::DanglingVar {
                process: label,
                state: sid,
                var: *guard_vars.iter().find(|v| bound.contains(v)).unwrap(),
            });
        }
    }
    for (v, e) in &br.assigns {
        used.push(*v);
        e.collect_vars(&mut used);
    }
    used.extend(bound);
    for v in used {
        if v.index() >= p.vars.len() {
            return Err(CoreError::DanglingVar { process: label, state: sid, var: v });
        }
    }
    if !is_home {
        // Remote expressions may use SelfId; the home may not. SelfId in the
        // home is caught at evaluation time, but we also reject it here.
    } else if process_uses_self_in_state(p, sid) {
        return Err(CoreError::SelfIdInHome);
    }
    Ok(())
}

fn expr_uses_self(e: &Expr) -> bool {
    match e {
        Expr::SelfId => true,
        Expr::Const(_) | Expr::Var(_) => false,
        Expr::Not(a) => expr_uses_self(a),
        Expr::And(a, b)
        | Expr::Or(a, b)
        | Expr::Eq(a, b)
        | Expr::Ne(a, b)
        | Expr::Lt(a, b)
        | Expr::Add(a, b)
        | Expr::Sub(a, b)
        | Expr::Mod(a, b)
        | Expr::MaskHas(a, b)
        | Expr::MaskAdd(a, b)
        | Expr::MaskDel(a, b) => expr_uses_self(a) || expr_uses_self(b),
        Expr::MaskIsEmpty(a) | Expr::MaskFirst(a) => expr_uses_self(a),
    }
}

fn process_uses_self_in_state(p: &Process, sid: StateId) -> bool {
    let st = match p.state(sid) {
        Some(s) => s,
        None => return false,
    };
    st.branches.iter().any(|b| {
        b.guard.as_ref().is_some_and(expr_uses_self)
            || b.assigns.iter().any(|(_, e)| expr_uses_self(e))
            || match &b.action {
                CommAction::Send { to: Peer::Remote(e), payload, .. } => {
                    expr_uses_self(e) || payload.as_ref().is_some_and(expr_uses_self)
                }
                CommAction::Send { payload, .. } => payload.as_ref().is_some_and(expr_uses_self),
                CommAction::Recv { from: Peer::Remote(e), .. } => expr_uses_self(e),
                _ => false,
            }
    })
}

/// Detects cycles made solely of internal states (violating the
/// eventual-communication assumption).
fn check_internal_cycles(p: &Process, label: &'static str) -> Result<()> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; p.states.len()];
    // Iterative DFS restricted to internal states.
    for start in 0..p.states.len() {
        if p.states[start].kind != StateKind::Internal || marks[start] != Mark::White {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::Grey;
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            let st = &p.states[node];
            if *edge >= st.branches.len() {
                marks[node] = Mark::Black;
                stack.pop();
                continue;
            }
            let tgt = st.branches[*edge].target.index();
            *edge += 1;
            if tgt >= p.states.len() || p.states[tgt].kind != StateKind::Internal {
                continue; // leaves the internal subgraph: fine
            }
            match marks[tgt] {
                Mark::Grey => {
                    return Err(CoreError::InternalLivelock {
                        process: label,
                        state: StateId(tgt as u32),
                    })
                }
                Mark::White => {
                    marks[tgt] = Mark::Grey;
                    stack.push((tgt, 0));
                }
                Mark::Black => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::value::Value;

    fn base() -> (ProtocolBuilder, crate::ids::MsgType) {
        let mut b = ProtocolBuilder::new("t");
        let m = b.msg("m");
        (b, m)
    }

    #[test]
    fn accepts_minimal_valid_spec() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_terminal_state() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let _dead = b.home_state("DEAD");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::TerminalState { process: "home", .. }));
    }

    #[test]
    fn rejects_remote_mixing_send_and_recv() {
        let (mut b, m) = base();
        let g = b.msg("g");
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        b.remote(r).recv(g).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::RemoteGuardRestriction { .. }));
    }

    #[test]
    fn rejects_remote_two_sends() {
        let (mut b, m) = base();
        let g = b.msg("g");
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        b.remote(r).send(g).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::RemoteGuardRestriction { .. }));
    }

    #[test]
    fn allows_remote_passive_with_tau() {
        let (mut b, m) = base();
        let g = b.msg("g");
        let h = b.home_state("H");
        let r = b.remote_state("R");
        let r2 = b.remote_state("R2");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).recv(g).goto(r2);
        b.remote(r).tau().goto(r2);
        b.remote(r2).send(m).goto(r);
        // home never sends g, but that is a liveness concern, not validation.
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_dangling_target() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(StateId(42));
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::DanglingState { .. }));
    }

    #[test]
    fn rejects_dangling_var() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).bind_sender(VarId(3)).goto(h);
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::DanglingVar { .. }));
    }

    #[test]
    fn rejects_internal_only_cycle() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        let i1 = b.remote_internal("I1");
        let i2 = b.remote_internal("I2");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(i1);
        b.remote(i1).tau().goto(i2);
        b.remote(i2).tau().goto(i1);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::InternalLivelock { process: "remote", .. }));
    }

    #[test]
    fn accepts_internal_cycle_through_comm_state() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        let i1 = b.remote_internal("I1");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(i1);
        b.remote(i1).tau().goto(r);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_internal_state_with_comm_guard() {
        let (mut b, m) = base();
        let h = b.home_internal("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::InternalStateCommunicates { .. }));
    }

    #[test]
    fn rejects_home_tau_in_comm_state() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.home(h).tau().goto(h);
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::StarViolation { .. }));
    }

    #[test]
    fn rejects_guard_using_same_branch_binding() {
        let (mut b, m) = base();
        let h = b.home_state("H");
        let r = b.remote_state("R");
        let x = b.home_var("x", Value::Int(0));
        b.home(h).when(Expr::eq(Expr::Var(x), Expr::int(0))).recv_any(m).bind(x).goto(h);
        b.remote(r).send(m).goto(r);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, CoreError::DanglingVar { .. }));
    }
}
