//! Side-effect-free expressions over a process's local variables.
//!
//! Expressions appear in three places: boolean guards on branches, message
//! payloads of output actions, and the right-hand sides of assignments. Per
//! the paper's communication model (§2.3) they may reference only constants
//! and local variables of the owning process — there is no shared state.

use crate::error::{CoreError, Result};
use crate::ids::{RemoteId, VarId};
use crate::value::{Env, Value};
use std::fmt;

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// A local variable read.
    Var(VarId),
    /// The executing remote node's own identity (`Node`-valued). Only
    /// meaningful inside the remote template; evaluating it in the home
    /// process is an error.
    SelfId,
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction (strict — both sides always evaluated).
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction (strict).
    Or(Box<Expr>, Box<Expr>),
    /// Equality on any pair of same-kind values.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality.
    Ne(Box<Expr>, Box<Expr>),
    /// Integer less-than.
    Lt(Box<Expr>, Box<Expr>),
    /// Integer addition.
    Add(Box<Expr>, Box<Expr>),
    /// Integer subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Integer remainder (Euclidean); used to keep data domains bounded for
    /// model checking, e.g. `(data + 1) % 4`.
    Mod(Box<Expr>, Box<Expr>),
    /// Node-set membership: `node ∈ mask`.
    MaskHas(Box<Expr>, Box<Expr>),
    /// Node-set insertion: `mask ∪ {node}`.
    MaskAdd(Box<Expr>, Box<Expr>),
    /// Node-set removal: `mask ∖ {node}`.
    MaskDel(Box<Expr>, Box<Expr>),
    /// Node-set emptiness test.
    MaskIsEmpty(Box<Expr>),
    /// The lowest-numbered node in a (non-empty) set; evaluating it on an
    /// empty set is an error. Used by directory protocols to pick the next
    /// sharer to invalidate.
    MaskFirst(Box<Expr>),
}

/// Evaluation context: the local environment plus, for remote processes,
/// the node's own identity.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx<'a> {
    /// Local variable environment.
    pub env: &'a Env,
    /// `Some(id)` when evaluating inside remote `id`; `None` in the home.
    pub self_id: Option<RemoteId>,
}

impl Expr {
    /// Convenience constructor for an integer constant.
    pub fn int(i: i64) -> Self {
        Expr::Const(Value::Int(i))
    }

    /// Convenience constructor for a boolean constant.
    pub fn bool(b: bool) -> Self {
        Expr::Const(Value::Bool(b))
    }

    /// Convenience constructor for a node constant.
    pub fn node(r: RemoteId) -> Self {
        Expr::Const(Value::Node(r))
    }

    /// Convenience constructor for equality.
    pub fn eq(a: Expr, b: Expr) -> Self {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a mask constant.
    pub fn mask(m: u64) -> Self {
        Expr::Const(Value::Mask(m))
    }

    /// Convenience constructor for `(a + b) % m`.
    pub fn add_mod(a: Expr, b: Expr, m: i64) -> Self {
        Expr::Mod(Box::new(Expr::Add(Box::new(a), Box::new(b))), Box::new(Expr::int(m)))
    }

    /// Evaluates the expression in `ctx`.
    pub fn eval(&self, ctx: EvalCtx<'_>) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Var(v) => ctx.env.get(v.index()).ok_or(CoreError::UnknownVar { var: *v }),
            Expr::SelfId => ctx.self_id.map(Value::Node).ok_or(CoreError::SelfIdInHome),
            Expr::Not(e) => {
                let b = Self::expect_bool(e.eval(ctx)?)?;
                Ok(Value::Bool(!b))
            }
            Expr::And(a, b) => {
                let x = Self::expect_bool(a.eval(ctx)?)?;
                let y = Self::expect_bool(b.eval(ctx)?)?;
                Ok(Value::Bool(x && y))
            }
            Expr::Or(a, b) => {
                let x = Self::expect_bool(a.eval(ctx)?)?;
                let y = Self::expect_bool(b.eval(ctx)?)?;
                Ok(Value::Bool(x || y))
            }
            Expr::Eq(a, b) => Ok(Value::Bool(a.eval(ctx)? == b.eval(ctx)?)),
            Expr::Ne(a, b) => Ok(Value::Bool(a.eval(ctx)? != b.eval(ctx)?)),
            Expr::Lt(a, b) => {
                let x = Self::expect_int(a.eval(ctx)?)?;
                let y = Self::expect_int(b.eval(ctx)?)?;
                Ok(Value::Bool(x < y))
            }
            Expr::Add(a, b) => {
                let x = Self::expect_int(a.eval(ctx)?)?;
                let y = Self::expect_int(b.eval(ctx)?)?;
                Ok(Value::Int(x.wrapping_add(y)))
            }
            Expr::Sub(a, b) => {
                let x = Self::expect_int(a.eval(ctx)?)?;
                let y = Self::expect_int(b.eval(ctx)?)?;
                Ok(Value::Int(x.wrapping_sub(y)))
            }
            Expr::Mod(a, b) => {
                let x = Self::expect_int(a.eval(ctx)?)?;
                let y = Self::expect_int(b.eval(ctx)?)?;
                if y == 0 {
                    return Err(CoreError::DivideByZero);
                }
                Ok(Value::Int(x.rem_euclid(y)))
            }
            Expr::MaskHas(m, n) => {
                let mask = Self::expect_mask(m.eval(ctx)?)?;
                let node = Self::expect_node(n.eval(ctx)?)?;
                Ok(Value::Bool(mask & (1u64 << (node.0 as u64 % 64)) != 0))
            }
            Expr::MaskAdd(m, n) => {
                let mask = Self::expect_mask(m.eval(ctx)?)?;
                let node = Self::expect_node(n.eval(ctx)?)?;
                Ok(Value::Mask(mask | (1u64 << (node.0 as u64 % 64))))
            }
            Expr::MaskDel(m, n) => {
                let mask = Self::expect_mask(m.eval(ctx)?)?;
                let node = Self::expect_node(n.eval(ctx)?)?;
                Ok(Value::Mask(mask & !(1u64 << (node.0 as u64 % 64))))
            }
            Expr::MaskIsEmpty(m) => {
                let mask = Self::expect_mask(m.eval(ctx)?)?;
                Ok(Value::Bool(mask == 0))
            }
            Expr::MaskFirst(m) => {
                let mask = Self::expect_mask(m.eval(ctx)?)?;
                if mask == 0 {
                    return Err(CoreError::TypeMismatch {
                        expected: "non-empty node set",
                        got: Value::Mask(0),
                    });
                }
                Ok(Value::Node(RemoteId(mask.trailing_zeros())))
            }
        }
    }

    /// Evaluates a boolean guard; `None` guards are treated as `true` by
    /// callers, this helper handles the `Some` case.
    pub fn eval_bool(&self, ctx: EvalCtx<'_>) -> Result<bool> {
        Self::expect_bool(self.eval(ctx)?)
    }

    /// Evaluates a node-valued expression (a peer designator like `r(o)`).
    pub fn eval_node(&self, ctx: EvalCtx<'_>) -> Result<RemoteId> {
        match self.eval(ctx)? {
            Value::Node(n) => Ok(n),
            other => Err(CoreError::TypeMismatch { expected: "node", got: other }),
        }
    }

    fn expect_bool(v: Value) -> Result<bool> {
        v.as_bool().ok_or(CoreError::TypeMismatch { expected: "bool", got: v })
    }

    fn expect_int(v: Value) -> Result<i64> {
        v.as_int().ok_or(CoreError::TypeMismatch { expected: "int", got: v })
    }

    fn expect_mask(v: Value) -> Result<u64> {
        v.as_mask().ok_or(CoreError::TypeMismatch { expected: "node set", got: v })
    }

    fn expect_node(v: Value) -> Result<RemoteId> {
        v.as_node().ok_or(CoreError::TypeMismatch { expected: "node", got: v })
    }

    /// Collects the variables read by this expression into `vars`.
    pub fn collect_vars(&self, vars: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) | Expr::SelfId => {}
            Expr::Var(v) => vars.push(*v),
            Expr::Not(e) => e.collect_vars(vars),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mod(a, b)
            | Expr::MaskHas(a, b)
            | Expr::MaskAdd(a, b)
            | Expr::MaskDel(a, b) => {
                a.collect_vars(vars);
                b.collect_vars(vars);
            }
            Expr::MaskIsEmpty(a) | Expr::MaskFirst(a) => a.collect_vars(vars),
        }
    }

    /// True when the expression commutes with every renaming of remote
    /// identities — the *scalarset* discipline of Murphi symmetry
    /// reduction. Two constructs break it: [`Expr::MaskFirst`], which
    /// picks the lowest-*numbered* node of a set and so distinguishes
    /// otherwise interchangeable remotes, and literals naming a specific
    /// node or non-empty node set. Protocols whose transition
    /// expressions are all equivariant have fully interchangeable
    /// remotes; `ccr-mc`'s symmetry reduction is sound exactly for
    /// those.
    pub fn is_equivariant(&self) -> bool {
        match self {
            Expr::Const(Value::Node(_)) => false,
            Expr::Const(Value::Mask(m)) => *m == 0,
            Expr::Const(_) | Expr::Var(_) | Expr::SelfId => true,
            Expr::MaskFirst(_) => false,
            Expr::Not(e) | Expr::MaskIsEmpty(e) => e.is_equivariant(),
            Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Eq(a, b)
            | Expr::Ne(a, b)
            | Expr::Lt(a, b)
            | Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mod(a, b)
            | Expr::MaskHas(a, b)
            | Expr::MaskAdd(a, b)
            | Expr::MaskDel(a, b) => a.is_equivariant() && b.is_equivariant(),
        }
    }

    /// Returns the variable if this expression is exactly one variable read.
    pub fn as_single_var(&self) -> Option<VarId> {
        match self {
            Expr::Var(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::SelfId => write!(f, "self"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::And(a, b) => write!(f, "({a} && {b})"),
            Expr::Or(a, b) => write!(f, "({a} || {b})"),
            Expr::Eq(a, b) => write!(f, "({a} == {b})"),
            Expr::Ne(a, b) => write!(f, "({a} != {b})"),
            Expr::Lt(a, b) => write!(f, "({a} < {b})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mod(a, b) => write!(f, "({a} % {b})"),
            Expr::MaskHas(m, n) => write!(f, "({n} in {m})"),
            Expr::MaskAdd(m, n) => write!(f, "({m} + {{{n}}})"),
            Expr::MaskDel(m, n) => write!(f, "({m} - {{{n}}})"),
            Expr::MaskIsEmpty(m) => write!(f, "empty({m})"),
            Expr::MaskFirst(m) => write!(f, "first({m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(env: &Env) -> EvalCtx<'_> {
        EvalCtx { env, self_id: Some(RemoteId(1)) }
    }

    #[test]
    fn eval_arithmetic() {
        let env = Env::new(vec![Value::Int(5)]);
        let e = Expr::Add(Box::new(Expr::Var(VarId(0))), Box::new(Expr::int(2)));
        assert_eq!(e.eval(ctx(&env)).unwrap(), Value::Int(7));
        let m = Expr::add_mod(Expr::Var(VarId(0)), Expr::int(1), 4);
        assert_eq!(m.eval(ctx(&env)).unwrap(), Value::Int(2));
    }

    #[test]
    fn eval_logic_and_comparison() {
        let env = Env::new(vec![Value::Int(1), Value::Int(2)]);
        let lt = Expr::Lt(Box::new(Expr::Var(VarId(0))), Box::new(Expr::Var(VarId(1))));
        assert_eq!(lt.eval(ctx(&env)).unwrap(), Value::Bool(true));
        let combo =
            Expr::And(Box::new(lt.clone()), Box::new(Expr::Not(Box::new(Expr::bool(false)))));
        assert!(combo.eval_bool(ctx(&env)).unwrap());
        let or = Expr::Or(Box::new(Expr::bool(false)), Box::new(Expr::bool(true)));
        assert!(or.eval_bool(ctx(&env)).unwrap());
    }

    #[test]
    fn eval_self_id_only_in_remote() {
        let env = Env::new(vec![]);
        assert_eq!(
            Expr::SelfId.eval(EvalCtx { env: &env, self_id: Some(RemoteId(3)) }).unwrap(),
            Value::Node(RemoteId(3))
        );
        assert!(matches!(
            Expr::SelfId.eval(EvalCtx { env: &env, self_id: None }),
            Err(CoreError::SelfIdInHome)
        ));
    }

    #[test]
    fn eval_errors() {
        let env = Env::new(vec![Value::Unit]);
        assert!(matches!(Expr::Var(VarId(7)).eval(ctx(&env)), Err(CoreError::UnknownVar { .. })));
        let bad = Expr::Add(Box::new(Expr::Var(VarId(0))), Box::new(Expr::int(1)));
        assert!(matches!(bad.eval(ctx(&env)), Err(CoreError::TypeMismatch { .. })));
        let div = Expr::Mod(Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert!(matches!(div.eval(ctx(&env)), Err(CoreError::DivideByZero)));
    }

    #[test]
    fn eval_node_rejects_non_node() {
        let env = Env::new(vec![Value::Int(0)]);
        assert!(Expr::Var(VarId(0)).eval_node(ctx(&env)).is_err());
        let env2 = Env::new(vec![Value::Node(RemoteId(4))]);
        assert_eq!(Expr::Var(VarId(0)).eval_node(ctx(&env2)).unwrap(), RemoteId(4));
    }

    #[test]
    fn collect_vars_and_single_var() {
        let e = Expr::Add(Box::new(Expr::Var(VarId(1))), Box::new(Expr::Var(VarId(2))));
        let mut vs = Vec::new();
        e.collect_vars(&mut vs);
        assert_eq!(vs, vec![VarId(1), VarId(2)]);
        assert_eq!(Expr::Var(VarId(5)).as_single_var(), Some(VarId(5)));
        assert_eq!(e.as_single_var(), None);
    }

    #[test]
    fn mask_operations() {
        let env = Env::new(vec![Value::Mask(0b110)]);
        let m = Expr::Var(VarId(0));
        let has1 = Expr::MaskHas(Box::new(m.clone()), Box::new(Expr::node(RemoteId(1))));
        let has0 = Expr::MaskHas(Box::new(m.clone()), Box::new(Expr::node(RemoteId(0))));
        assert_eq!(has1.eval(ctx(&env)).unwrap(), Value::Bool(true));
        assert_eq!(has0.eval(ctx(&env)).unwrap(), Value::Bool(false));
        let add = Expr::MaskAdd(Box::new(m.clone()), Box::new(Expr::node(RemoteId(0))));
        assert_eq!(add.eval(ctx(&env)).unwrap(), Value::Mask(0b111));
        let del = Expr::MaskDel(Box::new(m.clone()), Box::new(Expr::node(RemoteId(2))));
        assert_eq!(del.eval(ctx(&env)).unwrap(), Value::Mask(0b010));
        let first = Expr::MaskFirst(Box::new(m.clone()));
        assert_eq!(first.eval(ctx(&env)).unwrap(), Value::Node(RemoteId(1)));
        let empty = Expr::MaskIsEmpty(Box::new(Expr::mask(0)));
        assert_eq!(empty.eval(ctx(&env)).unwrap(), Value::Bool(true));
        let bad_first = Expr::MaskFirst(Box::new(Expr::mask(0)));
        assert!(bad_first.eval(ctx(&env)).is_err());
        let bad_type = Expr::MaskIsEmpty(Box::new(Expr::int(3)));
        assert!(bad_type.eval(ctx(&env)).is_err());
        let mut vs = Vec::new();
        Expr::MaskFirst(Box::new(Expr::Var(VarId(0)))).collect_vars(&mut vs);
        assert_eq!(vs, vec![VarId(0)]);
    }

    #[test]
    fn equivariance_flags_order_sensitive_constructs() {
        let var_mask = Expr::Var(VarId(0));
        assert!(Expr::MaskAdd(Box::new(var_mask.clone()), Box::new(Expr::SelfId)).is_equivariant());
        assert!(Expr::MaskIsEmpty(Box::new(var_mask.clone())).is_equivariant());
        assert!(Expr::mask(0).is_equivariant(), "the empty set names no node");
        assert!(!Expr::MaskFirst(Box::new(var_mask.clone())).is_equivariant());
        assert!(!Expr::node(RemoteId(0)).is_equivariant(), "node literal");
        assert!(!Expr::mask(0b10).is_equivariant(), "non-empty set literal");
        let nested =
            Expr::And(Box::new(Expr::bool(true)), Box::new(Expr::MaskFirst(Box::new(var_mask))));
        assert!(!nested.is_equivariant(), "order sensitivity propagates up");
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::Eq(Box::new(Expr::Var(VarId(0))), Box::new(Expr::SelfId));
        assert_eq!(e.to_string(), "(v0 == self)");
    }
}
