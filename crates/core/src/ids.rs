//! Strongly-typed identifiers used throughout the protocol IR.
//!
//! All identifiers are thin newtypes over small integers so that protocol
//! states can be encoded compactly for the explicit-state model checker.

use serde::{Serialize, Serializer};
use std::fmt;

/// All identifiers serialize as their `Display` form (`"r3"`, `"h"`,
/// `"m2"`, ...) so JSON traces and reports read like the diagnostics.
macro_rules! serialize_as_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.serialize_str(&self.to_string());
            }
        }
    )*};
}
serialize_as_display!(RemoteId, ProcessId, StateId, MsgType, VarId, BranchId);

/// Identity of one remote (caching) node. Remote ids are dense: a system of
/// `n` remotes uses ids `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RemoteId(pub u32);

impl RemoteId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RemoteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identity of a process in the star topology: the home node or one remote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessId {
    /// The home (directory) node — the hub of the star.
    Home,
    /// A remote node — a leaf of the star.
    Remote(RemoteId),
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcessId::Home => write!(f, "h"),
            ProcessId::Remote(r) => write!(f, "{r}"),
        }
    }
}

/// Index of a control state within a [`crate::process::Process`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interned message type ("enumerated constant" in the paper's CSP
/// notation), e.g. `req`, `gr`, `inv`, `ID`, `LR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgType(pub u32);

impl MsgType {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Index of a local variable within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifies one branch (guard alternative) of one state: `(state, index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BranchId {
    /// The state the branch belongs to.
    pub state: StateId,
    /// The index of the branch within [`crate::process::State::branches`].
    pub index: u32,
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.state, self.index)
    }
}

/// A simple name interner shared by message types so diagnostics and DOT
/// output can print human-readable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    names: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing id if already present.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return pos as u32;
        }
        self.names.push(name.to_owned());
        (self.names.len() - 1) as u32
    }

    /// Looks up the name for `id`, if any.
    pub fn name(&self, id: u32) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Looks up an id by name.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.names.iter().position(|n| n == name).map(|p| p as u32)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i as u32, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_id_display_and_index() {
        let r = RemoteId(3);
        assert_eq!(r.to_string(), "r3");
        assert_eq!(r.index(), 3);
    }

    #[test]
    fn process_id_display() {
        assert_eq!(ProcessId::Home.to_string(), "h");
        assert_eq!(ProcessId::Remote(RemoteId(1)).to_string(), "r1");
    }

    #[test]
    fn symbol_table_interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("req");
        let b = t.intern("gr");
        let a2 = t.intern("req");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), Some("req"));
        assert_eq!(t.lookup("gr"), Some(b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn branch_id_display() {
        let b = BranchId { state: StateId(2), index: 1 };
        assert_eq!(b.to_string(), "s2#1");
    }
}
