//! # ccr-core — rendezvous protocol IR and the refinement procedure
//!
//! This crate implements the primary contribution of *Nalumasu &
//! Gopalakrishnan, "Deriving Efficient Cache Coherence Protocols through
//! Refinement"* (IPPS 1998): a specification language for directory-based
//! DSM cache-coherence protocols written as **rendezvous protocols** in a
//! CSP-like notation, and a **refinement procedure** that mechanically
//! derives an efficient **asynchronous** message-passing implementation.
//!
//! ## The model
//!
//! A [`ProtocolSpec`] describes two finite-state processes over a *star
//! topology*:
//!
//! * the **home node** — the directory owner of a cache line, which may use
//!   generalized input/output guards, and
//! * a **remote node template** — instantiated once per caching node, which
//!   is restricted to be either *active* (exactly one output to home) or
//!   *passive* (input guards from home, plus autonomous `tau` guards such as
//!   cache evictions) in each communication state.
//!
//! The restrictions (paper §2.4) are enforced by [`validate::validate`].
//!
//! ## The refinement
//!
//! [`refine::refine`] splits every rendezvous into a *request* and an
//! *ack*/*nack*, introduces **transient states** that absorb unexpected
//! messages (paper Tables 1 and 2), and applies the **request/reply
//! optimization** (paper §3.3) which elides acks for syntactically safe
//! `req;repl` pairs. The result is a [`refine::RefinedProtocol`] containing
//! explicit per-role asynchronous automata plus the annotations the
//! executable semantics in `ccr-runtime` interpret.
//!
//! ## Quick example
//!
//! ```
//! use ccr_core::builder::ProtocolBuilder;
//! use ccr_core::value::Value;
//!
//! // A trivial protocol: a remote asks the home for a token and returns it.
//! let mut b = ProtocolBuilder::new("token");
//! let req = b.msg("req");
//! let rel = b.msg("rel");
//! let owner = b.home_var("owner", Value::Node(ccr_core::ids::RemoteId(0)));
//!
//! // Home: Free -> Granted -> Free
//! let free = b.home_state("Free");
//! let granted = b.home_state("Granted");
//! b.home(free).recv_any(req).bind_sender(owner).goto(granted);
//! b.home(granted).recv_exact(rel, ccr_core::expr::Expr::Var(owner)).goto(free);
//!
//! // Remote: Idle -> Holding -> Idle
//! let idle = b.remote_state("Idle");
//! let holding = b.remote_state("Holding");
//! b.remote(idle).send(req).goto(holding);
//! b.remote(holding).send(rel).goto(idle);
//!
//! let spec = b.finish().expect("valid spec");
//! let refined = ccr_core::refine::refine(&spec, &ccr_core::refine::RefineOptions::default())
//!     .expect("refinable");
//! assert_eq!(refined.spec.name, "token");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod dot;
pub mod error;
pub mod expr;
pub mod ids;
pub mod pretty;
pub mod process;
pub mod refine;
pub mod text;
pub mod validate;
pub mod value;
pub mod zoo;

pub use error::{CoreError, Result};
pub use process::{Branch, CommAction, Peer, Process, ProtocolSpec, State, StateKind, VarDecl};
