//! Graphviz/DOT rendering of rendezvous specs and refined automata.
//!
//! `dot_spec` reproduces the style of the paper's Figures 2 and 3 (solid
//! circles, rendezvous labels); `dot_automaton` reproduces Figures 4 and 5
//! (transient states drawn dotted, `!!`/`??` labels).

use crate::pretty::render_action;
use crate::process::{Process, ProtocolSpec, StateKind};
use crate::refine::{ANodeKind, AsyncAutomaton};
use std::fmt::Write as _;

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders one process of a rendezvous spec as a DOT digraph.
pub fn dot_process(spec: &ProtocolSpec, p: &Process, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", esc(title));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle fontsize=11];");
    for (si, st) in p.states.iter().enumerate() {
        let shape = match st.kind {
            StateKind::Communication => "circle",
            StateKind::Internal => "box",
        };
        let peripheries = if si == p.initial.index() { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  s{si} [label=\"{}\" shape={shape} peripheries={peripheries}];",
            esc(&st.name)
        );
    }
    for (si, st) in p.states.iter().enumerate() {
        for br in &st.branches {
            let mut label = String::new();
            if let Some(g) = &br.guard {
                let _ = write!(label, "[{g}] ");
            }
            let _ = write!(label, "{}", render_action(spec, &br.action));
            let _ = writeln!(out, "  s{si} -> s{} [label=\"{}\"];", br.target.index(), esc(&label));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders both processes of a spec (two digraphs concatenated).
pub fn dot_spec(spec: &ProtocolSpec) -> String {
    let mut out = dot_process(spec, &spec.home, &format!("{} home", spec.name));
    out.push('\n');
    out.push_str(&dot_process(spec, &spec.remote, &format!("{} remote", spec.name)));
    out
}

/// Renders a refined asynchronous automaton as a DOT digraph. Transient
/// states are drawn with dotted borders, as in the paper's Figures 4 and 5.
pub fn dot_automaton(a: &AsyncAutomaton, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", esc(title));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle fontsize=11];");
    for (i, n) in a.states.iter().enumerate() {
        let style = match n.kind {
            ANodeKind::Transient { .. } => "dotted",
            ANodeKind::Internal(_) => "dashed",
            ANodeKind::Comm(_) => "solid",
        };
        let peripheries = if i == a.initial { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\" style={style} peripheries={peripheries}];",
            esc(&n.name)
        );
    }
    for e in &a.edges {
        let _ = writeln!(out, "  n{} -> n{} [label=\"{}\"];", e.from, e.to, esc(&e.label));
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::expr::Expr;
    use crate::ids::RemoteId;
    use crate::refine::{refine, RefineOptions};
    use crate::value::Value;

    fn spec() -> ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn dot_spec_contains_both_digraphs() {
        let s = spec();
        let d = dot_spec(&s);
        assert!(d.contains("digraph \"token home\""));
        assert!(d.contains("digraph \"token remote\""));
        assert!(d.contains("h!req"));
        assert!(d.matches("digraph").count() == 2);
    }

    #[test]
    fn dot_automaton_marks_transients_dotted() {
        let s = spec();
        let r = refine(&s, &RefineOptions::default()).unwrap();
        let d = dot_automaton(&r.remote, "token remote (refined)");
        assert!(d.contains("style=dotted"));
        assert!(d.contains("h!!rel"));
        assert!(d.contains("h??nack"));
    }

    #[test]
    fn dot_escapes_quotes() {
        assert_eq!(esc("a\"b"), "a\\\"b");
    }
}
