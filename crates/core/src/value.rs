//! Runtime values and variable environments.
//!
//! The value domain is deliberately small — the paper's protocols carry
//! either no payload, a node identity (the requester recorded by the home
//! node), or an abstract "data" token which we model as a small integer so
//! the model checker can verify data integrity with a bounded state space.

use crate::ids::RemoteId;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// The unit value (message with no payload).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A small integer; used to model cache-line data abstractly.
    Int(i64),
    /// A node identity (e.g. the `o` owner variable of the migratory home).
    Node(RemoteId),
    /// A set of remote nodes as a bitmask (e.g. the sharer set of a
    /// write-invalidate directory). Supports up to 64 remotes.
    Mask(u64),
}

impl Value {
    /// Interprets the value as a boolean, if it is one.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Interprets the value as an integer, if it is one.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Interprets the value as a node id, if it is one.
    pub fn as_node(self) -> Option<RemoteId> {
        match self {
            Value::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Interprets the value as a node-set mask, if it is one.
    pub fn as_mask(self) -> Option<u64> {
        match self {
            Value::Mask(m) => Some(m),
            _ => None,
        }
    }

    /// Compact byte encoding used by the model checker's state store.
    pub fn encode(self, out: &mut Vec<u8>) {
        match self {
            Value::Unit => out.push(0),
            Value::Bool(false) => out.push(1),
            Value::Bool(true) => out.push(2),
            Value::Int(i) => {
                if let Ok(b) = i8::try_from(i) {
                    // Small integers (data values, counters) dominate; a
                    // one-byte form keeps model-checker state keys compact.
                    out.push(6);
                    out.push(b as u8);
                } else {
                    out.push(3);
                    out.extend_from_slice(&i.to_le_bytes());
                }
            }
            Value::Node(n) => {
                out.push(4);
                out.extend_from_slice(&(n.0 as u16).to_le_bytes());
            }
            Value::Mask(m) => {
                out.push(5);
                out.extend_from_slice(&m.to_le_bytes());
            }
        }
    }

    /// Upper bound on the encoded size of any value: the widest forms
    /// (`Int` outside `i8`, `Mask`) take a tag byte plus 8 payload bytes.
    pub const MAX_ENCODED_LEN: usize = 9;

    /// Fast-path encoding into a preallocated slot: writes the same bytes
    /// as [`Value::encode`] at `buf[pos..]` and returns the new cursor.
    /// The caller guarantees `buf.len() - pos >= MAX_ENCODED_LEN`.
    #[inline]
    pub fn encode_into(self, buf: &mut [u8], pos: usize) -> usize {
        match self {
            Value::Unit => {
                buf[pos] = 0;
                pos + 1
            }
            Value::Bool(false) => {
                buf[pos] = 1;
                pos + 1
            }
            Value::Bool(true) => {
                buf[pos] = 2;
                pos + 1
            }
            Value::Int(i) => {
                if let Ok(b) = i8::try_from(i) {
                    buf[pos] = 6;
                    buf[pos + 1] = b as u8;
                    pos + 2
                } else {
                    buf[pos] = 3;
                    buf[pos + 1..pos + 9].copy_from_slice(&i.to_le_bytes());
                    pos + 9
                }
            }
            Value::Node(n) => {
                buf[pos] = 4;
                buf[pos + 1..pos + 3].copy_from_slice(&(n.0 as u16).to_le_bytes());
                pos + 3
            }
            Value::Mask(m) => {
                buf[pos] = 5;
                buf[pos + 1..pos + 9].copy_from_slice(&m.to_le_bytes());
                pos + 9
            }
        }
    }

    /// Inverse of [`Value::encode`]: reads one value from the front of
    /// `bytes`, returning it and the number of bytes consumed, or `None`
    /// when the input is truncated or carries an unknown tag.
    pub fn decode(bytes: &[u8]) -> Option<(Value, usize)> {
        fn take<const N: usize>(bytes: &[u8]) -> Option<[u8; N]> {
            bytes.get(1..1 + N)?.try_into().ok()
        }
        match *bytes.first()? {
            0 => Some((Value::Unit, 1)),
            1 => Some((Value::Bool(false), 1)),
            2 => Some((Value::Bool(true), 1)),
            3 => take::<8>(bytes).map(|b| (Value::Int(i64::from_le_bytes(b)), 9)),
            4 => take::<2>(bytes).map(|b| (Value::Node(RemoteId(u16::from_le_bytes(b) as u32)), 3)),
            5 => take::<8>(bytes).map(|b| (Value::Mask(u64::from_le_bytes(b)), 9)),
            6 => bytes.get(1).map(|&b| (Value::Int(b as i8 as i64), 2)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Node(n) => write!(f, "{n}"),
            Value::Mask(m) => write!(f, "{{0b{m:b}}}"),
        }
    }
}

/// A variable environment: one value slot per declared variable of a process.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Env {
    slots: Vec<Value>,
}

impl Env {
    /// Creates an environment from initial values.
    pub fn new(initial: Vec<Value>) -> Self {
        Self { slots: initial }
    }

    /// Reads variable `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<Value> {
        self.slots.get(idx).copied()
    }

    /// Writes variable `idx`. Returns `false` if out of range.
    #[inline]
    pub fn set(&mut self, idx: usize, v: Value) -> bool {
        match self.slots.get_mut(idx) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Number of variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the environment has no variables.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over the values.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.slots.iter().copied()
    }

    /// Compact byte encoding used by the model checker's state store.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for v in &self.slots {
            v.encode(out);
        }
    }

    /// Upper bound on the encoded size of this environment.
    #[inline]
    pub fn max_encoded_len(&self) -> usize {
        self.slots.len() * Value::MAX_ENCODED_LEN
    }

    /// Fast-path encoding into a preallocated slot: same bytes as
    /// [`Env::encode`] at `buf[pos..]`, returning the new cursor. The
    /// caller guarantees `buf.len() - pos >= self.max_encoded_len()`.
    #[inline]
    pub fn encode_into(&self, buf: &mut [u8], mut pos: usize) -> usize {
        for v in &self.slots {
            pos = v.encode_into(buf, pos);
        }
        pos
    }

    /// Inverse of [`Env::encode`] for an environment of exactly `n`
    /// variables: reads `n` values from the front of `bytes`, returning
    /// the environment and the number of bytes consumed, or `None` when
    /// the input is truncated or corrupt. The slot count is not part of
    /// the encoding — it comes from the process declaration, which the
    /// caller holds.
    pub fn decode(bytes: &[u8], n: usize) -> Option<(Env, usize)> {
        let mut slots = Vec::with_capacity(n);
        let mut off = 0;
        for _ in 0..n {
            let (v, used) = Value::decode(bytes.get(off..)?)?;
            slots.push(v);
            off += used;
        }
        Some((Env { slots }, off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_accessor_and_encoding() {
        assert_eq!(Value::Mask(0b101).as_mask(), Some(0b101));
        assert_eq!(Value::Int(1).as_mask(), None);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        Value::Mask(1).encode(&mut a);
        Value::Mask(2).encode(&mut b);
        assert_ne!(a, b);
        assert_eq!(Value::Mask(0b101).to_string(), "{0b101}");
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Node(RemoteId(2)).as_node(), Some(RemoteId(2)));
        assert_eq!(Value::Unit.as_bool(), None);
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(1).as_node(), None);
    }

    #[test]
    fn env_get_set() {
        let mut e = Env::new(vec![Value::Int(0), Value::Unit]);
        assert_eq!(e.get(0), Some(Value::Int(0)));
        assert!(e.set(0, Value::Int(5)));
        assert_eq!(e.get(0), Some(Value::Int(5)));
        assert!(!e.set(9, Value::Unit));
        assert_eq!(e.get(9), None);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn value_encodings_are_distinct() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        Value::Bool(false).encode(&mut a);
        Value::Bool(true).encode(&mut b);
        assert_ne!(a, b);

        a.clear();
        b.clear();
        Value::Int(1).encode(&mut a);
        Value::Node(RemoteId(1)).encode(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn encode_into_matches_encode_for_every_variant() {
        let values = [
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(-128),
            Value::Int(127),
            Value::Int(1 << 40),
            Value::Int(i64::MIN),
            Value::Node(RemoteId(0)),
            Value::Node(RemoteId(65535)),
            Value::Mask(0),
            Value::Mask(u64::MAX),
        ];
        for v in values {
            let mut reference = Vec::new();
            v.encode(&mut reference);
            assert!(reference.len() <= Value::MAX_ENCODED_LEN);
            let mut buf = [0xAAu8; 2 * Value::MAX_ENCODED_LEN];
            let end = v.encode_into(&mut buf, 3);
            assert_eq!(&buf[3..end], &reference[..], "{v:?}");
        }
        let env = Env::new(values.to_vec());
        let mut reference = Vec::new();
        env.encode(&mut reference);
        assert!(reference.len() <= env.max_encoded_len());
        let mut buf = vec![0u8; env.max_encoded_len()];
        let end = env.encode_into(&mut buf, 0);
        assert_eq!(&buf[..end], &reference[..]);
    }

    #[test]
    fn env_encoding_reflects_contents() {
        let e1 = Env::new(vec![Value::Int(1)]);
        let e2 = Env::new(vec![Value::Int(2)]);
        let (mut b1, mut b2) = (Vec::new(), Vec::new());
        e1.encode(&mut b1);
        e2.encode(&mut b2);
        assert_ne!(b1, b2);
    }
}
