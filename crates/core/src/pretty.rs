//! CSP-like textual rendering of specifications.
//!
//! Produces a human-readable listing in the paper's notation: `P!m(e)` for
//! outputs, `P?m(v)` for inputs, `tau` for autonomous steps.

use crate::expr::Expr;
use crate::ids::VarId;
use crate::process::{CommAction, Peer, Process, ProtocolSpec, StateKind};
use std::fmt::Write as _;

fn vname(p: &Process, v: VarId) -> String {
    p.vars.get(v.index()).map(|d| d.name.clone()).unwrap_or_else(|| format!("{v}"))
}

/// Renders an expression with variable names resolved against `p`.
pub fn render_expr(p: &Process, e: &Expr) -> String {
    match e {
        Expr::Var(v) => vname(p, *v),
        Expr::Const(c) => c.to_string(),
        Expr::SelfId => "self".into(),
        Expr::Not(a) => format!("!({})", render_expr(p, a)),
        Expr::And(a, b) => format!("({} && {})", render_expr(p, a), render_expr(p, b)),
        Expr::Or(a, b) => format!("({} || {})", render_expr(p, a), render_expr(p, b)),
        Expr::Eq(a, b) => format!("({} == {})", render_expr(p, a), render_expr(p, b)),
        Expr::Ne(a, b) => format!("({} != {})", render_expr(p, a), render_expr(p, b)),
        Expr::Lt(a, b) => format!("({} < {})", render_expr(p, a), render_expr(p, b)),
        Expr::Add(a, b) => format!("({} + {})", render_expr(p, a), render_expr(p, b)),
        Expr::Sub(a, b) => format!("({} - {})", render_expr(p, a), render_expr(p, b)),
        Expr::Mod(a, b) => format!("({} % {})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskHas(a, b) => format!("({} in {})", render_expr(p, b), render_expr(p, a)),
        Expr::MaskAdd(a, b) => format!("({} + {{{}}})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskDel(a, b) => format!("({} - {{{}}})", render_expr(p, a), render_expr(p, b)),
        Expr::MaskIsEmpty(a) => format!("empty({})", render_expr(p, a)),
        Expr::MaskFirst(a) => format!("first({})", render_expr(p, a)),
    }
}

/// Renders a full specification.
pub fn render_spec(spec: &ProtocolSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "protocol {} {{", spec.name);
    render_process(spec, &spec.home, "home", &mut out);
    render_process(spec, &spec.remote, "remote", &mut out);
    let _ = writeln!(out, "}}");
    out
}

fn render_process(spec: &ProtocolSpec, p: &Process, label: &str, out: &mut String) {
    let _ = writeln!(out, "  {label} {} {{", p.name);
    if !p.vars.is_empty() {
        let vars: Vec<String> =
            p.vars.iter().map(|v| format!("{} := {}", v.name, v.init)).collect();
        let _ = writeln!(out, "    var {};", vars.join(", "));
    }
    for (si, st) in p.states.iter().enumerate() {
        let kind = match st.kind {
            StateKind::Communication => "state",
            StateKind::Internal => "internal",
        };
        let init = if si == p.initial.index() { " (initial)" } else { "" };
        let _ = writeln!(out, "    {kind} {}{init}:", st.name);
        for br in &st.branches {
            let mut line = String::from("      ");
            if let Some(g) = &br.guard {
                let _ = write!(line, "[{}] ", render_expr(p, g));
            }
            let _ = write!(line, "{}", render_action_in(spec, p, &br.action));
            if let Some(tag) = &br.tag {
                let _ = write!(line, " #{tag}");
            }
            for (v, e) in &br.assigns {
                let _ = write!(line, "; {} := {}", vname(p, *v), render_expr(p, e));
            }
            let tgt = p.state(br.target).map(|s| s.name.as_str()).unwrap_or("?");
            let _ = writeln!(out, "{line} -> {tgt}");
        }
    }
    let _ = writeln!(out, "  }}");
}

/// Renders a single action in CSP notation with names resolved against
/// the owning process.
pub fn render_action_in(spec: &ProtocolSpec, p: &Process, a: &CommAction) -> String {
    match a {
        CommAction::Tau => "tau".to_string(),
        CommAction::Send { to, msg, payload } => {
            let peer = render_peer(p, to);
            let m = spec.msg_name(*msg);
            match payload {
                Some(e) => format!("{peer}!{m}({})", render_expr(p, e)),
                None => format!("{peer}!{m}"),
            }
        }
        CommAction::Recv { from, msg, bind } => {
            let peer = render_peer(p, from);
            let m = spec.msg_name(*msg);
            match bind {
                Some(v) => format!("{peer}?{m}({})", vname(p, *v)),
                None => format!("{peer}?{m}"),
            }
        }
    }
}

/// Renders a single action against the home process (kept for callers that
/// lack process context, e.g. DOT edge labels).
pub fn render_action(spec: &ProtocolSpec, a: &CommAction) -> String {
    render_action_in(spec, &spec.home, a)
}

fn render_peer(p: &Process, peer: &Peer) -> String {
    match peer {
        Peer::Home => "h".to_string(),
        Peer::Remote(e) => format!("r({})", render_expr(p, e)),
        Peer::AnyRemote { bind: Some(v) } => format!("r({})", vname(p, *v)),
        Peer::AnyRemote { bind: None } => "r(i)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProtocolBuilder;
    use crate::expr::Expr;
    use crate::ids::RemoteId;
    use crate::value::Value;

    #[test]
    fn renders_token_protocol() {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g = b.home_state("G");
        b.home(f).recv_any(req).bind_sender(o).goto(g);
        b.home(g).send_to(Expr::Var(o), req).payload(Expr::int(1)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(req).goto(i);
        let spec = b.finish_unchecked().unwrap();
        let text = render_spec(&spec);
        assert!(text.contains("protocol token"));
        assert!(text.contains("r(o)?req"));
        assert!(text.contains("r(o)!req(1)"));
        assert!(text.contains("h!req"));
        assert!(text.contains("(initial)"));
        assert!(text.contains("var o := r0;"));
    }

    #[test]
    fn renders_tau_and_assigns() {
        let mut b = ProtocolBuilder::new("t");
        let m = b.msg("m");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r = b.remote_state("R");
        let x = b.remote_var("x", Value::Int(0));
        let i = b.remote_internal("STEP");
        b.remote(r).tau().goto(i);
        b.remote(i).tau().assign(x, Expr::add_mod(Expr::Var(x), Expr::int(1), 4)).goto(r);
        let spec = b.finish_unchecked().unwrap();
        let text = render_spec(&spec);
        assert!(text.contains("tau"));
        assert!(text.contains("x := ((x + 1) % 4)"));
        assert!(text.contains("internal STEP"));
    }
}
