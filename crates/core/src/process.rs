//! The rendezvous protocol IR: processes, states, branches and actions.
//!
//! A protocol consists of a **home** process and a **remote** process
//! template (instantiated once per remote node). Each process is a finite
//! automaton whose states are either *communication* states (offering
//! rendezvous guards, paper Figure 1) or *internal* states (only autonomous
//! `tau` steps). Branches pair a guard with an action, optional variable
//! assignments, and a successor state.

use crate::expr::Expr;
use crate::ids::{MsgType, StateId, SymbolTable, VarId};
use crate::value::Value;

/// Designates the peer of a communication action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peer {
    /// The home node. The only legal peer for remote-side actions.
    Home,
    /// A specific remote, named by a node-valued expression — e.g. `r(o)`
    /// where `o` is the home's owner variable. Only legal in the home.
    Remote(Expr),
    /// Any remote (generalized input guard `r(i)?msg`), optionally binding
    /// the sender's identity to a home variable. Only legal in home inputs.
    AnyRemote {
        /// Variable receiving the sender's identity.
        bind: Option<VarId>,
    },
}

impl Peer {
    /// True if this is the `AnyRemote` pattern.
    pub fn is_any(&self) -> bool {
        matches!(self, Peer::AnyRemote { .. })
    }
}

/// A communication (or autonomous) action labelling a branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommAction {
    /// Output `peer!msg(payload)` — the process is the *active* party of
    /// this rendezvous.
    Send {
        /// The peer addressed.
        to: Peer,
        /// Message type.
        msg: MsgType,
        /// Optional payload expression, evaluated in the sender.
        payload: Option<Expr>,
    },
    /// Input `peer?msg(bind)` — the process is the *passive* party.
    Recv {
        /// The peer pattern accepted.
        from: Peer,
        /// Message type.
        msg: MsgType,
        /// Variable receiving the payload, if the message carries one.
        bind: Option<VarId>,
    },
    /// An autonomous step (`tau`): no communication. Models local decisions
    /// such as cache evictions or CPU reads/writes.
    Tau,
}

impl CommAction {
    /// Message type of a send/recv action.
    pub fn msg(&self) -> Option<MsgType> {
        match self {
            CommAction::Send { msg, .. } | CommAction::Recv { msg, .. } => Some(*msg),
            CommAction::Tau => None,
        }
    }

    /// True for `Send`.
    pub fn is_send(&self) -> bool {
        matches!(self, CommAction::Send { .. })
    }

    /// True for `Recv`.
    pub fn is_recv(&self) -> bool {
        matches!(self, CommAction::Recv { .. })
    }

    /// True for `Tau`.
    pub fn is_tau(&self) -> bool {
        matches!(self, CommAction::Tau)
    }
}

/// One guard alternative of a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// Optional boolean guard over local variables; `None` means `true`.
    /// Guards may not reference payload bindings of the same branch.
    pub guard: Option<Expr>,
    /// The action.
    pub action: CommAction,
    /// Assignments applied after the action completes (and after payload /
    /// sender binding), in order.
    pub assigns: Vec<(VarId, Expr)>,
    /// Successor state.
    pub target: StateId,
    /// Optional label for the branch (e.g. `"evict"`, `"rw"` on autonomous
    /// guards). Carried through to transition labels so simulators and
    /// workload harnesses can recognize and selectively enable autonomous
    /// decisions. Semantically inert.
    pub tag: Option<String>,
}

/// Classification of a state (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateKind {
    /// Offers rendezvous guards (may also offer `tau` alternatives in the
    /// remote, modelling autonomous decisions).
    Communication,
    /// Only `tau` branches; the process cannot rendezvous here but will
    /// eventually reach a communication state.
    Internal,
}

/// A control state of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Human-readable name (e.g. `"F"`, `"E"`, `"V"`).
    pub name: String,
    /// Communication or internal.
    pub kind: StateKind,
    /// Guard alternatives. Order is semantically irrelevant for rendezvous
    /// semantics but determines the home's output-guard retry cycling order
    /// in the refined protocol (paper Table 2 row T2).
    pub branches: Vec<Branch>,
}

impl State {
    /// Iterates over `Send` branches with their indices.
    pub fn sends(&self) -> impl Iterator<Item = (u32, &Branch)> {
        self.branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.action.is_send())
            .map(|(i, b)| (i as u32, b))
    }

    /// Iterates over `Recv` branches with their indices.
    pub fn recvs(&self) -> impl Iterator<Item = (u32, &Branch)> {
        self.branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.action.is_recv())
            .map(|(i, b)| (i as u32, b))
    }

    /// Iterates over `Tau` branches with their indices.
    pub fn taus(&self) -> impl Iterator<Item = (u32, &Branch)> {
        self.branches
            .iter()
            .enumerate()
            .filter(|(_, b)| b.action.is_tau())
            .map(|(i, b)| (i as u32, b))
    }

    /// True if the state has at least one `Send` branch.
    pub fn has_send(&self) -> bool {
        self.branches.iter().any(|b| b.action.is_send())
    }

    /// True if the state has at least one `Recv` branch.
    pub fn has_recv(&self) -> bool {
        self.branches.iter().any(|b| b.action.is_recv())
    }
}

/// A variable declaration with its initial value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Human-readable name (e.g. `"o"`, `"data"`).
    pub name: String,
    /// Initial value at system start.
    pub init: Value,
}

/// A finite-state process: the home node or the remote template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Process {
    /// Human-readable name.
    pub name: String,
    /// All control states; `StateId` indexes into this vector.
    pub states: Vec<State>,
    /// Local variable declarations; `VarId` indexes into this vector.
    pub vars: Vec<VarDecl>,
    /// Initial control state.
    pub initial: StateId,
}

impl Process {
    /// Looks up a state.
    pub fn state(&self, id: StateId) -> Option<&State> {
        self.states.get(id.index())
    }

    /// Initial environment from the variable declarations.
    pub fn initial_env(&self) -> crate::value::Env {
        crate::value::Env::new(self.vars.iter().map(|v| v.init).collect())
    }

    /// Finds a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(|i| StateId(i as u32))
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the process has no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// A complete rendezvous protocol specification over the star topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolSpec {
    /// Protocol name (e.g. `"migratory"`).
    pub name: String,
    /// The home (directory) process.
    pub home: Process,
    /// The remote template, instantiated once per remote node.
    pub remote: Process,
    /// Message-type names for diagnostics and DOT output.
    pub msgs: SymbolTable,
}

impl ProtocolSpec {
    /// The printable name of a message type.
    pub fn msg_name(&self, m: MsgType) -> &str {
        self.msgs.name(m.0).unwrap_or("?")
    }

    /// Looks up a message type by name.
    pub fn msg_by_name(&self, name: &str) -> Option<MsgType> {
        self.msgs.lookup(name).map(MsgType)
    }

    /// Total number of branches across both processes — a rough size metric
    /// used in reports.
    pub fn branch_count(&self) -> usize {
        self.home.states.iter().map(|s| s.branches.len()).sum::<usize>()
            + self.remote.states.iter().map(|s| s.branches.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RemoteId;

    fn mini_state() -> State {
        State {
            name: "S".into(),
            kind: StateKind::Communication,
            branches: vec![
                Branch {
                    guard: None,
                    action: CommAction::Send { to: Peer::Home, msg: MsgType(0), payload: None },
                    assigns: vec![],
                    target: StateId(0),
                    tag: None,
                },
                Branch {
                    guard: None,
                    action: CommAction::Recv { from: Peer::Home, msg: MsgType(1), bind: None },
                    assigns: vec![],
                    target: StateId(0),
                    tag: None,
                },
                Branch {
                    guard: None,
                    action: CommAction::Tau,
                    assigns: vec![],
                    target: StateId(0),
                    tag: None,
                },
            ],
        }
    }

    #[test]
    fn state_iterators_partition_branches() {
        let s = mini_state();
        assert_eq!(s.sends().count(), 1);
        assert_eq!(s.recvs().count(), 1);
        assert_eq!(s.taus().count(), 1);
        assert!(s.has_send());
        assert!(s.has_recv());
    }

    #[test]
    fn action_classification() {
        let send = CommAction::Send { to: Peer::Home, msg: MsgType(2), payload: None };
        assert!(send.is_send());
        assert_eq!(send.msg(), Some(MsgType(2)));
        assert!(CommAction::Tau.is_tau());
        assert_eq!(CommAction::Tau.msg(), None);
    }

    #[test]
    fn peer_is_any() {
        assert!(Peer::AnyRemote { bind: None }.is_any());
        assert!(!Peer::Home.is_any());
        assert!(!Peer::Remote(Expr::node(RemoteId(0))).is_any());
    }

    #[test]
    fn process_lookup_and_env() {
        let p = Process {
            name: "home".into(),
            states: vec![mini_state()],
            vars: vec![VarDecl { name: "x".into(), init: Value::Int(3) }],
            initial: StateId(0),
        };
        assert_eq!(p.state_by_name("S"), Some(StateId(0)));
        assert_eq!(p.state_by_name("nope"), None);
        assert_eq!(p.initial_env().get(0), Some(Value::Int(3)));
        assert!(p.state(StateId(0)).is_some());
        assert!(p.state(StateId(9)).is_none());
        assert_eq!(p.len(), 1);
    }
}
