//! Fluent construction API for [`ProtocolSpec`]s.
//!
//! The builder mirrors the paper's CSP notation. A branch is written as a
//! chain that picks a guard, an action, bindings/assignments and finally a
//! successor via [`BranchBuilder::goto`], which commits the branch:
//!
//! ```
//! use ccr_core::builder::ProtocolBuilder;
//! use ccr_core::expr::Expr;
//! use ccr_core::value::Value;
//! use ccr_core::ids::RemoteId;
//!
//! let mut b = ProtocolBuilder::new("demo");
//! let ping = b.msg("ping");
//! let o = b.home_var("o", Value::Node(RemoteId(0)));
//! let h0 = b.home_state("H0");
//! b.home(h0).recv_any(ping).bind_sender(o).goto(h0);
//! let r0 = b.remote_state("R0");
//! b.remote(r0).send(ping).goto(r0);
//! let spec = b.finish().unwrap();
//! assert_eq!(spec.home.states.len(), 1);
//! ```

use crate::error::{CoreError, Result};
use crate::expr::Expr;
use crate::ids::{MsgType, StateId, SymbolTable, VarId};
use crate::process::{Branch, CommAction, Peer, Process, ProtocolSpec, State, StateKind, VarDecl};
use crate::value::Value;

/// Which process a [`BranchBuilder`] is adding to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Home,
    Remote,
}

/// Builder for a complete [`ProtocolSpec`].
#[derive(Debug)]
pub struct ProtocolBuilder {
    name: String,
    msgs: SymbolTable,
    home_states: Vec<State>,
    home_vars: Vec<VarDecl>,
    remote_states: Vec<State>,
    remote_vars: Vec<VarDecl>,
    errors: Vec<String>,
}

impl ProtocolBuilder {
    /// Starts a new protocol named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            msgs: SymbolTable::new(),
            home_states: Vec::new(),
            home_vars: Vec::new(),
            remote_states: Vec::new(),
            remote_vars: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Interns a message type.
    pub fn msg(&mut self, name: &str) -> MsgType {
        MsgType(self.msgs.intern(name))
    }

    /// Declares a home variable with an initial value.
    pub fn home_var(&mut self, name: &str, init: Value) -> VarId {
        self.home_vars.push(VarDecl { name: name.to_owned(), init });
        VarId((self.home_vars.len() - 1) as u32)
    }

    /// Declares a remote-template variable with an initial value.
    pub fn remote_var(&mut self, name: &str, init: Value) -> VarId {
        self.remote_vars.push(VarDecl { name: name.to_owned(), init });
        VarId((self.remote_vars.len() - 1) as u32)
    }

    fn add_state(states: &mut Vec<State>, name: &str, kind: StateKind) -> StateId {
        states.push(State { name: name.to_owned(), kind, branches: Vec::new() });
        StateId((states.len() - 1) as u32)
    }

    /// Adds a home communication state. The first state added is initial.
    pub fn home_state(&mut self, name: &str) -> StateId {
        Self::add_state(&mut self.home_states, name, StateKind::Communication)
    }

    /// Adds a home internal state.
    pub fn home_internal(&mut self, name: &str) -> StateId {
        Self::add_state(&mut self.home_states, name, StateKind::Internal)
    }

    /// Adds a remote communication state. The first state added is initial.
    pub fn remote_state(&mut self, name: &str) -> StateId {
        Self::add_state(&mut self.remote_states, name, StateKind::Communication)
    }

    /// Adds a remote internal state.
    pub fn remote_internal(&mut self, name: &str) -> StateId {
        Self::add_state(&mut self.remote_states, name, StateKind::Internal)
    }

    /// Starts a branch of home state `state`.
    pub fn home(&mut self, state: StateId) -> BranchBuilder<'_> {
        BranchBuilder::new(self, Role::Home, state)
    }

    /// Starts a branch of remote state `state`.
    pub fn remote(&mut self, state: StateId) -> BranchBuilder<'_> {
        BranchBuilder::new(self, Role::Remote, state)
    }

    /// Finishes construction, running full validation (§2.4 restrictions).
    pub fn finish(self) -> Result<ProtocolSpec> {
        let spec = self.finish_unchecked()?;
        crate::validate::validate(&spec)?;
        Ok(spec)
    }

    /// Finishes construction without the §2.4 validation (structural errors
    /// accumulated during building are still reported). Useful in tests that
    /// deliberately build ill-formed specifications.
    pub fn finish_unchecked(self) -> Result<ProtocolSpec> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(CoreError::Builder(e));
        }
        Ok(ProtocolSpec {
            name: self.name,
            home: Process {
                name: "home".into(),
                states: self.home_states,
                vars: self.home_vars,
                initial: StateId(0),
            },
            remote: Process {
                name: "remote".into(),
                states: self.remote_states,
                vars: self.remote_vars,
                initial: StateId(0),
            },
            msgs: self.msgs,
        })
    }
}

/// Builds a single branch; committed by [`BranchBuilder::goto`].
#[derive(Debug)]
pub struct BranchBuilder<'a> {
    owner: &'a mut ProtocolBuilder,
    role: Role,
    state: StateId,
    guard: Option<Expr>,
    action: Option<CommAction>,
    assigns: Vec<(VarId, Expr)>,
    tag: Option<String>,
}

impl<'a> BranchBuilder<'a> {
    fn new(owner: &'a mut ProtocolBuilder, role: Role, state: StateId) -> Self {
        Self { owner, role, state, guard: None, action: None, assigns: Vec::new(), tag: None }
    }

    fn err(&mut self, msg: String) {
        self.owner.errors.push(msg);
    }

    /// Adds a boolean guard to the branch.
    pub fn when(mut self, guard: Expr) -> Self {
        if self.guard.is_some() {
            self.err("duplicate guard on branch".into());
        }
        self.guard = Some(guard);
        self
    }

    fn set_action(&mut self, a: CommAction) {
        if self.action.is_some() {
            self.err("branch already has an action".into());
        }
        self.action = Some(a);
    }

    /// Remote-side output to home: `h!msg`.
    pub fn send(mut self, msg: MsgType) -> Self {
        if self.role != Role::Remote {
            self.err("send(msg) addresses home; use send_to on the home side".into());
        }
        self.set_action(CommAction::Send { to: Peer::Home, msg, payload: None });
        self
    }

    /// Home-side output to a specific remote: `r(expr)!msg`.
    pub fn send_to(mut self, peer: Expr, msg: MsgType) -> Self {
        if self.role != Role::Home {
            self.err("send_to is home-only; remotes may only address home".into());
        }
        self.set_action(CommAction::Send { to: Peer::Remote(peer), msg, payload: None });
        self
    }

    /// Attaches a payload expression to the pending `Send`.
    pub fn payload(mut self, e: Expr) -> Self {
        match &mut self.action {
            Some(CommAction::Send { payload, .. }) => {
                if payload.is_some() {
                    self.err("duplicate payload".into());
                } else {
                    *payload = Some(e);
                }
            }
            _ => self.err("payload() requires a preceding send".into()),
        }
        self
    }

    /// Remote-side input from home: `h?msg`.
    pub fn recv(mut self, msg: MsgType) -> Self {
        if self.role != Role::Remote {
            self.err("recv(msg) means from-home; use recv_any/recv_exact on the home side".into());
        }
        self.set_action(CommAction::Recv { from: Peer::Home, msg, bind: None });
        self
    }

    /// Home-side generalized input from any remote: `r(i)?msg`.
    pub fn recv_any(mut self, msg: MsgType) -> Self {
        if self.role != Role::Home {
            self.err("recv_any is home-only".into());
        }
        self.set_action(CommAction::Recv { from: Peer::AnyRemote { bind: None }, msg, bind: None });
        self
    }

    /// Home-side input from a specific remote: `r(expr)?msg`.
    pub fn recv_exact(mut self, msg: MsgType, peer: Expr) -> Self {
        if self.role != Role::Home {
            self.err("recv_exact is home-only".into());
        }
        self.set_action(CommAction::Recv { from: Peer::Remote(peer), msg, bind: None });
        self
    }

    /// Binds the payload of the pending `Recv` to a variable.
    pub fn bind(mut self, v: VarId) -> Self {
        match &mut self.action {
            Some(CommAction::Recv { bind, .. }) => {
                if bind.is_some() {
                    self.err("duplicate payload binding".into());
                } else {
                    *bind = Some(v);
                }
            }
            _ => self.err("bind() requires a preceding recv".into()),
        }
        self
    }

    /// Binds the *sender identity* of a pending `recv_any` to a variable.
    pub fn bind_sender(mut self, v: VarId) -> Self {
        match &mut self.action {
            Some(CommAction::Recv { from: Peer::AnyRemote { bind }, .. }) => {
                if bind.is_some() {
                    self.err("duplicate sender binding".into());
                } else {
                    *bind = Some(v);
                }
            }
            _ => self.err("bind_sender() requires a preceding recv_any".into()),
        }
        self
    }

    /// An autonomous `tau` step.
    pub fn tau(mut self) -> Self {
        self.set_action(CommAction::Tau);
        self
    }

    /// Appends an assignment executed when the branch fires.
    pub fn assign(mut self, v: VarId, e: Expr) -> Self {
        self.assigns.push((v, e));
        self
    }

    /// Names the branch (e.g. `"evict"`); carried into transition labels
    /// so simulators can recognize autonomous decisions.
    pub fn tag(mut self, t: &str) -> Self {
        if self.tag.is_some() {
            self.err("duplicate tag on branch".into());
        }
        self.tag = Some(t.to_owned());
        self
    }

    /// Commits the branch with successor `target`.
    pub fn goto(mut self, target: StateId) {
        let action = match self.action.take() {
            Some(a) => a,
            None => {
                self.err("goto() before any action; use tau() for autonomous steps".into());
                return;
            }
        };
        let branch = Branch {
            guard: self.guard.take(),
            action,
            assigns: std::mem::take(&mut self.assigns),
            target,
            tag: self.tag.take(),
        };
        let states = match self.role {
            Role::Home => &mut self.owner.home_states,
            Role::Remote => &mut self.owner.remote_states,
        };
        match states.get_mut(self.state.index()) {
            Some(s) => s.branches.push(branch),
            None => self.owner.errors.push(format!("branch added to missing state {}", self.state)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RemoteId;

    #[test]
    fn builds_a_minimal_protocol() {
        let mut b = ProtocolBuilder::new("mini");
        let m = b.msg("m");
        let h = b.home_state("H");
        let r = b.remote_state("R");
        b.home(h).recv_any(m).goto(h);
        b.remote(r).send(m).goto(r);
        let spec = b.finish().unwrap();
        assert_eq!(spec.name, "mini");
        assert_eq!(spec.msg_by_name("m"), Some(m));
        assert_eq!(spec.branch_count(), 2);
    }

    #[test]
    fn misuse_is_reported_at_finish() {
        let mut b = ProtocolBuilder::new("bad");
        let m = b.msg("m");
        let h = b.home_state("H");
        // recv on the home side is remote-only sugar -> builder error.
        b.home(h).recv(m).goto(h);
        assert!(matches!(b.finish_unchecked(), Err(CoreError::Builder(_))));
    }

    #[test]
    fn goto_without_action_is_an_error() {
        let mut b = ProtocolBuilder::new("bad2");
        let h = b.home_state("H");
        b.home(h).goto(h);
        assert!(b.finish_unchecked().is_err());
    }

    #[test]
    fn payload_requires_send_and_bind_requires_recv() {
        let mut b = ProtocolBuilder::new("bad3");
        let m = b.msg("m");
        let x = b.home_var("x", Value::Int(0));
        let h = b.home_state("H");
        b.home(h).recv_any(m).payload(Expr::int(1)).goto(h);
        assert!(b.finish_unchecked().is_err());

        let mut b2 = ProtocolBuilder::new("bad4");
        let m2 = b2.msg("m");
        let _ = x;
        let h2 = b2.home_state("H");
        let y = b2.home_var("y", Value::Int(0));
        b2.home(h2).send_to(Expr::node(RemoteId(0)), m2).bind(y).goto(h2);
        assert!(b2.finish_unchecked().is_err());
    }

    #[test]
    fn duplicate_guard_is_an_error() {
        let mut b = ProtocolBuilder::new("bad5");
        let m = b.msg("m");
        let h = b.home_state("H");
        b.home(h).when(Expr::bool(true)).when(Expr::bool(false)).recv_any(m).goto(h);
        assert!(b.finish_unchecked().is_err());
    }

    #[test]
    fn assigns_are_recorded_in_order() {
        let mut b = ProtocolBuilder::new("asg");
        let m = b.msg("m");
        let h = b.home_state("H");
        let x = b.home_var("x", Value::Int(0));
        b.home(h).recv_any(m).assign(x, Expr::int(1)).assign(x, Expr::int(2)).goto(h);
        let spec = b.finish_unchecked().unwrap();
        let br = &spec.home.states[0].branches[0];
        assert_eq!(br.assigns.len(), 2);
        assert_eq!(br.assigns[1].1, Expr::int(2));
    }
}
