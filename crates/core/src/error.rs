//! Error types for specification construction, validation and refinement.

use crate::ids::{MsgType, StateId, VarId};
use crate::value::Value;
use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while building, validating, evaluating or refining a
/// protocol specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// An expression referenced an undeclared variable.
    UnknownVar {
        /// The offending variable.
        var: VarId,
    },
    /// `Expr::SelfId` was evaluated in the home process.
    SelfIdInHome,
    /// A value had the wrong kind for the operation.
    TypeMismatch {
        /// Human description of the expected kind.
        expected: &'static str,
        /// The value actually produced.
        got: Value,
    },
    /// Integer remainder by zero.
    DivideByZero,
    /// A branch referenced a state id outside the process.
    DanglingState {
        /// Which process ("home" or "remote").
        process: &'static str,
        /// The missing state.
        state: StateId,
    },
    /// A branch referenced an undeclared variable.
    DanglingVar {
        /// Which process.
        process: &'static str,
        /// The state containing the reference.
        state: StateId,
        /// The missing variable.
        var: VarId,
    },
    /// A remote action addressed a peer other than the home node, or the
    /// home addressed itself — the star topology was violated.
    StarViolation {
        /// Which process.
        process: &'static str,
        /// The offending state.
        state: StateId,
        /// Description of the violation.
        detail: &'static str,
    },
    /// A remote communication state mixes an output with other guards, or
    /// has more than one output (§2.4 restriction).
    RemoteGuardRestriction {
        /// The offending state.
        state: StateId,
        /// Description of the violation.
        detail: &'static str,
    },
    /// An internal state carries a communication guard.
    InternalStateCommunicates {
        /// Which process.
        process: &'static str,
        /// The offending state.
        state: StateId,
    },
    /// A cycle of internal states exists with no communication state on it,
    /// violating the eventual-communication assumption (§2.4).
    InternalLivelock {
        /// Which process.
        process: &'static str,
        /// A state on the cycle.
        state: StateId,
    },
    /// A state has no branches at all (terminal states are not part of the
    /// paper's model — protocols run forever).
    TerminalState {
        /// Which process.
        process: &'static str,
        /// The offending state.
        state: StateId,
    },
    /// The protocol has no states in one of the processes.
    EmptyProcess {
        /// Which process.
        process: &'static str,
    },
    /// A request/reply optimization pair failed its syntactic safety check.
    ReqRepUnsafe {
        /// The request message of the rejected pair.
        req: MsgType,
        /// The reply message of the rejected pair.
        repl: MsgType,
        /// Why the pair was rejected.
        reason: String,
    },
    /// A builder method was used inconsistently (e.g. `goto` before any
    /// action was chosen).
    Builder(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownVar { var } => write!(f, "unknown variable {var}"),
            CoreError::SelfIdInHome => write!(f, "`self` evaluated in home process"),
            CoreError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            CoreError::DivideByZero => write!(f, "remainder by zero"),
            CoreError::DanglingState { process, state } => {
                write!(f, "{process}: branch targets missing state {state}")
            }
            CoreError::DanglingVar { process, state, var } => {
                write!(f, "{process}: state {state} references undeclared variable {var}")
            }
            CoreError::StarViolation { process, state, detail } => {
                write!(f, "{process}: state {state} violates star topology: {detail}")
            }
            CoreError::RemoteGuardRestriction { state, detail } => {
                write!(f, "remote: state {state} violates guard restriction: {detail}")
            }
            CoreError::InternalStateCommunicates { process, state } => {
                write!(f, "{process}: internal state {state} has a communication guard")
            }
            CoreError::InternalLivelock { process, state } => {
                write!(
                    f,
                    "{process}: internal states around {state} form a cycle that never communicates"
                )
            }
            CoreError::TerminalState { process, state } => {
                write!(f, "{process}: state {state} has no outgoing branches")
            }
            CoreError::EmptyProcess { process } => write!(f, "{process}: no states"),
            CoreError::ReqRepUnsafe { req, repl, reason } => {
                write!(f, "request/reply pair ({req}, {repl}) is unsafe: {reason}")
            }
            CoreError::Builder(msg) => write!(f, "builder misuse: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let samples: Vec<CoreError> = vec![
            CoreError::UnknownVar { var: VarId(1) },
            CoreError::SelfIdInHome,
            CoreError::TypeMismatch { expected: "int", got: Value::Unit },
            CoreError::DivideByZero,
            CoreError::DanglingState { process: "home", state: StateId(9) },
            CoreError::StarViolation { process: "remote", state: StateId(0), detail: "x" },
            CoreError::RemoteGuardRestriction { state: StateId(0), detail: "y" },
            CoreError::InternalStateCommunicates { process: "home", state: StateId(1) },
            CoreError::InternalLivelock { process: "home", state: StateId(1) },
            CoreError::TerminalState { process: "remote", state: StateId(2) },
            CoreError::EmptyProcess { process: "home" },
            CoreError::ReqRepUnsafe { req: MsgType(0), repl: MsgType(1), reason: "z".into() },
            CoreError::Builder("oops".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
