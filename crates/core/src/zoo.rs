//! The protocol zoo: a seeded generator of well-formed rendezvous specs.
//!
//! The refinement procedure (§3) is the paper's core claim, but hand-written
//! specs only exercise a handful of shapes. This module generates *arbitrary*
//! protocols inside the §2.4 syntactic discipline — star topology, remote
//! states that are active (one send) xor passive (receives plus an optional
//! tau escape), home states made of receives and sends with optional
//! owner-variable addressing — so the whole derivation stack can be fuzzed:
//! every generated spec passes [`crate::validate::validate`] by construction.
//!
//! The generator is split in two layers on purpose:
//!
//! * [`ZooSpec`] is the *shape*: plain vectors of [`HShape`]/[`RShape`]
//!   values with free indices. Shapes are trivial to mutate, which is what
//!   the shrinker needs — dropping a state or branch never requires index
//!   book-keeping because [`ZooSpec::build`] clamps every index modulo the
//!   actual vector lengths.
//! * [`ZooSpec::build`] lowers a shape to a [`ProtocolSpec`] through
//!   [`crate::builder::ProtocolBuilder`], running full §2.4 validation.
//!
//! Randomness is a splitmix64 stream (same finalizer as `ccr-faults`; the
//! constant is duplicated here because `ccr-core` sits below `ccr-faults`
//! in the crate graph). `generate(seed, index)` is a pure function: the
//! same `(seed, index)` pair yields the same spec on every platform, which
//! is what makes `ccr fuzz --seed` reproducible.

use crate::builder::ProtocolBuilder;
use crate::error::Result;
use crate::expr::Expr;
use crate::ids::{MsgType, RemoteId, StateId};
use crate::process::ProtocolSpec;
use crate::value::Value;

/// Shape of one remote state (§2.4: active xor passive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RShape {
    /// Active: exactly one send to home.
    Active {
        /// Message index (clamped modulo the message count at build time).
        msg: usize,
        /// Target state index (clamped modulo the remote state count).
        target: usize,
    },
    /// Passive: one or more receives from home plus an optional tau escape.
    Passive {
        /// `(msg, target)` receive branches; at least one.
        recvs: Vec<(usize, usize)>,
        /// Optional spontaneous internal transition (e.g. an eviction).
        tau: Option<usize>,
    },
}

/// Shape of one home branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HShape {
    /// `r(*) ? m` — receive `m` from any remote.
    RecvAny {
        /// Message index.
        msg: usize,
        /// Target home state index.
        target: usize,
    },
    /// `r(* -> o) ? m` — receive from any remote, binding the sender into
    /// the owner variable (the token/migratory idiom; keeps the spec
    /// permutable).
    RecvAnyBind {
        /// Message index.
        msg: usize,
        /// Target home state index.
        target: usize,
    },
    /// `r(o) ! m` — send to the remote currently named by the owner
    /// variable (permutable).
    SendOwner {
        /// Message index.
        msg: usize,
        /// Target home state index.
        target: usize,
    },
    /// `r(o) ? m` — receive specifically from the owner (permutable).
    RecvOwner {
        /// Message index.
        msg: usize,
        /// Target home state index.
        target: usize,
    },
    /// `r(rK) ! m` — send to a fixed node literal. Node literals make the
    /// spec order-sensitive, so this shape exercises the scalarset
    /// check's identity-degrade path.
    SendTo {
        /// Remote node literal (clamped modulo the system size at build).
        node: u32,
        /// Message index.
        msg: usize,
        /// Target home state index.
        target: usize,
    },
}

/// A generated protocol shape: everything needed to build a
/// [`ProtocolSpec`], in a form the shrinker can mutate freely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZooSpec {
    /// Protocol name used for the built spec (and its `.ccp` rendering).
    pub name: String,
    /// Number of message types (`m0..m{nm-1}`); at least 1.
    pub nm: usize,
    /// Home states: one vector of branches per state (`H0..`).
    pub home: Vec<Vec<HShape>>,
    /// Remote template states (`R0..`).
    pub remote: Vec<RShape>,
}

/// Splitmix64 — the same stream `ccr-faults` uses for fault plans.
#[derive(Debug, Clone, Copy)]
pub struct ZooRng {
    state: u64,
}

/// The splitmix64 finalizer (public so callers can derive sub-seeds the
/// same way `generate` does).
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ZooRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` tiny here, so modulo bias is moot).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

impl ZooSpec {
    /// Deterministically generates the `index`-th spec of the stream
    /// `seed`. Pure: same `(seed, index)` ⇒ same shape, always.
    pub fn generate(seed: u64, index: u64) -> ZooSpec {
        let mut rng = ZooRng::new(mix(seed) ^ mix(index.wrapping_add(1)));
        let nm = rng.range(1, 3);
        let nh = rng.range(1, 3);
        let nr = rng.range(1, 3);
        let home = (0..nh)
            .map(|_| {
                let nb = rng.range(1, 3);
                (0..nb).map(|_| Self::gen_home_branch(&mut rng, nm, nh)).collect()
            })
            .collect();
        let remote = (0..nr).map(|_| Self::gen_remote_state(&mut rng, nm, nr)).collect();
        ZooSpec { name: format!("zoo_{seed}_{index}"), nm, home, remote }
    }

    fn gen_home_branch(rng: &mut ZooRng, nm: usize, nh: usize) -> HShape {
        let msg = rng.below(nm);
        let target = rng.below(nh);
        match rng.below(5) {
            0 => HShape::RecvAny { msg, target },
            1 => HShape::RecvAnyBind { msg, target },
            2 => HShape::SendOwner { msg, target },
            3 => HShape::RecvOwner { msg, target },
            _ => HShape::SendTo { node: rng.below(2) as u32, msg, target },
        }
    }

    fn gen_remote_state(rng: &mut ZooRng, nm: usize, nr: usize) -> RShape {
        if rng.chance(2, 5) {
            RShape::Active { msg: rng.below(nm), target: rng.below(nr) }
        } else {
            let nrecv = rng.range(1, 2);
            let recvs = (0..nrecv).map(|_| (rng.below(nm), rng.below(nr))).collect();
            let tau = if rng.chance(1, 2) { Some(rng.below(nr)) } else { None };
            RShape::Passive { recvs, tau }
        }
    }

    /// Whether any home branch references the owner variable. Controls
    /// whether `build` declares `var o: node := r0`.
    pub fn uses_owner(&self) -> bool {
        self.home.iter().flatten().any(|b| {
            matches!(
                b,
                HShape::RecvAnyBind { .. } | HShape::SendOwner { .. } | HShape::RecvOwner { .. }
            )
        })
    }

    /// Rough size metric used by the shrinker to rank candidates: total
    /// branch count plus state and message counts.
    pub fn size(&self) -> usize {
        let hb: usize = self.home.iter().map(Vec::len).sum();
        let rb: usize = self
            .remote
            .iter()
            .map(|s| match s {
                RShape::Active { .. } => 1,
                RShape::Passive { recvs, tau } => recvs.len() + usize::from(tau.is_some()),
            })
            .sum();
        hb + rb + self.home.len() + self.remote.len() + self.nm
    }

    /// Lowers the shape to a validated [`ProtocolSpec`].
    ///
    /// All indices are clamped modulo the actual vector lengths, so any
    /// shape with ≥1 message, ≥1 home state, ≥1 branch per home state and
    /// ≥1 remote state builds — mutation never has to fix up targets. The
    /// only build failures are structural §2.4 violations (e.g. a home
    /// state whose branch vector is empty), which the shrinker treats as
    /// "candidate invalid, skip".
    pub fn build(&self) -> Result<ProtocolSpec> {
        let nm = self.nm.max(1);
        let nh = self.home.len().max(1);
        let nr = self.remote.len().max(1);
        let mut b = ProtocolBuilder::new(&self.name);
        let msgs: Vec<MsgType> = (0..nm).map(|i| b.msg(&format!("m{i}"))).collect();
        let owner =
            if self.uses_owner() { Some(b.home_var("o", Value::Node(RemoteId(0)))) } else { None };
        let hstates: Vec<StateId> =
            (0..self.home.len()).map(|i| b.home_state(&format!("H{i}"))).collect();
        for (si, branches) in self.home.iter().enumerate() {
            for br in branches {
                match br {
                    HShape::RecvAny { msg, target } => {
                        b.home(hstates[si]).recv_any(msgs[msg % nm]).goto(hstates[target % nh]);
                    }
                    HShape::RecvAnyBind { msg, target } => {
                        b.home(hstates[si])
                            .recv_any(msgs[msg % nm])
                            .bind_sender(owner.expect("uses_owner"))
                            .goto(hstates[target % nh]);
                    }
                    HShape::SendOwner { msg, target } => {
                        b.home(hstates[si])
                            .send_to(Expr::Var(owner.expect("uses_owner")), msgs[msg % nm])
                            .goto(hstates[target % nh]);
                    }
                    HShape::RecvOwner { msg, target } => {
                        b.home(hstates[si])
                            .recv_exact(msgs[msg % nm], Expr::Var(owner.expect("uses_owner")))
                            .goto(hstates[target % nh]);
                    }
                    HShape::SendTo { node, msg, target } => {
                        b.home(hstates[si])
                            .send_to(Expr::node(RemoteId(node % 2)), msgs[msg % nm])
                            .goto(hstates[target % nh]);
                    }
                }
            }
        }
        let rstates: Vec<StateId> =
            (0..self.remote.len()).map(|i| b.remote_state(&format!("R{i}"))).collect();
        for (si, shape) in self.remote.iter().enumerate() {
            match shape {
                RShape::Active { msg, target } => {
                    b.remote(rstates[si]).send(msgs[msg % nm]).goto(rstates[target % nr]);
                }
                RShape::Passive { recvs, tau } => {
                    for (msg, target) in recvs {
                        b.remote(rstates[si]).recv(msgs[msg % nm]).goto(rstates[target % nr]);
                    }
                    if let Some(t) = tau {
                        b.remote(rstates[si]).tau().goto(rstates[t % nr]);
                    }
                }
            }
        }
        b.finish()
    }

    /// One-step shrink candidates, each strictly smaller than `self`, in a
    /// fixed deterministic order (remote states, home states, home
    /// branches, passive receives, tau escapes, message count). Candidates
    /// may fail to [`build`](Self::build) (the shrinker skips those); they
    /// never panic.
    pub fn shrink_candidates(&self) -> Vec<ZooSpec> {
        let mut out = Vec::new();
        if self.remote.len() > 1 {
            for i in 0..self.remote.len() {
                let mut c = self.clone();
                c.remote.remove(i);
                out.push(c);
            }
        }
        if self.home.len() > 1 {
            for i in 0..self.home.len() {
                let mut c = self.clone();
                c.home.remove(i);
                out.push(c);
            }
        }
        for (si, branches) in self.home.iter().enumerate() {
            if branches.len() > 1 {
                for bi in 0..branches.len() {
                    let mut c = self.clone();
                    c.home[si].remove(bi);
                    out.push(c);
                }
            }
        }
        for (si, shape) in self.remote.iter().enumerate() {
            if let RShape::Passive { recvs, tau } = shape {
                if recvs.len() > 1 || (!recvs.is_empty() && tau.is_some()) {
                    for ri in 0..recvs.len() {
                        // Keep the state non-terminal: only drop a recv if
                        // another branch (recv or tau) remains.
                        if recvs.len() > 1 || tau.is_some() {
                            let mut c = self.clone();
                            if let RShape::Passive { recvs, .. } = &mut c.remote[si] {
                                recvs.remove(ri);
                            }
                            out.push(c);
                        }
                    }
                }
                if tau.is_some() && !recvs.is_empty() {
                    let mut c = self.clone();
                    if let RShape::Passive { tau, .. } = &mut c.remote[si] {
                        *tau = None;
                    }
                    out.push(c);
                }
            }
        }
        if self.nm > 1 {
            let mut c = self.clone();
            c.nm -= 1;
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        for i in 0..32 {
            assert_eq!(ZooSpec::generate(7, i), ZooSpec::generate(7, i));
        }
        assert_ne!(ZooSpec::generate(7, 0), ZooSpec::generate(8, 0));
    }

    #[test]
    fn generated_specs_validate() {
        for seed in 0..4u64 {
            for i in 0..64u64 {
                let z = ZooSpec::generate(seed, i);
                let spec = z.build().expect("generated shapes satisfy §2.4");
                crate::validate::validate(&spec).expect("double-checked");
            }
        }
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        for i in 0..32u64 {
            let z = ZooSpec::generate(11, i);
            for c in z.shrink_candidates() {
                assert!(c.size() < z.size(), "candidate not smaller: {c:?} vs {z:?}");
            }
        }
    }

    #[test]
    fn rng_matches_reference_splitmix() {
        // First outputs of splitmix64 seeded with 0 (reference vector).
        let mut r = ZooRng::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }
}
