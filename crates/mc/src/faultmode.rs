//! Fault-closure verification: safety and progress under ≤ f wire faults.
//!
//! The paper proves its refinement correct over a reliable FIFO network
//! (§2.2). [`ccr_runtime::FaultClosure`] weakens that assumption into an
//! adversary with a bounded budget of drop/duplicate faults plus an
//! always-available recovery transition (retransmission into the original
//! FIFO position). This module runs the standard exploration and progress
//! machinery over that closure and packages the result:
//!
//! * **Safety**: the user invariant holds in every reachable base
//!   configuration, no matter where the adversary spends its budget;
//! * **Recovery**: from every reachable state a rendezvous completion is
//!   still reachable — faults delay the protocol but cannot wedge it,
//!   because once the budget is spent and the lost frames are
//!   retransmitted the network has quiesced.

use crate::parallel::{explore_parallel_traced_observed, ParallelConfig};
use crate::progress::check_progress_parallel_observed;
use crate::report::{Outcome, ProgressReport};
use crate::search::{Budget, SearchObserver};
use crate::trace::{explore_traced_observed, TracedReport};
use ccr_runtime::asynch::{AsyncState, AsyncSystem};
use ccr_runtime::FaultClosure;
use ccr_trace::NullSink;
use serde::Serialize;

/// Outcome of verifying an asynchronous protocol under a fault budget.
#[derive(Debug, Clone, Serialize)]
pub struct FaultClosureReport {
    /// The adversary's fault budget `f`.
    pub budget_faults: u32,
    /// Reachability + invariant + deadlock result over the closure.
    pub explore: TracedReport,
    /// Progress (§2.5) over the closure: completions stay reachable
    /// through and after faults.
    pub progress: ProgressReport,
}

impl FaultClosureReport {
    /// True when safety held everywhere and progress survives the faults.
    pub fn holds(&self) -> bool {
        matches!(self.explore.outcome, Outcome::Complete) && self.progress.holds()
    }
}

/// Explores the fault closure of `sys` with budget `faults`, checking
/// `invariant` on every reachable base configuration and then checking
/// progress, reporting heartbeats and any counterexample trail to `obs`.
pub fn check_fault_closure_observed(
    sys: &AsyncSystem<'_>,
    faults: u32,
    budget: &Budget,
    mut invariant: impl FnMut(&AsyncState) -> Option<String>,
    obs: &mut SearchObserver<'_>,
) -> FaultClosureReport {
    let closure = FaultClosure::new(sys.clone(), faults);
    let explore = explore_traced_observed(&closure, budget, |fs| invariant(&fs.base), true, obs);
    let progress =
        crate::progress::check_progress_observed(&closure, budget, |l| l.completes.is_some(), obs);
    FaultClosureReport { budget_faults: faults, explore, progress }
}

/// [`check_fault_closure_observed`] on the multi-threaded engine: both
/// the safety exploration and the progress check run with `cfg.threads`
/// workers. On a complete run the reported counts match the serial
/// checker at any thread count; see [`crate::parallel`] for the exact
/// determinism guarantees on violating runs.
pub fn check_fault_closure_parallel_observed<F>(
    sys: &AsyncSystem<'_>,
    faults: u32,
    budget: &Budget,
    invariant: F,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
) -> FaultClosureReport
where
    F: Fn(&AsyncState) -> Option<String> + Sync,
{
    let closure = FaultClosure::new(sys.clone(), faults);
    let explore = explore_parallel_traced_observed(
        &closure,
        budget,
        |fs: &ccr_runtime::FaultState| invariant(&fs.base),
        true,
        cfg,
        obs,
    )
    .traced_report();
    let progress =
        check_progress_parallel_observed(&closure, budget, |l| l.completes.is_some(), cfg, obs);
    FaultClosureReport { budget_faults: faults, explore, progress }
}

/// [`check_fault_closure_observed`] without live reporting.
pub fn check_fault_closure(
    sys: &AsyncSystem<'_>,
    faults: u32,
    budget: &Budget,
    invariant: impl FnMut(&AsyncState) -> Option<String>,
) -> FaultClosureReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    check_fault_closure_observed(sys, faults, budget, invariant, &mut obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_core::value::Value;
    use ccr_runtime::asynch::AsyncConfig;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn token_protocol_survives_two_faults() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let report = check_fault_closure(&sys, 2, &Budget::states(2_000_000), |_| None);
        assert!(
            report.holds(),
            "token closure must stay safe and live: {:?} / livelocked {} deadlocked {}",
            report.explore.outcome,
            report.progress.livelocked_states,
            report.progress.deadlocked_states
        );
        // A budget of 2 strictly grows the state space over budget 0.
        let base = check_fault_closure(&sys, 0, &Budget::states(2_000_000), |_| None);
        assert!(report.explore.states > base.explore.states);
    }

    #[test]
    fn parallel_closure_matches_serial() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let serial = check_fault_closure(&sys, 1, &Budget::states(2_000_000), |_| None);
        assert!(serial.holds());
        for threads in [2usize, 4] {
            let mut null = ccr_trace::NullSink;
            let mut obs = SearchObserver::new(&mut null);
            let par = check_fault_closure_parallel_observed(
                &sys,
                1,
                &Budget::states(2_000_000),
                |_| None,
                &ParallelConfig::threads(threads),
                &mut obs,
            );
            assert!(par.holds(), "t={threads}");
            assert_eq!(par.explore.states, serial.explore.states, "t={threads}");
            assert_eq!(par.progress.states, serial.progress.states, "t={threads}");
            assert_eq!(
                par.progress.livelocked_states, serial.progress.livelocked_states,
                "t={threads}"
            );
            assert_eq!(
                par.progress.deadlocked_states, serial.progress.deadlocked_states,
                "t={threads}"
            );
        }
    }

    #[test]
    fn invariant_violations_surface_with_a_trail() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        // A deliberately false invariant: no message may ever be in flight.
        let report = check_fault_closure(&sys, 1, &Budget::states(100_000), |s: &AsyncState| {
            (s.in_flight() > 0).then(|| "message in flight".to_string())
        });
        assert!(!report.holds());
        assert!(matches!(report.explore.outcome, Outcome::InvariantViolated(_)));
        assert!(report.explore.trail.is_some(), "counterexample trail expected");
    }
}
