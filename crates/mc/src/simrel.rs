//! The Equation 1 soundness check (paper §4).
//!
//! The paper argues refinement correctness via an abstraction function
//! `abs` from asynchronous to rendezvous configurations satisfying
//!
//! ```text
//! ∀ ql, ql' :  ql →l ql'  ⇒  abs(ql) = abs(ql')  ∨  abs(ql) →h abs(ql')
//! ```
//!
//! — every asynchronous step is either invisible at the rendezvous level
//! (*stutter*) or corresponds to exactly one rendezvous step. We verify
//! this over the entire reachable asynchronous state space: a machine-
//! checked instance of the paper's hand proof, run per protocol and per
//! configuration by the test suite and the soundness benchmark.

use crate::report::SimRelReport;
use crate::search::Budget;
use crate::store::StateStore;
use ccr_runtime::abstraction::abs;
use ccr_runtime::asynch::{AsyncState, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::{EncodeBuf, TransitionSystem};
use std::collections::VecDeque;
use std::time::Instant;

/// Checks Equation 1 over the reachable states of `async_sys`, mapping into
/// `rv_sys` (which must be built over the same spec and remote count).
pub fn check_simulation(
    async_sys: &AsyncSystem<'_>,
    rv_sys: &RendezvousSystem<'_>,
    budget: &Budget,
) -> SimRelReport {
    let started = Instant::now();
    let mut store = StateStore::new();
    let mut frontier: VecDeque<AsyncState> = VecDeque::new();
    let mut succs = Vec::new();
    let mut rv_succs = Vec::new();
    let mut enc = Vec::new();
    // Reused across the whole sweep: one allocation each, not one per
    // transition (`encoded()` would allocate a fresh Vec every time).
    let mut a_buf = EncodeBuf::new();
    let mut a2_buf = EncodeBuf::new();
    let mut r_buf = EncodeBuf::new();

    let mut report = SimRelReport {
        async_states: 0,
        transitions_checked: 0,
        stutters: 0,
        mapped_steps: 0,
        violation: None,
        complete: true,
    };

    let init = async_sys.initial();
    async_sys.encode(&init, &mut enc);
    store.insert(&enc);
    frontier.push_back(init);

    'outer: while let Some(state) = frontier.pop_front() {
        let a = match abs(async_sys, &state) {
            Ok(a) => a,
            Err(e) => {
                report.violation = Some(format!("abs failed on source state: {e}"));
                break;
            }
        };
        a_buf.fill(rv_sys, &a);
        if async_sys.successors(&state, &mut succs).is_err() {
            report.violation = Some("async successor generation failed".into());
            break;
        }
        for (label, next) in succs.drain(..) {
            report.transitions_checked += 1;
            let a2 = match abs(async_sys, &next) {
                Ok(a2) => a2,
                Err(e) => {
                    report.violation = Some(format!("abs failed after rule {}: {e}", label.rule));
                    break 'outer;
                }
            };
            a2_buf.fill(rv_sys, &a2);
            if a_buf.bytes() == a2_buf.bytes() {
                report.stutters += 1;
            } else {
                // Must be a single rendezvous step abs(q) ->h abs(q').
                if rv_sys.successors(&a, &mut rv_succs).is_err() {
                    report.violation = Some("rendezvous successor generation failed".into());
                    break 'outer;
                }
                let matched = rv_succs.iter().any(|(_, r)| r_buf.fill(rv_sys, r) == a2_buf.bytes());
                if !matched {
                    report.violation = Some(format!(
                        "async rule {} (actor {}) maps to an impossible rendezvous step:\n  abs(q)  = {:?}\n  abs(q') = {:?}\n  async q = {:?}\n  async q' = {:?}",
                        label.rule, label.actor, a, a2, state, next
                    ));
                    break 'outer;
                }
                report.mapped_steps += 1;
            }
            async_sys.encode(&next, &mut enc);
            let (_, is_new) = store.insert(&enc);
            if is_new {
                if store.len() >= budget.max_states
                    || store.approx_bytes() >= budget.max_bytes
                    || budget.max_time.map(|t| started.elapsed() >= t).unwrap_or(false)
                {
                    report.complete = false;
                    break 'outer;
                }
                frontier.push_back(next);
            }
        }
    }

    report.async_states = store.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
    use ccr_core::value::Value;
    use ccr_runtime::asynch::AsyncConfig;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn equation_one_holds_for_token_optimized() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let rv = RendezvousSystem::new(&spec, 2);
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let r = check_simulation(&asys, &rv, &Budget::default());
        assert!(r.holds(), "{r:?}");
        assert!(r.stutters > 0);
        assert!(r.mapped_steps > 0);
    }

    #[test]
    fn equation_one_holds_for_token_unoptimized() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
        let rv = RendezvousSystem::new(&spec, 2);
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let r = check_simulation(&asys, &rv, &Budget::default());
        assert!(r.holds(), "{r:?}");
    }

    #[test]
    fn budget_limits_mark_incomplete() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let rv = RendezvousSystem::new(&spec, 2);
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let r = check_simulation(&asys, &rv, &Budget::states(5));
        assert!(!r.complete);
        assert!(!r.holds());
    }

    #[test]
    fn larger_buffer_also_satisfies_equation_one() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let rv = RendezvousSystem::new(&spec, 2);
        let asys = AsyncSystem::new(&refined, 2, AsyncConfig::with_home_buffer(4));
        let r = check_simulation(&asys, &rv, &Budget::default());
        assert!(r.holds(), "{r:?}");
    }
}
