//! Invariant combinators over rendezvous and asynchronous configurations.
//!
//! Protocol-specific safety properties (e.g. the migratory single-owner
//! invariant) are built from these helpers in `ccr-protocols`; the checker
//! itself only needs `FnMut(&State) -> Option<String>`.

use ccr_core::ids::StateId;
use ccr_runtime::asynch::{AsyncState, RemotePhase};
use ccr_runtime::rendezvous::RvState;
use std::collections::HashSet;

/// Invariant: at most `max` remotes simultaneously occupy a control state
/// in `states` (rendezvous level).
pub fn rv_at_most(
    states: HashSet<StateId>,
    max: usize,
    what: &'static str,
) -> impl FnMut(&RvState) -> Option<String> {
    move |s: &RvState| {
        let count = s.remotes.iter().filter(|r| states.contains(&r.state)).count();
        if count > max {
            Some(format!("{count} remotes {what} (allowed {max})"))
        } else {
            None
        }
    }
}

/// Invariant: at most `max` remotes occupy a control state in `states`
/// (asynchronous level; a remote in a transient state is counted at its
/// *origin* communication state only if `count_transients` is set).
pub fn async_at_most(
    states: HashSet<StateId>,
    max: usize,
    count_transients: bool,
    what: &'static str,
) -> impl FnMut(&AsyncState) -> Option<String> {
    move |s: &AsyncState| {
        let count = s
            .remotes
            .iter()
            .filter(|r| match r.phase {
                RemotePhase::At(st) => states.contains(&st),
                RemotePhase::Awaiting { state, .. } => count_transients && states.contains(&state),
            })
            .count();
        if count > max {
            Some(format!("{count} remotes {what} (allowed {max})"))
        } else {
            None
        }
    }
}

/// Conjunction of two invariants: reports the first violation.
pub fn both<S>(
    mut a: impl FnMut(&S) -> Option<String>,
    mut b: impl FnMut(&S) -> Option<String>,
) -> impl FnMut(&S) -> Option<String> {
    move |s: &S| a(s).or_else(|| b(s))
}

/// The always-true invariant.
pub fn trivially<S>() -> impl FnMut(&S) -> Option<String> {
    |_: &S| None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::value::Env;
    use ccr_runtime::rendezvous::Local;

    fn rv(states: &[u32]) -> RvState {
        RvState {
            home: Local { state: StateId(0), env: Env::new(vec![]) },
            remotes: states
                .iter()
                .map(|&s| Local { state: StateId(s), env: Env::new(vec![]) })
                .collect(),
        }
    }

    #[test]
    fn rv_at_most_counts() {
        let mut inv = rv_at_most([StateId(2)].into_iter().collect(), 1, "own the line");
        assert!(inv(&rv(&[0, 2])).is_none());
        assert!(inv(&rv(&[2, 2])).is_some());
    }

    #[test]
    fn both_reports_first() {
        let a = rv_at_most([StateId(1)].into_iter().collect(), 0, "in S1");
        let b = rv_at_most([StateId(2)].into_iter().collect(), 0, "in S2");
        let mut c = both(a, b);
        assert!(c(&rv(&[0])).is_none());
        let msg = c(&rv(&[1, 2])).unwrap();
        assert!(msg.contains("S1"));
    }

    #[test]
    fn trivially_accepts_everything() {
        let mut t = trivially::<RvState>();
        assert!(t(&rv(&[9, 9, 9])).is_none());
    }
}
