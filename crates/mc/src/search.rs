//! Breadth-first reachability analysis with budgets.
//!
//! This regenerates the measurements of the paper's Table 3: number of
//! states visited and wall time, with a budget standing in for SPIN's 64 MB
//! memory limit — exceeding it yields [`Outcome::Unfinished`], matching the
//! paper's "Unfinished" table entries.

use crate::persist::{
    CrashSwitch, LockGuard, LogTier, Manifest, ManifestWriter, PResult, PersistError, PhaseDir,
};
use crate::report::{ExploreReport, Outcome};
use crate::store::StateStore;
use ccr_metrics::profile::{Profiler, SpanKind};
use ccr_metrics::status::{RunStatus, StatusWriter};
use ccr_metrics::timeseries::{Recorder, SampleInput};
use ccr_metrics::Registry;
use ccr_runtime::{Label, TransitionSystem};
use ccr_trace::{NullSink, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::path::Path;
use std::time::{Duration, Instant};

/// Inclusive `le` bounds for the store probe-displacement histogram.
pub(crate) const PROBE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32];
/// Inclusive `le` bounds for the encoded-state-length histogram.
pub(crate) const STATE_BYTES_BOUNDS: &[u64] = &[8, 16, 24, 32, 48, 64, 96, 128];
/// Inclusive `le` bounds for the per-level frontier-size histogram.
pub(crate) const LEVEL_FRONTIER_BOUNDS: &[u64] = &[16, 64, 256, 1024, 4096, 16384, 65536, 262144];

/// Folds one finished search into `reg` (a no-op on a null registry):
/// the deterministic run totals plus the post-hoc store-shape
/// histograms. Serial explorers call this once per run; the parallel
/// engine records the same names from its own totals so serial and
/// parallel snapshots of the same state space agree on every
/// deterministic counter.
pub(crate) fn record_search_run(
    reg: &Registry,
    states: usize,
    transitions: usize,
    peak_frontier: usize,
    store: &StateStore,
) {
    if !reg.enabled() {
        return;
    }
    record_run_totals(reg, states, transitions, peak_frontier, store.approx_bytes());
    record_store_shape(reg, store);
}

/// The deterministic run totals alone — shared between the serial
/// explorers (which have one store) and the parallel engine (which sums
/// its shard stripes before calling).
pub(crate) fn record_run_totals(
    reg: &Registry,
    states: usize,
    transitions: usize,
    peak_frontier: usize,
    store_bytes: usize,
) {
    if !reg.enabled() {
        return;
    }
    reg.counter("mc_runs_total", "Search runs folded into this registry").inc();
    reg.counter("mc_states_total", "Distinct states stored, summed over runs").add(states as u64);
    reg.counter("mc_transitions_total", "Transitions generated, summed over runs")
        .add(transitions as u64);
    reg.gauge("mc_peak_frontier", "Largest BFS frontier observed in any run")
        .record_max(peak_frontier as u64);
    reg.gauge("mc_store_bytes", "Largest state-store footprint observed in any run")
        .record_max(store_bytes as u64);
}

/// Post-hoc store-shape histograms: probe displacements (insertion-order
/// dependent, hence tagged nondeterministic) and encoded state lengths
/// (a multiset property of the reachable set, hence deterministic).
pub(crate) fn record_store_shape(reg: &Registry, store: &StateStore) {
    if !reg.enabled() {
        return;
    }
    let probes = reg.histogram_nondet(
        "mc_store_probe_len",
        "Open-addressing probe displacement per occupied slot",
        PROBE_BOUNDS,
    );
    for displacement in store.probe_displacements() {
        probes.observe(displacement);
    }
    let lengths = reg.histogram(
        "mc_state_bytes",
        "Encoded state length in bytes (no samples in compact-hash mode)",
        STATE_BYTES_BOUNDS,
    );
    for len in store.entry_lengths() {
        lengths.observe(len);
    }
}

/// Resource limits for a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum approximate bytes of visited-set memory (the paper's runs
    /// were limited to 64 MB).
    pub max_bytes: usize,
    /// Optional wall-clock limit.
    pub max_time: Option<Duration>,
}

impl Default for Budget {
    fn default() -> Self {
        Self { max_states: usize::MAX, max_bytes: usize::MAX, max_time: None }
    }
}

impl Budget {
    /// Budget bounded by state count only.
    pub fn states(n: usize) -> Self {
        Self { max_states: n, ..Self::default() }
    }

    /// Budget bounded by approximate memory only (e.g. `64 << 20`).
    pub fn bytes(b: usize) -> Self {
        Self { max_bytes: b, ..Self::default() }
    }

    fn exceeded(&self, store: &StateStore, started: Instant) -> bool {
        store.len() >= self.max_states
            || store.approx_bytes() >= self.max_bytes
            || self.max_time.map(|t| started.elapsed() >= t).unwrap_or(false)
    }
}

/// Wall-clock heartbeat cadence when none is configured.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(1);

/// Expansions between clock probes. Heartbeats are wall-clock-interval
/// based, but reading the clock on every expansion of a fast in-memory
/// search would be measurable, so the observer only probes every
/// `PROBE_EVERY` ticks (a zero interval drops the countdown to 1 so
/// tests can demand a beat per tick).
const PROBE_EVERY: u32 = 16;

/// Live status reporting for a run: maintains a [`RunStatus`] document
/// and rewrites a status file (atomic rename, see
/// [`ccr_metrics::status`]) so `ccr watch` can follow the run from
/// another process.
pub struct StatusReporter {
    writer: StatusWriter,
    status: RunStatus,
    target_states: Option<u64>,
}

impl StatusReporter {
    /// A reporter writing snapshots for `spec` through `writer`.
    pub fn new(writer: StatusWriter, spec: &str) -> Self {
        StatusReporter {
            writer,
            status: RunStatus {
                spec: spec.to_string(),
                phase: "start".to_string(),
                pid: Some(std::process::id() as u64),
                ..RunStatus::default()
            },
            target_states: None,
        }
    }

    /// Names the phase stamped on subsequent snapshots.
    pub fn set_phase(&mut self, phase: &str) {
        self.status.phase = phase.to_string();
    }

    /// Sets the state-count target ETAs are computed against (a finite
    /// budget cap; `None` disables ETA).
    pub fn set_target(&mut self, target: Option<u64>) {
        self.target_states = target;
    }

    /// Writes one live snapshot. Write errors are deliberately dropped:
    /// status is advisory and must never abort a verification.
    #[allow(clippy::too_many_arguments)]
    pub fn update(
        &mut self,
        states: u64,
        transitions: u64,
        frontier: u64,
        depth: Option<u64>,
        states_per_sec: f64,
        store_bytes: u64,
        elapsed: Duration,
        profiler: &Profiler,
    ) {
        self.status.states = states;
        self.status.transitions = transitions;
        self.status.frontier = frontier;
        self.status.depth = depth;
        self.status.states_per_sec = states_per_sec;
        self.status.store_bytes = store_bytes;
        self.status.elapsed_ms = elapsed.as_millis() as u64;
        self.status.eta_ms = match (self.target_states, states_per_sec > 0.0) {
            (Some(target), true) if target > states => {
                Some(((target - states) as f64 / states_per_sec * 1e3) as u64)
            }
            _ => None,
        };
        if profiler.enabled() {
            self.status.set_spans(&profiler.aggregate());
        }
        let _ = self.writer.write(&mut self.status);
    }

    /// Writes the terminal snapshot: exact final counts, `finished`,
    /// and the outcome name.
    pub fn finalize(
        &mut self,
        outcome: &Outcome,
        states: u64,
        transitions: u64,
        elapsed: Duration,
        profiler: &Profiler,
    ) {
        self.status.states = states;
        self.status.transitions = transitions;
        self.status.frontier = 0;
        self.status.eta_ms = Some(0);
        // Whole-run average, so a run too quick for any live snapshot
        // still reports a rate.
        self.status.states_per_sec =
            if elapsed.as_secs_f64() > 0.0 { states as f64 / elapsed.as_secs_f64() } else { 0.0 };
        self.status.elapsed_ms = elapsed.as_millis() as u64;
        self.status.finished = true;
        self.status.outcome = Some(outcome.name().to_string());
        if profiler.enabled() {
            self.status.set_spans(&profiler.aggregate());
        }
        let _ = self.writer.write(&mut self.status);
    }
}

/// Live progress reporting for a search: periodic [`TraceEvent::Heartbeat`]
/// events (states visited, frontier size, store bytes, exploration rate)
/// emitted to a [`TraceSink`] on a wall-clock interval, plus an optional
/// live status file and span profiler shared with the engines.
///
/// With a disabled sink and no status reporter the per-expansion cost is
/// one comparison.
pub struct SearchObserver<'s> {
    sink: &'s mut dyn TraceSink,
    beats: bool,
    interval: Duration,
    started: Instant,
    last_states: usize,
    last_time: Instant,
    probe_countdown: u32,
    metrics: Registry,
    profiler: Profiler,
    status: Option<StatusReporter>,
    timeline: Recorder,
    /// Latest persist-path cumulatives, pushed by whichever engine owns
    /// the spill log so timeline samples can carry them.
    spill_bytes: u64,
    compacted_bytes: u64,
    checkpoint_seq: u64,
    /// Latest parallel-engine diagnostics (termination epoch, inbox
    /// depths), pushed by the pump loop before each tick.
    engine_epoch: Option<u64>,
    engine_queues: Vec<u64>,
}

impl<'s> SearchObserver<'s> {
    /// Heartbeats to `sink` at [`DEFAULT_HEARTBEAT_INTERVAL`] (silenced
    /// by a disabled sink), with metrics off (the null registry).
    pub fn new(sink: &'s mut dyn TraceSink) -> Self {
        Self::with_metrics(sink, Registry::disabled())
    }

    /// Like [`SearchObserver::new`], but also carrying a metrics
    /// registry: searches driven through this observer fold their run
    /// totals and store-shape histograms into it.
    pub fn with_metrics(sink: &'s mut dyn TraceSink, metrics: Registry) -> Self {
        let now = Instant::now();
        let beats = sink.enabled();
        Self {
            sink,
            beats,
            interval: DEFAULT_HEARTBEAT_INTERVAL,
            started: now,
            last_states: 0,
            last_time: now,
            probe_countdown: 1,
            metrics,
            profiler: Profiler::disabled(),
            status: None,
            timeline: Recorder::disabled(),
            spill_bytes: 0,
            compacted_bytes: 0,
            checkpoint_seq: 0,
            engine_epoch: None,
            engine_queues: Vec::new(),
        }
    }

    /// Sets the wall-clock heartbeat interval. `Duration::ZERO` beats on
    /// every tick (test use).
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Attaches a span profiler: engines driven through this observer
    /// time themselves into it, and status snapshots carry its per-kind
    /// split.
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Attaches a live status reporter; snapshots are written on the
    /// heartbeat interval even when the trace sink is disabled.
    pub fn with_status(mut self, status: StatusReporter) -> Self {
        self.status = Some(status);
        self
    }

    /// The metrics registry searches record into (null unless built with
    /// [`SearchObserver::with_metrics`]).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The wall-clock heartbeat interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// The span profiler engines time themselves into (null unless
    /// attached with [`SearchObserver::with_profiler`]).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Attaches a flight recorder: one delta-encoded telemetry sample is
    /// appended per heartbeat interval. A disabled recorder (the
    /// default) adds one branch to the early-out check and nothing else.
    pub fn with_timeline(mut self, timeline: Recorder) -> Self {
        self.timeline = timeline;
        self
    }

    /// The attached flight recorder (disabled unless set with
    /// [`SearchObserver::with_timeline`]).
    pub fn timeline(&self) -> &Recorder {
        &self.timeline
    }

    /// Updates the persist-path cumulatives carried on timeline samples.
    /// Engines with a spill log call this when the numbers move
    /// (checkpoints, evictions, compactions).
    pub fn set_persist_gauges(&mut self, spill_bytes: u64, compacted_bytes: u64, checkpoints: u64) {
        self.spill_bytes = spill_bytes;
        self.compacted_bytes = compacted_bytes;
        self.checkpoint_seq = checkpoints;
    }

    /// Updates the parallel-engine diagnostics (termination-detection
    /// epoch, per-worker inbox depths) carried on timeline samples and
    /// stall records. The pump loop calls this before each tick.
    pub fn set_engine_diag(&mut self, epoch: Option<u64>, queues: &[u64]) {
        self.engine_epoch = epoch;
        self.engine_queues.clear();
        self.engine_queues.extend_from_slice(queues);
    }

    /// The attached status reporter, if any.
    pub fn status_mut(&mut self) -> Option<&mut StatusReporter> {
        self.status.as_mut()
    }

    /// Called by searches once per expanded state.
    #[inline]
    pub fn tick(&mut self, states: usize, frontier: usize, store_bytes: usize) {
        self.tick_full(states, frontier, store_bytes, None, None);
    }

    /// [`SearchObserver::tick`] with the extra fields only some engines
    /// track: cumulative transitions and the current BFS depth.
    pub fn tick_full(
        &mut self,
        states: usize,
        frontier: usize,
        store_bytes: usize,
        transitions: Option<u64>,
        depth: Option<u64>,
    ) {
        if !self.beats && self.status.is_none() && !self.timeline.enabled() {
            return;
        }
        self.probe_countdown -= 1;
        if self.probe_countdown != 0 {
            return;
        }
        let now = Instant::now();
        if now.duration_since(self.last_time) < self.interval {
            self.probe_countdown = PROBE_EVERY;
            return;
        }
        self.probe_countdown = if self.interval.is_zero() { 1 } else { PROBE_EVERY };
        let dt = now.duration_since(self.last_time).as_secs_f64();
        let rate =
            if dt > 0.0 { (states.saturating_sub(self.last_states)) as f64 / dt } else { 0.0 };
        let elapsed = now.duration_since(self.started);
        if self.beats {
            self.sink.emit(&TraceEvent::Heartbeat {
                states: states as u64,
                frontier: frontier as u64,
                store_bytes: store_bytes as u64,
                states_per_sec: rate as u64,
                elapsed_ms: elapsed.as_millis() as u64,
            });
        }
        if let Some(status) = &mut self.status {
            status.update(
                states as u64,
                transitions.unwrap_or(0),
                frontier as u64,
                depth,
                rate,
                store_bytes as u64,
                elapsed,
                &self.profiler,
            );
        }
        if self.timeline.enabled() {
            self.timeline.sample(
                &SampleInput {
                    states: states as u64,
                    transitions: transitions.unwrap_or(0),
                    frontier: frontier as u64,
                    store_bytes: store_bytes as u64,
                    depth,
                    spill_bytes: self.spill_bytes,
                    compacted_bytes: self.compacted_bytes,
                    checkpoint_seq: self.checkpoint_seq,
                    epoch: self.engine_epoch,
                    queues: &self.engine_queues,
                },
                &self.profiler,
            );
        }
        self.last_states = states;
        self.last_time = now;
    }

    /// Like [`SearchObserver::tick_full`], but for callers that are
    /// already wall-clock paced (the parallel pump loop, which sleeps a
    /// quantum between calls): skips the call-count probe that amortizes
    /// `Instant::now()` across hot per-expansion call sites and goes
    /// straight to the interval check. Without this, a pump loop pacing
    /// at the sampling interval would only observe every
    /// `PROBE_EVERY`-th tick and the recorder would sample at 16× the
    /// requested interval.
    pub fn tick_paced(
        &mut self,
        states: usize,
        frontier: usize,
        store_bytes: usize,
        transitions: Option<u64>,
        depth: Option<u64>,
    ) {
        self.probe_countdown = 1;
        self.tick_full(states, frontier, store_bytes, transitions, depth);
    }

    /// Emits the terminal [`TraceEvent::Outcome`] and flushes the sink.
    pub fn finish(&mut self, outcome: &Outcome, steps: Option<u64>) {
        if self.sink.enabled() {
            self.sink.emit(&TraceEvent::Outcome {
                outcome: outcome.name().to_string(),
                detail: outcome.detail(),
                steps,
            });
            self.sink.flush();
        }
    }

    /// Writes the terminal status snapshot with exact final counts (a
    /// no-op without an attached reporter).
    pub fn record_final(&mut self, outcome: &Outcome, states: u64, transitions: u64) {
        let elapsed = self.started.elapsed();
        if let Some(status) = &mut self.status {
            status.finalize(outcome, states, transitions, elapsed, &self.profiler);
        }
    }

    /// Direct access to the underlying sink (for counterexample export).
    pub fn sink(&mut self) -> &mut dyn TraceSink {
        self.sink
    }
}

/// Persistence configuration for a search phase, built by the CLI.
#[derive(Debug, Clone)]
pub struct PersistOpts {
    /// Wall-clock checkpoint cadence; `Duration::ZERO` checkpoints at
    /// every opportunity (every expansion serially, every level in the
    /// parallel engine).
    pub interval: Duration,
    /// Store-byte threshold that evicts the arena to disk; 0 keeps all
    /// state bytes in RAM (log-only mode: crash-safe, not RAM-capped).
    pub evict_at: usize,
    /// Attempt to resume from an existing manifest instead of starting
    /// fresh.
    pub resume: bool,
    /// Simulated kill -9 hook for the crash-recovery harness.
    pub crash: CrashSwitch,
}

impl Default for PersistOpts {
    fn default() -> Self {
        PersistOpts {
            interval: Duration::from_secs(1),
            evict_at: 0,
            resume: false,
            crash: CrashSwitch::default(),
        }
    }
}

/// Result of opening a serial persistence directory: either a context
/// to run with, or the terminal manifest of a phase that already
/// finished (nothing to re-run — synthesize the report).
pub enum SerialPersistOpen {
    /// Run (fresh or resumed) with this context.
    Run(Box<SerialPersist>),
    /// A prior run already finished with this manifest.
    Finished(Manifest),
}

/// Serial-engine persistence: the phase directory, its writer lock, the
/// recovered (or fresh) store, and the checkpoint cadence. Threaded
/// through [`drive`] by the `*_persist` wrappers.
pub struct SerialPersist {
    dir: PhaseDir,
    _lock: LockGuard,
    writer: ManifestWriter,
    interval: Duration,
    crash: CrashSwitch,
    elapsed_base: Duration,
    resumed: bool,
    head0: u32,
    transitions0: u64,
    peak0: u64,
    store: Option<StateStore>,
    last_ckpt: Instant,
    countdown: u32,
}

impl SerialPersist {
    /// Opens (or creates) the phase directory at `root`, acquiring the
    /// writer lock. With `opts.resume` and an existing manifest the log
    /// is recovered and the store rebuilt; a finished manifest returns
    /// [`SerialPersistOpen::Finished`] instead. Without `opts.resume`
    /// any stale files are wiped and a fresh log is created.
    pub fn open(root: &Path, opts: &PersistOpts) -> PResult<SerialPersistOpen> {
        let dir = PhaseDir::create(root, 1)?;
        let lock = LockGuard::acquire(dir.lock())?;
        let prior = if opts.resume { Manifest::read(&dir.manifest())? } else { None };
        let (store, resumed, head0, transitions0, peak0, elapsed_base, seq0) = match prior {
            Some(m) if m.finished => return Ok(SerialPersistOpen::Finished(m)),
            Some(m) => {
                if m.kind != "serial" {
                    return Err(PersistError::new(
                        dir.manifest(),
                        format!("manifest kind `{}`, expected `serial`", m.kind),
                    ));
                }
                let &(bytes, records) = m.committed.first().ok_or_else(|| {
                    PersistError::new(dir.manifest(), "manifest has no committed entry")
                })?;
                let mut store = StateStore::new();
                let keep_payloads = opts.evict_at == 0;
                let tier = LogTier::recover(
                    dir.log(0),
                    &dir.idx(0),
                    Some(bytes),
                    opts.evict_at,
                    !keep_payloads,
                    |rec, payload| {
                        store.rebuild_insert(rec.hash, payload.filter(|_| keep_payloads), rec.len);
                    },
                )?;
                if tier.records() as u64 != records {
                    return Err(PersistError::new(
                        dir.log(0),
                        format!(
                            "log holds {} committed records, manifest says {records}",
                            tier.records()
                        ),
                    ));
                }
                store.attach_tier(Box::new(tier));
                (
                    store,
                    true,
                    m.head as u32,
                    m.transitions,
                    m.peak_frontier,
                    Duration::from_millis(m.elapsed_ms),
                    m.seq,
                )
            }
            None => {
                dir.wipe()?;
                let mut store = StateStore::new();
                store.attach_tier(Box::new(LogTier::create(dir.log(0), opts.evict_at)?));
                (store, false, 0, 0, 0, Duration::ZERO, 0)
            }
        };
        let writer = ManifestWriter::create(dir.manifest(), seq0);
        Ok(SerialPersistOpen::Run(Box::new(SerialPersist {
            dir,
            _lock: lock,
            writer,
            interval: opts.interval,
            crash: opts.crash.clone(),
            elapsed_base,
            resumed,
            head0,
            transitions0,
            peak0,
            store: Some(store),
            last_ckpt: Instant::now(),
            countdown: 1,
        })))
    }

    /// Whether a checkpoint is due (wall-clock cadence, probed every few
    /// expansions like the observer's heartbeat).
    fn due(&mut self) -> bool {
        if self.interval.is_zero() {
            return true;
        }
        self.countdown -= 1;
        if self.countdown != 0 {
            return false;
        }
        self.countdown = PROBE_EVERY;
        self.last_ckpt.elapsed() >= self.interval
    }

    /// Syncs the log, rewrites the index and atomically replaces the
    /// manifest with frontier cursor `head` and the counters so far.
    fn checkpoint(
        &mut self,
        store: &mut StateStore,
        head: u32,
        transitions: u64,
        peak_frontier: u64,
        elapsed: Duration,
        finished: Option<&Outcome>,
    ) -> PResult<()> {
        let idx_path = self.dir.idx(0);
        let states = store.len() as u64;
        let tier = store.tier_mut().expect("persist run without a tier");
        let (bytes, records) = tier.sync();
        tier.write_idx(&idx_path);
        if let Some(e) = tier.take_err() {
            return Err(e);
        }
        tier.stats_mut().checkpoints += 1;
        let evict = tier.evict_at > 0;
        let mut m = Manifest {
            kind: "serial".to_string(),
            finished: finished.is_some(),
            outcome_name: finished.map(|o| o.name().to_string()),
            outcome_detail: finished.and_then(Outcome::detail),
            states,
            transitions,
            peak_frontier,
            elapsed_ms: (self.elapsed_base + elapsed).as_millis() as u64,
            head: head as u64,
            level: 0,
            threads: 1,
            shards: 1,
            committed: vec![(bytes, records)],
            evict,
            ..Manifest::default()
        };
        self.writer.write(&mut m)?;
        self.last_ckpt = Instant::now();
        Ok(())
    }

    /// Concludes a finished run: writes the terminal manifest and folds
    /// the tier counters into `reg`. Write errors here are dropped when
    /// the run already failed with a persistence outcome (the diagnostic
    /// the user needs is in the outcome).
    pub(crate) fn conclude(&mut self, run: &mut DriveRun, reg: &Registry) {
        let head = run.store.len() as u32;
        let outcome = run.outcome.clone();
        let res = self.checkpoint(
            &mut run.store,
            head,
            run.transitions as u64,
            run.peak_frontier as u64,
            run.elapsed,
            Some(&outcome),
        );
        if let Err(e) = res {
            if !matches!(run.outcome, Outcome::PersistFailure(_)) {
                run.outcome = Outcome::PersistFailure(e.to_string());
            }
        }
        if let Some(tier) = run.store.tier() {
            tier.stats().publish(reg);
        }
    }

    /// Search time accumulated by prior runs of this phase.
    pub fn elapsed_base(&self) -> Duration {
        self.elapsed_base
    }
}

/// Reconstructs an [`ExploreReport`] from the terminal manifest of an
/// already-finished persisted phase, so `--resume` of a completed run
/// reports the identical counts without re-searching. A restored
/// `RuntimeFailure` cannot rebuild its structured error and surfaces as
/// [`Outcome::PersistFailure`] describing the restoration.
pub fn report_from_manifest(m: &Manifest) -> ExploreReport {
    let detail = m.outcome_detail.clone().unwrap_or_default();
    let outcome = match m.outcome_name.as_deref() {
        Some("Complete") => Outcome::Complete,
        Some("Unfinished") => Outcome::Unfinished,
        Some("Deadlock") => Outcome::Deadlock,
        Some("Livelock") => Outcome::Livelock,
        Some("InvariantViolated") => Outcome::InvariantViolated(detail),
        Some("PersistFailure") => Outcome::PersistFailure(detail),
        Some(other) => {
            Outcome::PersistFailure(format!("restored terminal outcome {other}: {detail}"))
        }
        None => Outcome::PersistFailure("finished manifest without an outcome".to_string()),
    };
    ExploreReport {
        states: m.states as usize,
        transitions: m.transitions as usize,
        elapsed: Duration::from_millis(m.elapsed_ms),
        store_bytes: 0,
        peak_frontier: m.peak_frontier as usize,
        outcome,
        probabilistic: false,
    }
}

/// The raw result of one [`drive`] run: everything the public wrappers
/// need to shape an [`ExploreReport`] or a
/// [`crate::trace::TracedReport`], including the final store (for the
/// store-shape histograms).
pub(crate) struct DriveRun {
    /// The visited set as it stood when the search ended.
    pub(crate) store: StateStore,
    /// Transitions generated.
    pub(crate) transitions: usize,
    /// Largest frontier (BFS queue or DFS stack) observed.
    pub(crate) peak_frontier: usize,
    /// Wall time of the search.
    pub(crate) elapsed: Duration,
    /// How the search ended.
    pub(crate) outcome: Outcome,
    /// With `track_trails`: labels along the path to the offending state
    /// for violating outcomes, `None` otherwise.
    pub(crate) trail: Option<Vec<Label>>,
}

impl DriveRun {
    /// The serial-shaped public view of this run.
    pub(crate) fn explore_report(&self) -> ExploreReport {
        ExploreReport {
            states: self.store.len(),
            transitions: self.transitions,
            elapsed: self.elapsed,
            store_bytes: self.store.approx_bytes(),
            peak_frontier: self.peak_frontier,
            outcome: self.outcome.clone(),
            probabilistic: false,
        }
    }
}

/// The one serial search driver behind [`explore`], [`explore_dfs`] and
/// [`crate::trace::explore_traced`]: reachability over `sys` with a
/// budget, an invariant, optional deadlock detection, BFS or DFS order
/// (`depth_first`), and optional parent tracking (`track_trails`) for
/// shortest-counterexample reconstruction.
///
/// The wrappers differ only in these two flags and in how they report:
/// keeping the expansion loop in one place is what lets a state-space
/// reduction (e.g. [`crate::symmetry`]) slot in under every serial entry
/// point at once via [`ccr_runtime::TransitionSystem::encode`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    mut invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
    depth_first: bool,
    track_trails: bool,
    obs: &mut SearchObserver<'_>,
    mut persist: Option<&mut SerialPersist>,
) -> DriveRun {
    let started = Instant::now();
    let mut store = persist.as_deref_mut().and_then(|p| p.store.take()).unwrap_or_default();
    let mut parents: Vec<Option<(u32, Label)>> = Vec::new();
    let mut frontier: VecDeque<(T::State, u32)> = VecDeque::new();
    let mut succs: Vec<(Label, T::State)> = Vec::new();
    let mut enc = Vec::new();
    let mut transitions = 0usize;
    let mut peak_frontier = 0usize;
    let mut timer = obs.profiler().worker(0);
    let fast_cap = sys.max_encoded_len();
    let resumed = persist.as_deref().is_some_and(|p| p.resumed);
    // A resumed run has no parent pointers for recovered states, so
    // trail reconstruction is disabled: the counts and outcome are
    // byte-identical, the counterexample path is only available from an
    // uninterrupted (or fresh) run.
    let track_trails = track_trails && !resumed;

    macro_rules! done {
        ($outcome:expr, $trail:expr) => {
            return DriveRun {
                transitions,
                peak_frontier,
                elapsed: started.elapsed(),
                outcome: $outcome,
                trail: $trail,
                store,
            }
        };
    }

    if persist.is_some() && depth_first {
        done!(
            Outcome::PersistFailure("depth-first search does not support persistence".into()),
            None
        );
    }

    if resumed {
        let p = persist.as_deref().expect("resumed without persist");
        transitions = p.transitions0 as usize;
        peak_frontier = p.peak0 as usize;
        for i in p.head0..store.len() as u32 {
            let Some(bytes) = store.read_entry(i) else {
                done!(
                    Outcome::PersistFailure(format!("cannot read recovered state {i} back")),
                    None
                );
            };
            let Some(state) = sys.decode(&bytes) else {
                done!(
                    Outcome::PersistFailure(format!(
                        "recovered state {i} does not decode (system without decode support?)"
                    )),
                    None
                );
            };
            frontier.push_back((state, i));
        }
    } else {
        let init = sys.initial();
        if let Some(cap) = sys.max_encoded_len() {
            let slot = store.begin_insert(cap);
            let written = sys.encode_into(&init, store.slot_buf(&slot));
            store.commit_insert(slot, written);
        } else {
            sys.encode(&init, &mut enc);
            store.insert(&enc);
        }
        if track_trails {
            parents.push(None);
        }
        if let Some(d) = invariant(&init) {
            done!(Outcome::InvariantViolated(d), track_trails.then(Vec::new));
        }
        frontier.push_back((init, 0));
    }

    while let Some((state, idx)) =
        if depth_first { frontier.pop_back() } else { frontier.pop_front() }
    {
        peak_frontier = peak_frontier.max(frontier.len() + 1);
        if let Some(p) = persist.as_deref_mut() {
            if store.tier().is_some_and(LogTier::has_err) {
                let e = store.tier_mut().and_then(LogTier::take_err).expect("sticky error");
                done!(Outcome::PersistFailure(e.to_string()), None);
            }
            // Committing `head = idx` *before* expanding puts the cut
            // between expansions: a resume re-expands this state against
            // the already-recovered visited set, reproducing the exact
            // counters an uninterrupted run reports.
            if p.due() {
                if let Err(e) = p.checkpoint(
                    &mut store,
                    idx,
                    transitions as u64,
                    peak_frontier as u64,
                    started.elapsed(),
                    None,
                ) {
                    done!(Outcome::PersistFailure(e.to_string()), None);
                }
                timer.lap(SpanKind::Checkpoint, 1);
                if let Some(tier) = store.tier() {
                    let stats = tier.stats();
                    obs.set_persist_gauges(
                        stats.bytes_appended,
                        stats.compacted_bytes,
                        stats.checkpoints,
                    );
                }
            }
        }
        obs.tick_full(
            store.len(),
            frontier.len() + 1,
            store.approx_bytes(),
            Some(transitions as u64),
            None,
        );
        if let Err(e) = sys.successors(&state, &mut succs) {
            let trail = track_trails.then(|| crate::trace::trail_to(&parents, idx));
            done!(Outcome::RuntimeFailure(e), trail);
        }
        timer.lap(SpanKind::Compute, 1);
        if check_deadlock && succs.is_empty() {
            let trail = track_trails.then(|| crate::trace::trail_to(&parents, idx));
            done!(Outcome::Deadlock, trail);
        }
        for (label, next) in succs.drain(..) {
            transitions += 1;
            // Zero-copy fast path: encode the successor exactly once,
            // directly into the store's bump arena; a duplicate rolls the
            // bump pointer back. Systems without a size bound keep the
            // reference encode-to-Vec path.
            let (nidx, is_new) = if let Some(cap) = fast_cap {
                let slot = store.begin_insert(cap);
                let written = sys.encode_into(&next, store.slot_buf(&slot));
                timer.lap(SpanKind::Encode, 1);
                let r = store.commit_insert(slot, written);
                timer.lap(SpanKind::Insert, 1);
                r
            } else {
                sys.encode(&next, &mut enc);
                timer.lap(SpanKind::Encode, 1);
                let r = store.insert(&enc);
                timer.lap(SpanKind::Insert, 1);
                r
            };
            if !is_new {
                continue;
            }
            if let Some(p) = persist.as_deref() {
                p.crash.tick();
            }
            if track_trails {
                parents.push(Some((idx, label)));
            }
            if let Some(d) = invariant(&next) {
                let trail = track_trails.then(|| crate::trace::trail_to(&parents, nidx));
                done!(Outcome::InvariantViolated(d), trail);
            }
            if budget.exceeded(&store, started) {
                done!(Outcome::Unfinished, None);
            }
            frontier.push_back((next, nidx));
        }
    }
    DriveRun {
        transitions,
        peak_frontier,
        elapsed: started.elapsed(),
        outcome: Outcome::Complete,
        trail: None,
        store,
    }
}

/// Explores the reachable state space of `sys` breadth-first.
///
/// `invariant` is evaluated on every newly discovered state; returning
/// `Some(description)` aborts with [`Outcome::InvariantViolated`]. When
/// `check_deadlock` is set, a state with no successors aborts with
/// [`Outcome::Deadlock`] (protocols in the paper's model run forever).
pub fn explore<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
) -> ExploreReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    explore_observed(sys, budget, invariant, check_deadlock, &mut obs)
}

/// [`explore`] with live progress reporting: `obs` receives a heartbeat
/// every few thousand states and the terminal outcome event.
pub fn explore_observed<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
    obs: &mut SearchObserver<'_>,
) -> ExploreReport {
    let run = drive(sys, budget, invariant, check_deadlock, false, false, obs, None);
    obs.finish(&run.outcome, None);
    record_search_run(
        obs.metrics(),
        run.store.len(),
        run.transitions,
        run.peak_frontier,
        &run.store,
    );
    run.explore_report()
}

/// [`explore_observed`] running against a persistence context: new
/// states are logged (and spilled past the eviction threshold), the
/// frontier is checkpointed on the context's cadence, and a resumed
/// context continues from its last checkpoint — finishing with the same
/// states/transitions/outcome as an uninterrupted run.
pub fn explore_observed_persist<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
    obs: &mut SearchObserver<'_>,
    persist: &mut SerialPersist,
) -> ExploreReport {
    let mut run = drive(sys, budget, invariant, check_deadlock, false, false, obs, Some(persist));
    persist.conclude(&mut run, obs.metrics());
    obs.finish(&run.outcome, None);
    record_search_run(
        obs.metrics(),
        run.store.len(),
        run.transitions,
        run.peak_frontier,
        &run.store,
    );
    let mut report = run.explore_report();
    report.elapsed += persist.elapsed_base();
    report
}

/// Convenience: explore with no invariant and no deadlock check.
pub fn explore_plain<T: TransitionSystem>(sys: &T, budget: &Budget) -> ExploreReport {
    explore(sys, budget, |_| None, false)
}

/// Depth-first exploration. Visits the same reachable set as [`explore`]
/// (useful to cross-check the search itself, and as the lower-memory-
/// frontier mode SPIN defaults to); counterexamples found by the BFS
/// variant are shorter, so prefer [`crate::trace::explore_traced`] for
/// debugging.
pub fn explore_dfs<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
) -> ExploreReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    drive(sys, budget, invariant, check_deadlock, true, false, &mut obs, None).explore_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::value::Value;
    use ccr_runtime::rendezvous::RendezvousSystem;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn rendezvous_token_space_is_small_and_complete() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = explore_plain(&sys, &Budget::default());
        assert!(r.outcome.is_complete());
        // Hand count: home F/G1/E x owner x remote states, reachable subset.
        // The exact number matters less than stability; pin it as a golden
        // value to catch semantic regressions.
        // (F,o=0) (G1,o=0) (G1,o=1) (E,o=0) (E,o=1) (F,o=1)
        assert_eq!(r.states, 6, "reachable rendezvous states for 2 remotes");
        assert!(r.transitions >= r.states - 1);
    }

    #[test]
    fn budget_truncates_search() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let full = explore_plain(&sys, &Budget::default());
        assert!(full.outcome.is_complete());
        let r = explore_plain(&sys, &Budget::states(3));
        assert_eq!(r.outcome, Outcome::Unfinished);
        assert!(r.states < full.states);

        let tiny = explore_plain(&sys, &Budget::bytes(64));
        assert_eq!(tiny.outcome, Outcome::Unfinished);
    }

    #[test]
    fn invariant_violation_is_reported() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let v = spec.remote.state_by_name("V").unwrap();
        let r = explore(
            &sys,
            &Budget::default(),
            |s| {
                // Claim (falsely) that nobody ever reaches V.
                if s.remotes.iter().any(|r| r.state == v) {
                    Some("a remote reached V".into())
                } else {
                    None
                }
            },
            false,
        );
        assert!(matches!(r.outcome, Outcome::InvariantViolated(_)));
    }

    #[test]
    fn deadlock_detection_on_halting_spec() {
        // A spec whose remote halts after one message: home keeps waiting
        // but remote has a terminal-ish self-loop... we instead build a true
        // deadlock: remote waits for a message home never sends.
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore(&sys, &Budget::default(), |_| None, true);
        assert_eq!(r.outcome, Outcome::Deadlock);
    }

    #[test]
    fn dfs_and_bfs_agree_on_the_reachable_set() {
        let spec = token_spec();
        for n in [1u32, 2, 3] {
            let sys = RendezvousSystem::new(&spec, n);
            let bfs = explore_plain(&sys, &Budget::default());
            let dfs = explore_dfs(&sys, &Budget::default(), |_| None, false);
            assert!(bfs.outcome.is_complete() && dfs.outcome.is_complete());
            assert_eq!(bfs.states, dfs.states, "n={n}");
            assert_eq!(bfs.transitions, dfs.transitions, "n={n}");
        }
    }

    #[test]
    fn dfs_detects_deadlock_too() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_dfs(&sys, &Budget::default(), |_| None, true);
        assert_eq!(r.outcome, Outcome::Deadlock);
    }

    #[test]
    fn observer_emits_heartbeats_and_terminal_outcome() {
        use ccr_trace::{RingSink, TraceEvent};
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let mut sink = RingSink::new(256);
        let mut obs = SearchObserver::new(&mut sink).with_interval(Duration::ZERO);
        let r = explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs);
        assert!(r.outcome.is_complete());
        let events = sink.into_events();
        assert!(
            events.iter().any(|e| matches!(e, TraceEvent::Heartbeat { .. })),
            "heartbeats every state expansion"
        );
        assert!(matches!(
            events.last(),
            Some(TraceEvent::Outcome { outcome, .. }) if outcome == "Complete"
        ));
    }

    #[test]
    fn disabled_sink_silences_the_observer() {
        use ccr_trace::NullSink;
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let mut null = NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let r = explore_observed(&sys, &Budget::default(), |_| None, false, &mut obs);
        assert!(r.outcome.is_complete());
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ccr-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open_run(root: &Path, opts: &PersistOpts) -> SerialPersist {
        match SerialPersist::open(root, opts).expect("open") {
            SerialPersistOpen::Run(p) => *p,
            SerialPersistOpen::Finished(_) => panic!("unexpected finished manifest"),
        }
    }

    #[test]
    fn persisted_run_matches_in_memory_run() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let plain = explore_plain(&sys, &Budget::default());
        let dir = persist_dir("serial-basic");

        // Log-only (no eviction), checkpoint every expansion.
        let opts = PersistOpts { interval: Duration::ZERO, ..PersistOpts::default() };
        let mut null = NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let mut p = open_run(&dir, &opts);
        let r =
            explore_observed_persist(&sys, &Budget::default(), |_| None, false, &mut obs, &mut p);
        assert_eq!(
            (r.states, r.transitions, &r.outcome),
            (plain.states, plain.transitions, &plain.outcome)
        );
        drop(p);

        // A spilling run (tiny eviction threshold) explores identically.
        let dir2 = persist_dir("serial-spill");
        let opts =
            PersistOpts { interval: Duration::ZERO, evict_at: 1024, ..PersistOpts::default() };
        let mut obs = SearchObserver::new(&mut null);
        let mut p = open_run(&dir2, &opts);
        let r =
            explore_observed_persist(&sys, &Budget::default(), |_| None, false, &mut obs, &mut p);
        assert_eq!(
            (r.states, r.transitions, &r.outcome),
            (plain.states, plain.transitions, &plain.outcome)
        );
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir2);
    }

    #[test]
    fn finished_manifest_restores_the_report() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let plain = explore_plain(&sys, &Budget::default());
        let dir = persist_dir("serial-finished");
        let opts = PersistOpts { interval: Duration::ZERO, ..PersistOpts::default() };
        let mut null = NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let mut p = open_run(&dir, &opts);
        let r =
            explore_observed_persist(&sys, &Budget::default(), |_| None, false, &mut obs, &mut p);
        assert!(r.outcome.is_complete());
        drop(p);
        // Reopening with resume returns the terminal manifest, and the
        // synthesized report carries the identical counts.
        let opts = PersistOpts { resume: true, ..opts };
        match SerialPersist::open(&dir, &opts).expect("reopen") {
            SerialPersistOpen::Finished(m) => {
                let restored = report_from_manifest(&m);
                assert_eq!(restored.states, plain.states);
                assert_eq!(restored.transitions, plain.transitions);
                assert!(restored.outcome.is_complete());
            }
            SerialPersistOpen::Run(_) => panic!("expected a finished manifest"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_mid_run_checkpoint_reproduces_counts() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let plain = explore_plain(&sys, &Budget::default());
        for evict_at in [0usize, 512] {
            let dir = persist_dir(&format!("serial-resume-{evict_at}"));
            // First leg: checkpoint every expansion, abandon mid-run via a
            // state budget (the checkpoint written before the budget hit
            // plays the role of the last pre-crash checkpoint).
            let opts = PersistOpts { interval: Duration::ZERO, evict_at, ..PersistOpts::default() };
            let mut null = NullSink;
            let mut obs = SearchObserver::new(&mut null);
            let mut p = open_run(&dir, &opts);
            let truncated = crate::search::drive(
                &sys,
                &Budget::states(plain.states / 2),
                |_| None,
                false,
                false,
                false,
                &mut obs,
                Some(&mut p),
            );
            assert_eq!(truncated.outcome, Outcome::Unfinished);
            // Simulate the crash: drop without concluding (the terminal
            // manifest is never written; the log keeps an unflushed tail).
            drop(p);
            drop(truncated);

            // Second leg: resume and finish.
            let opts = PersistOpts { resume: true, ..opts };
            let mut obs = SearchObserver::new(&mut null);
            let mut p = open_run(&dir, &opts);
            let r = explore_observed_persist(
                &sys,
                &Budget::default(),
                |_| None,
                false,
                &mut obs,
                &mut p,
            );
            assert_eq!(
                (r.states, r.transitions, &r.outcome),
                (plain.states, plain.transitions, &plain.outcome),
                "evict_at={evict_at}"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn state_counts_grow_with_n() {
        let spec = token_spec();
        let mut last = 0;
        for n in [1u32, 2, 4] {
            let sys = RendezvousSystem::new(&spec, n);
            let r = explore_plain(&sys, &Budget::default());
            assert!(r.outcome.is_complete());
            assert!(r.states > last, "n={n}: {} not > {last}", r.states);
            last = r.states;
        }
    }
}
