//! # ccr-mc — explicit-state model checking for coherence protocols
//!
//! The paper evaluates its refinement by *reachability analysis* with SPIN
//! (§5, Table 3): the rendezvous protocols verify orders of magnitude
//! faster than their asynchronous refinements. This crate is our SPIN
//! substitute: an explicit-state engine over any
//! [`ccr_runtime::TransitionSystem`], providing
//!
//! * [`search::explore`] — breadth-first reachability with state and memory
//!   budgets (runs that exceed the budget report `Unfinished`, mirroring
//!   the paper's 64 MB limit);
//! * [`props`] — invariant checking (coherence safety) and deadlock
//!   detection;
//! * [`simrel::check_simulation`] — the Equation 1 soundness check: every
//!   asynchronous transition maps under the §4 abstraction function to a
//!   stutter or to a rendezvous transition;
//! * [`progress::check_progress`] — livelock detection: from every
//!   reachable state some rendezvous completion must remain reachable (the
//!   §2.5 forward-progress criterion for "at least one remote");
//! * [`parallel::explore_parallel`] — the multi-threaded engine: hash-
//!   sharded visited set behind lock stripes, level-synchronized BFS with
//!   batched cross-worker exchange, observationally equivalent to the
//!   serial search (same states/transitions/outcome at any thread count).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod faultmode;
pub mod fuzz;
pub mod parallel;
pub mod persist;
pub mod progress;
pub mod props;
pub mod report;
pub mod search;
pub mod simrel;
pub mod store;
pub mod symmetry;
pub mod trace;

pub use faultmode::{
    check_fault_closure, check_fault_closure_observed, check_fault_closure_parallel_observed,
    FaultClosureReport,
};
pub use fuzz::{
    fuzz_one, inject_unsound, run_shape, run_spec, shrink_failing, FuzzConfig, FuzzFailure,
    ShrinkResult, SpecVerdict,
};
pub use parallel::{
    explore_parallel, explore_parallel_observed, explore_parallel_observed_persist,
    explore_parallel_traced_observed, explore_parallel_traced_observed_persist, ParallelConfig,
    ParallelPersist, ParallelPersistOpen, ParallelReport,
};
pub use persist::{
    CrashSwitch, LockGuard, LogTier, Manifest, ManifestWriter, PersistError, PersistStats, PhaseDir,
};
pub use progress::{
    check_progress, check_progress_default, check_progress_observed, check_progress_parallel,
    check_progress_parallel_observed,
};
pub use report::{ExploreReport, Outcome, ProgressReport, SimRelReport};
pub use search::{
    explore, explore_dfs, explore_observed, explore_observed_persist, report_from_manifest, Budget,
    PersistOpts, SearchObserver, SerialPersist, SerialPersistOpen, StatusReporter,
    DEFAULT_HEARTBEAT_INTERVAL,
};
pub use symmetry::{
    apply_perm, canonical_encode, canonicalize, spec_permutable, OrbitSample, Reduced, Symmetric,
};
pub use trace::{
    explore_traced, explore_traced_observed, explore_traced_observed_persist, export_trail,
    replay_trail, TracedReport,
};
