//! Forward-progress (livelock) checking — the §2.5 criterion.
//!
//! The refinement promises that *some* remote always makes progress
//! (weak fairness): no reachable asynchronous configuration may be one from
//! which rendezvous completions become unreachable. We check the CTL-style
//! property `AG EF complete`: explore the state graph, mark every state
//! with an outgoing *completing* transition, and propagate reachability
//! backwards; any state left unmarked is a livelock witness, and any state
//! with no successors at all is a deadlock.

use crate::report::{Outcome, ProgressReport};
use crate::search::{Budget, SearchObserver};
use crate::store::StateStore;
use crate::trace::{export_trail, trail_to};
use ccr_runtime::{Label, TransitionSystem};
use ccr_trace::NullSink;
use std::collections::VecDeque;
use std::time::Instant;

/// Explores `sys` and checks that from every reachable state a completing
/// transition remains reachable.
///
/// `is_progress` classifies labels as progress events; the default notion
/// is `label.completes.is_some()`.
pub fn check_progress<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    is_progress: impl Fn(&Label) -> bool,
) -> ProgressReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null, 0);
    check_progress_observed(sys, budget, is_progress, &mut obs)
}

/// [`check_progress`] with live progress reporting: `obs` receives
/// periodic heartbeats during the forward exploration, and when the check
/// fails the witness trail (shortest path to the first stuck state) is
/// exported to the observer's sink as a replayed event stream.
pub fn check_progress_observed<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    is_progress: impl Fn(&Label) -> bool,
    obs: &mut SearchObserver<'_>,
) -> ProgressReport {
    let started = Instant::now();
    let mut store = StateStore::new();
    let mut frontier: VecDeque<T::State> = VecDeque::new();
    let mut succs = Vec::new();
    let mut enc = Vec::new();

    // Forward exploration building the reverse graph.
    let mut rev_edges: Vec<Vec<u32>> = Vec::new();
    let mut has_progress_edge: Vec<bool> = Vec::new();
    let mut has_successor: Vec<bool> = Vec::new();
    let mut parents: Vec<Option<(u32, Label)>> = Vec::new();
    let mut complete = true;

    let init = sys.initial();
    sys.encode(&init, &mut enc);
    store.insert(&enc);
    rev_edges.push(Vec::new());
    has_progress_edge.push(false);
    has_successor.push(false);
    parents.push(None);
    frontier.push_back(init);
    let next_index_of = |store: &mut StateStore,
                         enc: &[u8],
                         rev_edges: &mut Vec<Vec<u32>>,
                         has_progress_edge: &mut Vec<bool>,
                         has_successor: &mut Vec<bool>| {
        let (idx, is_new) = store.insert(enc);
        if is_new {
            rev_edges.push(Vec::new());
            has_progress_edge.push(false);
            has_successor.push(false);
        }
        (idx, is_new)
    };

    let mut queue_index = 0u32;
    while let Some(state) = frontier.pop_front() {
        let this_idx = queue_index;
        queue_index += 1;
        obs.tick(store.len(), frontier.len() + 1, store.approx_bytes());
        if sys.successors(&state, &mut succs).is_err() {
            complete = false;
            break;
        }
        for (label, next) in succs.drain(..) {
            sys.encode(&next, &mut enc);
            let (idx, is_new) = next_index_of(
                &mut store,
                &enc,
                &mut rev_edges,
                &mut has_progress_edge,
                &mut has_successor,
            );
            has_successor[this_idx as usize] = true;
            rev_edges[idx as usize].push(this_idx);
            if is_progress(&label) {
                has_progress_edge[this_idx as usize] = true;
            }
            if is_new {
                parents.push(Some((this_idx, label.clone())));
                if store.len() >= budget.max_states
                    || store.approx_bytes() >= budget.max_bytes
                    || budget.max_time.map(|t| started.elapsed() >= t).unwrap_or(false)
                {
                    complete = false;
                    frontier.clear();
                    break;
                }
                frontier.push_back(next);
            }
        }
        if !complete {
            break;
        }
    }

    // Backward propagation from progress states.
    let n = store.len();
    let mut good = vec![false; n];
    let mut bfs: VecDeque<u32> = VecDeque::new();
    for (i, &p) in has_progress_edge.iter().enumerate().take(n) {
        if p {
            good[i] = true;
            bfs.push_back(i as u32);
        }
    }
    while let Some(i) = bfs.pop_front() {
        for &p in &rev_edges[i as usize] {
            if !good[p as usize] {
                good[p as usize] = true;
                bfs.push_back(p);
            }
        }
    }

    // Only states that were actually *expanded* (index < queue_index) have
    // complete successor information; unexpanded frontier states are not
    // judged.
    let expanded = queue_index as usize;
    let deadlocked = (0..expanded).filter(|&i| !has_successor[i]).count();
    let livelocked = (0..expanded).filter(|&i| has_successor[i] && !good[i]).count();

    // Witness: shortest trail (BFS order = insertion order) to the first
    // stuck state of either kind.
    let first_dead = (0..expanded).find(|&i| !has_successor[i]);
    let first_live = (0..expanded).find(|&i| has_successor[i] && !good[i]);
    let bad = match (first_dead, first_live) {
        (Some(d), Some(l)) => {
            Some(if d <= l { (d, Outcome::Deadlock) } else { (l, Outcome::Livelock) })
        }
        (Some(d), None) => Some((d, Outcome::Deadlock)),
        (None, Some(l)) => Some((l, Outcome::Livelock)),
        (None, None) => None,
    };
    let (witness, witness_outcome) = match bad {
        Some((idx, out)) => (Some(trail_to(&parents, idx as u32)), Some(out)),
        None => (None, None),
    };

    if obs.sink().enabled() {
        match (&witness, &witness_outcome) {
            (Some(trail), Some(out)) => {
                export_trail(sys, trail, out, obs.sink());
            }
            _ => {
                let outcome = if complete { Outcome::Complete } else { Outcome::Unfinished };
                obs.finish(&outcome, None);
            }
        }
    }

    ProgressReport {
        states: store.len(),
        livelocked_states: livelocked,
        deadlocked_states: deadlocked,
        complete,
        witness,
        witness_outcome,
    }
}

/// Convenience: progress = any completed rendezvous.
pub fn check_progress_default<T: TransitionSystem>(sys: &T, budget: &Budget) -> ProgressReport {
    check_progress(sys, budget, |l| l.completes.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_core::value::Value;
    use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
    use ccr_runtime::rendezvous::RendezvousSystem;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn rendezvous_token_has_progress_everywhere() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete);
        assert!(r.holds(), "{r:?}");
    }

    #[test]
    fn async_token_has_progress_with_minimal_buffer() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete, "exploration should finish: {r:?}");
        assert!(r.holds(), "k=2 must preserve global progress: {r:?}");
    }

    #[test]
    fn deadlocked_spec_is_flagged() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete);
        assert!(!r.holds());
        assert!(r.deadlocked_states > 0);
    }

    #[test]
    fn deadlock_witness_replays_to_a_stuck_state() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = check_progress_default(&sys, &Budget::default());
        assert_eq!(r.witness_outcome, Some(Outcome::Deadlock));
        let trail = r.witness.expect("witness trail");
        let end = crate::trace::replay_trail(&sys, &trail).expect("witness replays");
        let mut succs = Vec::new();
        sys.successors(&end, &mut succs).unwrap();
        assert!(succs.is_empty(), "witness leads to a state with no successors");
    }

    #[test]
    fn healthy_spec_has_no_witness() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.holds());
        assert!(r.witness.is_none());
        assert!(r.witness_outcome.is_none());
    }

    #[test]
    fn budget_marks_incomplete() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let r = check_progress_default(&sys, &Budget::states(2));
        assert!(!r.complete);
        assert!(!r.holds());
    }
}
