//! Forward-progress (livelock) checking — the §2.5 criterion.
//!
//! The refinement promises that *some* remote always makes progress
//! (weak fairness): no reachable asynchronous configuration may be one from
//! which rendezvous completions become unreachable. We check the CTL-style
//! property `AG EF complete`: explore the state graph, mark every state
//! with an outgoing *completing* transition, and propagate reachability
//! backwards; any state left unmarked is a livelock witness, and any state
//! with no successors at all is a deadlock.
//!
//! The reverse graph is stored in flat CSR form (an offsets array plus a
//! targets array, two `Vec<u32>`s) rather than one `Vec` per state: edges
//! are collected as `(dst, src)` pairs during the forward sweep and
//! bucketed by a counting sort afterwards, so the backward BFS walks one
//! contiguous slice per state instead of chasing per-state heap
//! allocations.
//!
//! [`check_progress_parallel`] runs the same check on the multi-threaded
//! engine of [`crate::parallel`]: workers record reverse edges and
//! per-state flags during the level-synchronized sweep, shard-local state
//! indices are renumbered to dense global ids by prefix sums afterwards,
//! and the backward propagation runs single-threaded on the merged CSR
//! (it is a fraction of the forward-sweep cost).

use crate::parallel::{
    self, pack, unpack, ParallelConfig, FLAG_EXPANDED, FLAG_HAS_SUCC, FLAG_PROGRESS,
};
use crate::report::{Outcome, ProgressReport};
use crate::search::{Budget, SearchObserver};
use crate::store::StateStore;
use crate::trace::{export_trail, trail_to};
use ccr_metrics::profile::SpanKind;
use ccr_runtime::{Label, TransitionSystem};
use ccr_trace::NullSink;
use std::collections::VecDeque;
use std::time::Instant;

/// Builds the CSR adjacency `(offsets, targets)` over `n` nodes from
/// `(node, target)` pairs — for the reverse graph, `node` is the edge's
/// destination and `target` its source.
fn build_csr(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = vec![0u32; n + 1];
    for &(node, _) in edges {
        offsets[node as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![0u32; edges.len()];
    for &(node, tgt) in edges {
        let c = &mut cursor[node as usize];
        targets[*c as usize] = tgt;
        *c += 1;
    }
    (offsets, targets)
}

/// Backward BFS over a reverse-graph CSR: marks every state from which a
/// `seed`-marked state is forward-reachable.
fn propagate_good(n: usize, offsets: &[u32], targets: &[u32], seed: &[bool]) -> Vec<bool> {
    let mut good = vec![false; n];
    let mut bfs: VecDeque<u32> = VecDeque::new();
    for (i, &p) in seed.iter().enumerate().take(n) {
        if p {
            good[i] = true;
            bfs.push_back(i as u32);
        }
    }
    while let Some(i) = bfs.pop_front() {
        let (s, e) = (offsets[i as usize] as usize, offsets[i as usize + 1] as usize);
        for &p in &targets[s..e] {
            if !good[p as usize] {
                good[p as usize] = true;
                bfs.push_back(p);
            }
        }
    }
    good
}

/// Explores `sys` and checks that from every reachable state a completing
/// transition remains reachable.
///
/// `is_progress` classifies labels as progress events; the default notion
/// is `label.completes.is_some()`.
pub fn check_progress<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    is_progress: impl Fn(&Label) -> bool,
) -> ProgressReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    check_progress_observed(sys, budget, is_progress, &mut obs)
}

/// [`check_progress`] with live progress reporting: `obs` receives
/// periodic heartbeats during the forward exploration, and when the check
/// fails the witness trail (shortest path to the first stuck state) is
/// exported to the observer's sink as a replayed event stream.
pub fn check_progress_observed<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    is_progress: impl Fn(&Label) -> bool,
    obs: &mut SearchObserver<'_>,
) -> ProgressReport {
    let started = Instant::now();
    let mut store = StateStore::new();
    let mut frontier: VecDeque<T::State> = VecDeque::new();
    let mut succs = Vec::new();
    let mut enc = Vec::new();
    let mut timer = obs.profiler().worker(0);

    // Forward exploration collecting the reverse graph as a flat
    // `(dst, src)` edge list — CSR-bucketed after the sweep.
    let mut edge_list: Vec<(u32, u32)> = Vec::new();
    let mut has_progress_edge: Vec<bool> = Vec::new();
    let mut has_successor: Vec<bool> = Vec::new();
    let mut parents: Vec<Option<(u32, Label)>> = Vec::new();
    let mut complete = true;

    let init = sys.initial();
    sys.encode(&init, &mut enc);
    store.insert(&enc);
    has_progress_edge.push(false);
    has_successor.push(false);
    parents.push(None);
    frontier.push_back(init);
    let next_index_of = |store: &mut StateStore,
                         enc: &[u8],
                         has_progress_edge: &mut Vec<bool>,
                         has_successor: &mut Vec<bool>| {
        let (idx, is_new) = store.insert(enc);
        if is_new {
            has_progress_edge.push(false);
            has_successor.push(false);
        }
        (idx, is_new)
    };

    let mut queue_index = 0u32;
    let mut peak_frontier = 1usize;
    while let Some(state) = frontier.pop_front() {
        let this_idx = queue_index;
        queue_index += 1;
        peak_frontier = peak_frontier.max(frontier.len() + 1);
        obs.tick(store.len(), frontier.len() + 1, store.approx_bytes());
        if sys.successors(&state, &mut succs).is_err() {
            complete = false;
            break;
        }
        timer.lap(SpanKind::Compute, 1);
        let n_succs = succs.len() as u64;
        for (label, next) in succs.drain(..) {
            sys.encode(&next, &mut enc);
            let (idx, is_new) =
                next_index_of(&mut store, &enc, &mut has_progress_edge, &mut has_successor);
            has_successor[this_idx as usize] = true;
            edge_list.push((idx, this_idx));
            if is_progress(&label) {
                has_progress_edge[this_idx as usize] = true;
            }
            if is_new {
                parents.push(Some((this_idx, label.clone())));
                if store.len() >= budget.max_states
                    || store.approx_bytes() >= budget.max_bytes
                    || budget.max_time.map(|t| started.elapsed() >= t).unwrap_or(false)
                {
                    complete = false;
                    frontier.clear();
                    break;
                }
                frontier.push_back(next);
            }
        }
        timer.lap(SpanKind::Encode, n_succs);
        if !complete {
            break;
        }
    }

    // Backward propagation from progress states over the CSR reverse
    // graph.
    timer.mark();
    let n = store.len();
    let transitions = edge_list.len();
    let (offsets, targets) = build_csr(n, &edge_list);
    drop(edge_list);
    crate::search::record_search_run(obs.metrics(), n, transitions, peak_frontier, &store);
    let good = propagate_good(n, &offsets, &targets, &has_progress_edge);
    timer.lap(SpanKind::Progress, 1);

    // Only states that were actually *expanded* (index < queue_index) have
    // complete successor information; unexpanded frontier states are not
    // judged.
    let expanded = queue_index as usize;
    let deadlocked = (0..expanded).filter(|&i| !has_successor[i]).count();
    let livelocked = (0..expanded).filter(|&i| has_successor[i] && !good[i]).count();

    // Witness: shortest trail (BFS order = insertion order) to the first
    // stuck state of either kind.
    let first_dead = (0..expanded).find(|&i| !has_successor[i]);
    let first_live = (0..expanded).find(|&i| has_successor[i] && !good[i]);
    let bad = match (first_dead, first_live) {
        (Some(d), Some(l)) => {
            Some(if d <= l { (d, Outcome::Deadlock) } else { (l, Outcome::Livelock) })
        }
        (Some(d), None) => Some((d, Outcome::Deadlock)),
        (None, Some(l)) => Some((l, Outcome::Livelock)),
        (None, None) => None,
    };
    let (witness, witness_outcome) = match bad {
        Some((idx, out)) => (Some(trail_to(&parents, idx as u32)), Some(out)),
        None => (None, None),
    };

    if obs.sink().enabled() {
        match (&witness, &witness_outcome) {
            (Some(trail), Some(out)) => {
                export_trail(sys, trail, out, obs.sink());
            }
            _ => {
                let outcome = if complete { Outcome::Complete } else { Outcome::Unfinished };
                obs.finish(&outcome, None);
            }
        }
    }

    ProgressReport {
        states: store.len(),
        livelocked_states: livelocked,
        deadlocked_states: deadlocked,
        complete,
        witness,
        witness_outcome,
    }
}

/// Convenience: progress = any completed rendezvous.
pub fn check_progress_default<T: TransitionSystem>(sys: &T, budget: &Budget) -> ProgressReport {
    check_progress(sys, budget, |l| l.completes.is_some())
}

/// [`check_progress`] on the multi-threaded engine: the forward sweep
/// runs level-synchronized across `cfg.threads` workers (reverse edges
/// and per-state flags recorded shard-locally), then the backward
/// propagation runs single-threaded on the merged CSR.
///
/// On a complete exploration the counts (`states`, `livelocked_states`,
/// `deadlocked_states`) equal the serial checker's at any thread count.
/// The witness is the minimal stuck state by `(depth, encoded state)` —
/// deterministic across thread counts, always a shortest-depth witness,
/// though possibly a different same-depth state than the serial checker
/// picks. Under hash compaction the encoding is unavailable and the
/// tiebreak falls back to shard order, which is stable for a given
/// config but not across thread counts.
pub fn check_progress_parallel<T, G>(
    sys: &T,
    budget: &Budget,
    is_progress: G,
    cfg: &ParallelConfig,
) -> ProgressReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    G: Fn(&Label) -> bool + Sync,
{
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    check_progress_parallel_observed(sys, budget, is_progress, cfg, &mut obs)
}

/// [`check_progress_parallel`] with heartbeats and witness-trail export,
/// mirroring [`check_progress_observed`].
pub fn check_progress_parallel_observed<T, G>(
    sys: &T,
    budget: &Budget,
    is_progress: G,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
) -> ProgressReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    G: Fn(&Label) -> bool + Sync,
{
    let invariant = |_: &T::State| None::<String>;
    let engine = parallel::Engine::new(
        sys,
        budget,
        &invariant,
        Some(&is_progress),
        false,
        cfg,
        obs.metrics(),
        obs.profiler(),
    );
    let (outcome, _, edges) = parallel::run(&engine, obs);
    let complete = outcome.is_complete();
    // The single-threaded graph pass below (renumber, CSR, propagate) is
    // the progress check's own cost — charge it to the coordinator.
    let mut timer = obs.profiler().worker(0);

    // Renumber shard-local indices to dense global ids by prefix sums,
    // and pull each shard's flags and depths into flat arrays.
    let n_shards = engine.stripes.len();
    let mut base = vec![0u32; n_shards + 1];
    let mut flags: Vec<u8> = Vec::new();
    let mut depths: Vec<u32> = Vec::new();
    for (s, stripe) in engine.stripes.iter().enumerate() {
        let sh = stripe.lock().expect("stripe");
        base[s + 1] = base[s] + sh.store.len() as u32;
        flags.extend_from_slice(&sh.flags);
        depths.extend_from_slice(&sh.depth);
    }
    let n = base[n_shards] as usize;
    let to_global = |r: u64| {
        let (s, i) = unpack(r);
        base[s] + i
    };

    let mapped: Vec<(u32, u32)> =
        edges.iter().map(|&(d, s)| (to_global(d), to_global(s))).collect();
    drop(edges);
    let (offsets, targets) = build_csr(n, &mapped);
    drop(mapped);
    let seed: Vec<bool> = flags.iter().map(|f| f & FLAG_PROGRESS != 0).collect();
    let good = propagate_good(n, &offsets, &targets, &seed);
    timer.lap(SpanKind::Progress, 1);

    // Judge only expanded states, as in the serial checker.
    let mut deadlocked = 0usize;
    let mut livelocked = 0usize;
    for i in 0..n {
        if flags[i] & FLAG_EXPANDED == 0 {
            continue;
        }
        if flags[i] & FLAG_HAS_SUCC == 0 {
            deadlocked += 1;
        } else if !good[i] {
            livelocked += 1;
        }
    }

    // Witness: minimal stuck state by (depth, encoded bytes, kind), one
    // candidate per shard then a global minimum.
    let mut best: Option<(u32, Vec<u8>, u8, u64)> = None;
    for (s, stripe) in engine.stripes.iter().enumerate() {
        let sh = stripe.lock().expect("stripe");
        for i in 0..sh.store.len() as u32 {
            let gi = (base[s] + i) as usize;
            let f = flags[gi];
            if f & FLAG_EXPANDED == 0 {
                continue;
            }
            let rank = if f & FLAG_HAS_SUCC == 0 {
                0u8
            } else if !good[gi] {
                1u8
            } else {
                continue;
            };
            let d = depths[gi];
            if let Some((bd, _, _, _)) = &best {
                if d > *bd {
                    continue;
                }
            }
            let enc = sh.store.key_bytes(i).map(<[u8]>::to_vec).unwrap_or_default();
            let cand = (d, enc, rank, pack(s, i));
            let better = match &best {
                None => true,
                Some(b) => (cand.0, &cand.1, cand.2) < (b.0, &b.1, b.2),
            };
            if better {
                best = Some(cand);
            }
        }
    }
    let (witness, witness_outcome) = match best {
        Some((_, _, rank, state_ref)) => {
            let out = if rank == 0 { Outcome::Deadlock } else { Outcome::Livelock };
            (Some(engine.trail_to(state_ref)), Some(out))
        }
        None => (None, None),
    };

    if obs.sink().enabled() {
        match (&witness, &witness_outcome) {
            (Some(trail), Some(out)) => {
                export_trail(sys, trail, out, obs.sink());
            }
            _ => {
                let o = if complete { Outcome::Complete } else { Outcome::Unfinished };
                obs.finish(&o, None);
            }
        }
    }

    ProgressReport {
        states: n,
        livelocked_states: livelocked,
        deadlocked_states: deadlocked,
        complete,
        witness,
        witness_outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_core::value::Value;
    use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
    use ccr_runtime::rendezvous::RendezvousSystem;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn rendezvous_token_has_progress_everywhere() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete);
        assert!(r.holds(), "{r:?}");
    }

    #[test]
    fn async_token_has_progress_with_minimal_buffer() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete, "exploration should finish: {r:?}");
        assert!(r.holds(), "k=2 must preserve global progress: {r:?}");
    }

    #[test]
    fn deadlocked_spec_is_flagged() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.complete);
        assert!(!r.holds());
        assert!(r.deadlocked_states > 0);
    }

    #[test]
    fn deadlock_witness_replays_to_a_stuck_state() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = check_progress_default(&sys, &Budget::default());
        assert_eq!(r.witness_outcome, Some(Outcome::Deadlock));
        let trail = r.witness.expect("witness trail");
        let end = crate::trace::replay_trail(&sys, &trail).expect("witness replays");
        let mut succs = Vec::new();
        sys.successors(&end, &mut succs).unwrap();
        assert!(succs.is_empty(), "witness leads to a state with no successors");
    }

    #[test]
    fn healthy_spec_has_no_witness() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = check_progress_default(&sys, &Budget::default());
        assert!(r.holds());
        assert!(r.witness.is_none());
        assert!(r.witness_outcome.is_none());
    }

    #[test]
    fn budget_marks_incomplete() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let r = check_progress_default(&sys, &Budget::states(2));
        assert!(!r.complete);
        assert!(!r.holds());
    }

    #[test]
    fn csr_regression_no_progress_notion_marks_everything_livelocked() {
        // With no label counting as progress, every state that has
        // successors is livelocked and the witness is the initial state
        // (empty trail) — pins the CSR backward propagation against the
        // old per-state adjacency-list behavior.
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let r = check_progress(&sys, &Budget::default(), |_| false);
        assert!(r.complete);
        assert_eq!(r.states, 6);
        assert_eq!(r.livelocked_states, r.states);
        assert_eq!(r.deadlocked_states, 0);
        assert_eq!(r.witness_outcome, Some(Outcome::Livelock));
        assert_eq!(r.witness.as_deref(), Some(&[][..]), "initial state is the first witness");
    }

    #[test]
    fn parallel_progress_matches_serial_on_healthy_specs() {
        let spec = token_spec();
        for n in [2u32, 3] {
            let sys = RendezvousSystem::new(&spec, n);
            let serial = check_progress_default(&sys, &Budget::default());
            for threads in [1usize, 2, 4] {
                let cfg = ParallelConfig::threads(threads);
                let par = check_progress_parallel(
                    &sys,
                    &Budget::default(),
                    |l: &Label| l.completes.is_some(),
                    &cfg,
                );
                assert_eq!(par.states, serial.states, "n={n} t={threads}");
                assert_eq!(par.livelocked_states, serial.livelocked_states, "n={n} t={threads}");
                assert_eq!(par.deadlocked_states, serial.deadlocked_states, "n={n} t={threads}");
                assert!(par.complete && par.holds(), "n={n} t={threads}");
                assert!(par.witness.is_none());
            }
        }
    }

    #[test]
    fn parallel_progress_on_async_refinement_matches_serial() {
        let spec = token_spec();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        let sys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
        let serial = check_progress_default(&sys, &Budget::default());
        let cfg = ParallelConfig::threads(4);
        let par = check_progress_parallel(
            &sys,
            &Budget::default(),
            |l: &Label| l.completes.is_some(),
            &cfg,
        );
        assert_eq!(par.states, serial.states);
        assert_eq!(par.livelocked_states, serial.livelocked_states);
        assert_eq!(par.deadlocked_states, serial.deadlocked_states);
        assert_eq!(par.holds(), serial.holds());
    }

    #[test]
    fn parallel_progress_finds_deadlock_and_witness_replays() {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        let spec = b.finish().unwrap();
        let sys = RendezvousSystem::new(&spec, 2);
        let serial = check_progress_default(&sys, &Budget::default());
        let mut reference: Option<(usize, usize, usize)> = None;
        for threads in [1usize, 2, 4] {
            let cfg = ParallelConfig::threads(threads);
            let par = check_progress_parallel(
                &sys,
                &Budget::default(),
                |l: &Label| l.completes.is_some(),
                &cfg,
            );
            assert_eq!(par.states, serial.states, "t={threads}");
            assert_eq!(par.deadlocked_states, serial.deadlocked_states, "t={threads}");
            assert_eq!(par.livelocked_states, serial.livelocked_states, "t={threads}");
            assert_eq!(par.witness_outcome, Some(Outcome::Deadlock), "t={threads}");
            let trail = par.witness.clone().expect("witness trail");
            let end = crate::trace::replay_trail(&sys, &trail).expect("witness replays");
            let mut succs = Vec::new();
            sys.successors(&end, &mut succs).unwrap();
            assert!(succs.is_empty(), "witness leads to a stuck state");
            let key = (par.states, par.deadlocked_states, trail.len());
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(&key, r, "t={threads}"),
            }
        }
    }
}
