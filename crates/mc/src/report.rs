//! Result structures produced by the checking algorithms.

use ccr_runtime::{Label, RuntimeError};
use serde::Serialize;
use std::time::Duration;

/// How a search ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum Outcome {
    /// The full reachable state space was explored.
    Complete,
    /// The state or byte budget was exhausted first — the paper's
    /// "Unfinished" entries in Table 3.
    Unfinished,
    /// An invariant was violated; carries a human-readable description.
    InvariantViolated(String),
    /// A deadlock (state with no successors) was found.
    Deadlock,
    /// A livelock was found: a reachable state from which no rendezvous
    /// completion remains reachable (the §2.5 progress criterion fails).
    Livelock,
    /// The executor reported an error (a refinement-assumption violation).
    RuntimeFailure(RuntimeError),
    /// The persistence layer failed (I/O error, corrupt log or manifest);
    /// carries the diagnostic with the offending path. Counts computed
    /// before the failure are not trustworthy, so the search aborts with
    /// this instead of reporting them.
    PersistFailure(String),
}

impl Outcome {
    /// True for [`Outcome::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete)
    }

    /// The bare variant name, for trace events.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Complete => "Complete",
            Outcome::Unfinished => "Unfinished",
            Outcome::InvariantViolated(_) => "InvariantViolated",
            Outcome::Deadlock => "Deadlock",
            Outcome::Livelock => "Livelock",
            Outcome::RuntimeFailure(_) => "RuntimeFailure",
            Outcome::PersistFailure(_) => "PersistFailure",
        }
    }

    /// The violation description or failure message, when any.
    pub fn detail(&self) -> Option<String> {
        match self {
            Outcome::InvariantViolated(d) => Some(d.clone()),
            Outcome::RuntimeFailure(e) => Some(e.to_string()),
            Outcome::PersistFailure(d) => Some(d.clone()),
            _ => None,
        }
    }
}

/// Statistics of a reachability run — the columns of Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ExploreReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// Wall time of the search.
    pub elapsed: Duration,
    /// Approximate memory used by the visited set, in bytes.
    pub store_bytes: usize,
    /// Maximum BFS frontier size.
    pub peak_frontier: usize,
    /// How the run ended.
    pub outcome: Outcome,
    /// True when the visited set used 8-byte hash compaction: `states`
    /// counts hash-distinct states, so a `Complete` outcome is
    /// probabilistic (distinct states with colliding hashes are
    /// conflated). Exact searches always report `false`.
    pub probabilistic: bool,
}

impl ExploreReport {
    /// Formats a Table 3-style cell: `states/seconds` or `Unfinished`.
    pub fn table_cell(&self) -> String {
        match &self.outcome {
            Outcome::Complete => {
                format!("{}/{:.2}", self.states, self.elapsed.as_secs_f64())
            }
            Outcome::Unfinished => "Unfinished".to_string(),
            Outcome::InvariantViolated(d) => format!("Violated({d})"),
            Outcome::Deadlock => "Deadlock".to_string(),
            Outcome::Livelock => "Livelock".to_string(),
            Outcome::RuntimeFailure(e) => format!("Error({e})"),
            Outcome::PersistFailure(d) => format!("PersistFailure({d})"),
        }
    }
}

/// Result of the Equation 1 stuttering-simulation check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SimRelReport {
    /// Asynchronous states examined.
    pub async_states: usize,
    /// Asynchronous transitions checked against Equation 1.
    pub transitions_checked: usize,
    /// Transitions that mapped to a stutter (`abs(q) == abs(q')`).
    pub stutters: usize,
    /// Transitions that mapped to a rendezvous step.
    pub mapped_steps: usize,
    /// First violation found, if any: description of the failing edge.
    pub violation: Option<String>,
    /// True when the underlying exploration finished within budget.
    pub complete: bool,
}

impl SimRelReport {
    /// True when no violation was found and exploration completed.
    pub fn holds(&self) -> bool {
        self.violation.is_none() && self.complete
    }
}

/// Result of the forward-progress (livelock) check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProgressReport {
    /// Reachable states examined.
    pub states: usize,
    /// States from which no completion is reachable (livelock witnesses).
    pub livelocked_states: usize,
    /// Deadlocked states (no successors at all).
    pub deadlocked_states: usize,
    /// True when the underlying exploration finished within budget.
    pub complete: bool,
    /// Shortest transition trail from the initial state to the first
    /// stuck (deadlocked or livelocked) state, when the check fails.
    pub witness: Option<Vec<Label>>,
    /// What the witness trail leads to: [`Outcome::Deadlock`] or
    /// [`Outcome::Livelock`].
    pub witness_outcome: Option<Outcome>,
}

impl ProgressReport {
    /// The §2.5 criterion: from every reachable state, some rendezvous
    /// completion remains possible.
    pub fn holds(&self) -> bool {
        self.complete && self.livelocked_states == 0 && self.deadlocked_states == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_cell_formats() {
        let mut r = ExploreReport {
            states: 54,
            transitions: 100,
            elapsed: Duration::from_millis(100),
            store_bytes: 1024,
            peak_frontier: 10,
            outcome: Outcome::Complete,
            probabilistic: false,
        };
        assert_eq!(r.table_cell(), "54/0.10");
        r.outcome = Outcome::Unfinished;
        assert_eq!(r.table_cell(), "Unfinished");
        r.outcome = Outcome::Deadlock;
        assert_eq!(r.table_cell(), "Deadlock");
        r.outcome = Outcome::InvariantViolated("two owners".into());
        assert!(r.table_cell().contains("two owners"));
        assert!(!r.outcome.is_complete());
    }

    #[test]
    fn outcome_name_and_detail() {
        assert_eq!(Outcome::Complete.name(), "Complete");
        assert_eq!(Outcome::Complete.detail(), None);
        let v = Outcome::InvariantViolated("two owners".into());
        assert_eq!(v.name(), "InvariantViolated");
        assert_eq!(v.detail().as_deref(), Some("two owners"));
    }

    #[test]
    fn reports_serialize_to_valid_json() {
        let r = ExploreReport {
            states: 54,
            transitions: 100,
            elapsed: Duration::from_millis(100),
            store_bytes: 1024,
            peak_frontier: 10,
            outcome: Outcome::InvariantViolated("two owners".into()),
            probabilistic: false,
        };
        let json = serde::json::to_string(&r);
        assert!(ccr_trace::json_check::is_valid_json(&json), "{json}");
        assert!(json.contains("\"InvariantViolated\":\"two owners\""), "{json}");
        assert!(json.contains("\"states\":54"), "{json}");
    }

    #[test]
    fn simrel_holds_logic() {
        let mut r = SimRelReport {
            async_states: 10,
            transitions_checked: 20,
            stutters: 15,
            mapped_steps: 5,
            violation: None,
            complete: true,
        };
        assert!(r.holds());
        r.violation = Some("edge".into());
        assert!(!r.holds());
    }

    #[test]
    fn progress_holds_logic() {
        let mut r = ProgressReport {
            states: 5,
            livelocked_states: 0,
            deadlocked_states: 0,
            complete: true,
            witness: None,
            witness_outcome: None,
        };
        assert!(r.holds());
        r.livelocked_states = 1;
        assert!(!r.holds());
    }
}
