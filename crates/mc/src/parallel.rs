//! Parallel sharded state-space exploration.
//!
//! [`explore_parallel`] partitions encoded states by hash across `S`
//! shards, each a lock stripe owning its slice of the visited set (the
//! arena-backed [`StateStore`]) plus its own frontier queue. `T` worker
//! threads (spawned with `std::thread::scope` — no detached threads, no
//! unsafe) each own the shards `s` with `s % T == w` and exchange
//! cross-shard successors through batched queues (the vendored
//! `crossbeam::queue::SegQueue`). Each worker locks its own stripes once
//! for the whole run — stripes are strictly owner-accessed while workers
//! are live — so the hot path is plain `&mut` access, with shared
//! atomics touched once per batch, not per state.
//!
//! # Determinism
//!
//! The search is **level-synchronized**: all states at BFS depth `d` are
//! expanded before any state at depth `d + 1`. Level boundaries are
//! detected *asynchronously* — the last worker to finish a level waits
//! for message quiescence (per-worker sent/received batch counters) and
//! publishes the global decision through an epoch counter, while every
//! other worker keeps draining its inbox instead of parking at a
//! barrier. Because a complete
//! exploration visits the same reachable set in any order, `states`,
//! `transitions` and the outcome are *byte-identical across thread
//! counts*:
//!
//! * **Complete** runs report exactly the counts of the serial
//!   [`crate::search::explore`].
//! * **Violating** runs (invariant violation, deadlock, runtime failure)
//!   finish the level in which the first violation surfaced, then report
//!   the violation at minimal `(depth, encoded-state, kind)` order — a
//!   deterministic choice whatever the thread interleaving. The counts
//!   cover every fully expanded level and are therefore identical across
//!   thread counts, though they can exceed the serial engine's
//!   early-exit counts (the serial BFS stops mid-level).
//! * **Unfinished** runs stop at the end of the level during which the
//!   state or byte budget was crossed (deterministic; overshoot is
//!   bounded by one level). Only the wall-clock budget (and a 2× state
//!   safety valve) aborts mid-level, which is inherently
//!   timing-dependent — exactly as in the serial engine.
//!
//! With [`ParallelConfig::track_trails`] the engine keeps one parent
//! pointer and label per state; a violating run then carries a shortest
//! (minimal-depth) counterexample trail that replays under
//! [`crate::trace::replay_trail`].
//!
//! # Hash compaction
//!
//! [`ParallelConfig::compact_hash`] switches every shard store to 8-byte
//! hash compaction: distinct states whose 64-bit hashes collide are
//! conflated, making the run probabilistic (flagged in the report), in
//! exchange for a much smaller visited set — the escape hatch for spaces
//! that exceed the byte budget. See `docs/parallel_checking.md`.

use crate::persist::{
    CrashSwitch, LockGuard, LogTier, Manifest, ManifestWriter, PResult, PersistError, PhaseDir,
};
use crate::report::{ExploreReport, Outcome};
use crate::search::{Budget, PersistOpts, SearchObserver};
use crate::store::{hash_encoded, StateStore};
use ccr_core::ids::ProcessId;
use ccr_metrics::profile::{Profiler, SpanKind};
use ccr_metrics::Registry;
use ccr_runtime::{Label, LabelKind, TransitionSystem};
use ccr_trace::NullSink;
use crossbeam::queue::SegQueue;
use serde::Serialize;
use std::path::Path;
use std::sync::atomic::{
    AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::AcqRel, Ordering::Acquire,
    Ordering::Relaxed, Ordering::Release, Ordering::SeqCst,
};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Tuning knobs for [`explore_parallel`] and the parallel progress check.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Worker threads (≥ 1). 1 runs the same sharded algorithm on a
    /// single worker, which is useful for equivalence testing.
    pub threads: usize,
    /// Shard count (rounded up to a power of two ≥ `threads`). More
    /// shards mean finer lock striping and better balance; 64 is plenty
    /// up to 16 threads.
    pub shards: usize,
    /// Store only 64-bit state hashes (probabilistic, ~12 bytes/state).
    pub compact_hash: bool,
    /// Keep a parent pointer + label per state so violating runs carry a
    /// replayable counterexample trail. Costs one `Label` per stored
    /// state.
    pub track_trails: bool,
    /// Cross-worker successor batch size.
    pub batch: usize,
    /// Fault-injection hook: each worker sleeps this many milliseconds
    /// once before its first expansion. 0 (the default) is a no-op; CI
    /// uses it to provoke the stall watchdog on purpose.
    pub stall_ms: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            shards: 64,
            compact_hash: false,
            track_trails: false,
            batch: 256,
            stall_ms: 0,
        }
    }
}

impl ParallelConfig {
    /// A config with `threads` workers and default everything else.
    pub fn threads(threads: usize) -> Self {
        Self { threads: threads.max(1), ..Self::default() }
    }

    /// Enables counterexample trails.
    pub fn with_trails(mut self) -> Self {
        self.track_trails = true;
        self
    }

    /// Enables 8-byte hash compaction (probabilistic).
    pub fn with_compaction(mut self) -> Self {
        self.compact_hash = true;
        self
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.max(self.threads).max(1).next_power_of_two()
    }
}

/// Result of a parallel exploration: the [`ExploreReport`] fields plus
/// the parallel run's own metadata and optional counterexample trail.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelReport {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed (successors generated from expanded states).
    pub transitions: usize,
    /// Wall time of the search.
    pub elapsed: Duration,
    /// Bytes across all shard stores.
    pub store_bytes: usize,
    /// Largest BFS level (the level-synchronized frontier high-water
    /// mark).
    pub peak_frontier: usize,
    /// How the run ended.
    pub outcome: Outcome,
    /// BFS levels fully expanded.
    pub depth: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Shard (lock stripe) count.
    pub shards: usize,
    /// True when hash compaction was on: `states` counts hash-distinct
    /// states and a `Complete` outcome is probabilistic.
    pub probabilistic: bool,
    /// Shortest trail to the violation, when one was found and
    /// [`ParallelConfig::track_trails`] was set. Replays under
    /// [`crate::trace::replay_trail`].
    pub trail: Option<Vec<Label>>,
}

impl ParallelReport {
    /// The serial-shaped view of this report.
    pub fn explore_report(&self) -> ExploreReport {
        ExploreReport {
            states: self.states,
            transitions: self.transitions,
            elapsed: self.elapsed,
            store_bytes: self.store_bytes,
            peak_frontier: self.peak_frontier,
            outcome: self.outcome.clone(),
            probabilistic: self.probabilistic,
        }
    }

    /// The trail-carrying serial-shaped view of this report, for callers
    /// that handle serial and parallel runs uniformly.
    pub fn traced_report(&self) -> crate::trace::TracedReport {
        crate::trace::TracedReport {
            states: self.states,
            transitions: self.transitions,
            outcome: self.outcome.clone(),
            trail: self.trail.clone(),
        }
    }

    /// Formats the trail as SPIN-like numbered lines (`actor rule`), or a
    /// note that none exists.
    pub fn trail_text(&self) -> String {
        match &self.trail {
            None => "(no counterexample)".to_string(),
            Some(labels) => labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let completes =
                        l.completes.map(|(a, m)| format!(" completes {a}:{m}")).unwrap_or_default();
                    format!("{:>4}: {} [{}]{}", i + 1, l.actor, l.rule, completes)
                })
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }
}

/// Packed state reference: shard in the high 32 bits, dense in-shard
/// index in the low 32.
pub(crate) fn pack(shard: usize, idx: u32) -> u64 {
    ((shard as u64) << 32) | u64::from(idx)
}

pub(crate) fn unpack(r: u64) -> (usize, u32) {
    ((r >> 32) as usize, r as u32)
}

/// Sentinel parent reference of the initial state.
pub(crate) const ROOT: u64 = u64::MAX;

pub(crate) const FLAG_HAS_SUCC: u8 = 1;
pub(crate) const FLAG_PROGRESS: u8 = 2;
pub(crate) const FLAG_EXPANDED: u8 = 4;

/// Per-shard data behind one lock stripe.
pub(crate) struct ShardData<St> {
    pub(crate) store: StateStore,
    /// Dense index → BFS depth.
    pub(crate) depth: Vec<u32>,
    /// Dense index → parent reference (trails mode).
    pub(crate) parents: Vec<u64>,
    /// Dense index → incoming label (trails mode).
    pub(crate) labels: Vec<Label>,
    /// Dense index → `FLAG_*` bits (progress mode).
    pub(crate) flags: Vec<u8>,
    /// Frontier: states at the level being expanded.
    cur: Vec<(St, u32)>,
    /// Frontier: states discovered for the next level.
    next: Vec<(St, u32)>,
    /// Frontier: states discovered *two* levels out. With asynchronous
    /// termination detection a fast worker can already be expanding
    /// level `d + 1` (shipping `d + 2` successors) while this shard's
    /// owner is still draining its level-`d` wind-down; routing those
    /// early arrivals by depth keeps the level discipline exact. Senders
    /// can never run more than one level ahead (the next decision waits
    /// for this worker's arrival), so two out-queues suffice.
    nextnext: Vec<(St, u32)>,
}

impl<St> ShardData<St> {
    fn new(compact: bool) -> Self {
        Self {
            store: if compact { StateStore::compact() } else { StateStore::new() },
            depth: Vec::new(),
            parents: Vec::new(),
            labels: Vec::new(),
            flags: Vec::new(),
            cur: Vec::new(),
            next: Vec::new(),
            nextnext: Vec::new(),
        }
    }
}

/// One cross-shard successor candidate. The encoded bytes live in the
/// carrying [`Batch`]'s arena (`enc_start..enc_end`) so the receiver
/// never re-encodes.
struct Item<St> {
    hash: u64,
    depth: u32,
    src: u64,
    label: Option<Label>,
    state: St,
    enc_start: u32,
    enc_end: u32,
}

/// A batch of cross-shard candidates plus one shared byte arena for
/// their encodings: two allocations per `batch` states, not two per
/// state.
struct Batch<St> {
    items: Vec<Item<St>>,
    bytes: Vec<u8>,
}

impl<St> Batch<St> {
    fn with_capacity(n: usize) -> Self {
        Self { items: Vec::with_capacity(n), bytes: Vec::new() }
    }
}

/// Per-worker counters on their own cache line, written only by the
/// owning worker (batched, relaxed) and summed by readers (the
/// per-level decision, heartbeats, the final report) — no line all
/// workers fight over.
#[repr(align(64))]
#[derive(Default)]
struct Counters {
    states: AtomicUsize,
    transitions: AtomicUsize,
    /// States discovered for the level being built (reset by `decide`).
    next: AtomicUsize,
    /// Monotone: states ever enqueued on a frontier.
    frontier_in: AtomicUsize,
    /// Monotone: frontier states expanded.
    frontier_out: AtomicUsize,
    /// Absolute byte footprint of this worker's shard stores, published
    /// once per level boundary (not a per-insert delta — keeping the
    /// running tally off the per-successor path).
    bytes: AtomicUsize,
    /// Monotone: cross-worker batches this worker has shipped. Final by
    /// the time the worker arrives at the level boundary — termination
    /// detection sums these once per level.
    sent: AtomicU64,
    /// Monotone: cross-worker batches this worker has fully consumed
    /// (items inserted *and* local tallies flushed before the bump, so a
    /// quiescent `recv == sent` proves the decider sees exact totals).
    recv: AtomicU64,
}

/// Worker-private tallies, flushed into the shared [`Counters`] cell at
/// batch granularity (every drained batch, every 1024 expansions, and at
/// each level boundary) so the per-item hot path touches no shared
/// memory at all. The level decision runs only after every worker has
/// arrived and every batch has been consumed — the arrival and `recv`
/// bumps order every flush before every read.
#[derive(Default)]
struct LocalCounts {
    states: usize,
    transitions: usize,
    next: usize,
    frontier_in: usize,
    frontier_out: usize,
}

/// A violation observed during the sweep; the engine finishes the level,
/// then the minimal one (by `(depth, encoded state, kind)`) wins.
struct Violation {
    depth: u32,
    enc: Vec<u8>,
    rank: u8,
    outcome: Outcome,
    /// Reference of the state the trail should lead to.
    state_ref: u64,
}

const DECIDE_CONTINUE: u8 = 0;
const DECIDE_STOP: u8 = 1;

/// The spin → yield → sleep wait ladder shared by every engine wait
/// loop: stragglers get the core on oversubscribed hosts instead of
/// fighting our spin.
fn backoff(idle: u32) {
    if idle < 16 {
        std::hint::spin_loop();
    } else if idle < 64 {
        std::thread::yield_now();
    } else {
        std::thread::sleep(Duration::from_micros(50));
    }
}

/// Pre-created metric handles so the worker paths that record (batch
/// flush/drain, the per-level decision) touch only the atomic cells —
/// never the registry's name map — and compile to a single branch on a
/// null registry.
struct EngineMetrics {
    /// Cross-worker successor batches pushed (timing-dependent).
    batches_flushed: ccr_metrics::Counter,
    /// Cross-worker successor batches consumed (timing-dependent).
    batches_drained: ccr_metrics::Counter,
    /// States per fully built BFS level (deterministic: the search is
    /// level-synchronized).
    level_frontier: ccr_metrics::Histogram,
}

impl EngineMetrics {
    fn new(reg: &Registry) -> Self {
        Self {
            batches_flushed: reg
                .counter_nondet("mc_batches_flushed_total", "Cross-worker successor batches sent"),
            batches_drained: reg.counter_nondet(
                "mc_batches_drained_total",
                "Cross-worker successor batches consumed",
            ),
            level_frontier: reg.histogram(
                "mc_level_frontier",
                "States discovered per BFS level",
                crate::search::LEVEL_FRONTIER_BOUNDS,
            ),
        }
    }
}

/// Everything the workers share by reference.
pub(crate) struct Engine<'e, T: TransitionSystem, F, G> {
    sys: &'e T,
    budget: &'e Budget,
    invariant: &'e F,
    is_progress: Option<&'e G>,
    check_deadlock: bool,
    cfg: &'e ParallelConfig,
    n_shards: usize,
    pub(crate) stripes: Vec<Mutex<ShardData<T::State>>>,
    inboxes: Vec<SegQueue<Batch<T::State>>>,
    pub(crate) started: Instant,
    // Asynchronous termination detection (no barriers): workers arriving
    // at a level boundary bump `arrivals`; the last one becomes the
    // level's *decider*, waits for message quiescence (every shipped
    // batch consumed, per the `Counters::sent`/`recv` sums), takes the
    // global decision and publishes it by bumping `epoch`. Everyone else
    // keeps draining their inbox until they observe the bump.
    arrivals: AtomicUsize,
    epoch: AtomicUsize,
    /// Per-shard `(owner, local stripe index)` routing table. One L1-hot
    /// load on the per-successor path instead of two integer divisions
    /// (`shard % threads`, `shard / threads`).
    route: Vec<(u32, u32)>,
    /// Checkpoint rendezvous: workers that have synced their shards and
    /// published cursors count themselves in; the decider writes the
    /// manifest once all have, then bumps `epoch` a second time.
    ckpt_done: AtomicUsize,
    counters: Vec<Counters>,
    pub(crate) peak_frontier: AtomicUsize,
    pub(crate) level: AtomicUsize,
    decision: AtomicU8,
    stop_mid_level: AtomicBool,
    finished: AtomicBool,
    /// Completion signal for the pump thread: `decide` flips the flag and
    /// notifies, so [`run`] returns as soon as the last level ends instead
    /// of sleeping out a poll quantum (which used to bill up to 100 ms of
    /// dead wait to every parallel measurement).
    finish_mutex: Mutex<bool>,
    finish_cv: Condvar,
    violations: Mutex<Vec<Violation>>,
    pub(crate) budget_hit: AtomicBool,
    metrics: EngineMetrics,
    profiler: Profiler,
    /// Checkpointing state shared by the workers; `None` runs the engine
    /// purely in memory.
    persist: Option<&'e EnginePersist>,
    /// Whether the frontier and counters were restored from a manifest
    /// (set by [`Engine::attach_persist`]); a resumed run skips seeding
    /// and never tracks trails — the recovered states carry no parent
    /// pointers.
    resumed: bool,
}

impl<'e, T, F, G> Engine<'e, T, F, G>
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
    G: Fn(&Label) -> bool + Sync,
{
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        sys: &'e T,
        budget: &'e Budget,
        invariant: &'e F,
        is_progress: Option<&'e G>,
        check_deadlock: bool,
        cfg: &'e ParallelConfig,
        reg: &Registry,
        prof: &Profiler,
    ) -> Self {
        let n_shards = cfg.shard_count();
        let threads = cfg.threads.max(1);
        Self {
            sys,
            budget,
            invariant,
            is_progress,
            check_deadlock,
            cfg,
            n_shards,
            stripes: (0..n_shards).map(|_| Mutex::new(ShardData::new(cfg.compact_hash))).collect(),
            inboxes: (0..threads).map(|_| SegQueue::new()).collect(),
            started: Instant::now(),
            arrivals: AtomicUsize::new(0),
            epoch: AtomicUsize::new(0),
            route: (0..n_shards).map(|s| ((s % threads) as u32, (s / threads) as u32)).collect(),
            ckpt_done: AtomicUsize::new(0),
            counters: (0..threads).map(|_| Counters::default()).collect(),
            peak_frontier: AtomicUsize::new(0),
            level: AtomicUsize::new(0),
            decision: AtomicU8::new(DECIDE_CONTINUE),
            stop_mid_level: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            finish_mutex: Mutex::new(false),
            finish_cv: Condvar::new(),
            violations: Mutex::new(Vec::new()),
            budget_hit: AtomicBool::new(false),
            metrics: EngineMetrics::new(reg),
            profiler: prof.clone(),
            persist: None,
            resumed: false,
        }
    }

    fn shard_of(&self, hash: u64) -> usize {
        ((hash >> 48) as usize) & (self.n_shards - 1)
    }

    fn owner_of(&self, shard: usize) -> usize {
        shard % self.cfg.threads.max(1)
    }

    fn track_trails(&self) -> bool {
        (self.cfg.track_trails && !self.resumed) || self.is_progress.is_some()
    }

    pub(crate) fn states_total(&self) -> usize {
        self.counters.iter().map(|c| c.states.load(Relaxed)).sum()
    }

    pub(crate) fn transitions_total(&self) -> usize {
        self.counters.iter().map(|c| c.transitions.load(Relaxed)).sum()
    }

    fn bytes_total(&self) -> usize {
        self.counters.iter().map(|c| c.bytes.load(Relaxed)).sum()
    }

    fn frontier_len(&self) -> usize {
        let inn: usize = self.counters.iter().map(|c| c.frontier_in.load(Relaxed)).sum();
        let out: usize = self.counters.iter().map(|c| c.frontier_out.load(Relaxed)).sum();
        inn.saturating_sub(out)
    }

    fn record_violation(&self, v: Violation) {
        self.violations.lock().expect("violations").push(v);
    }

    /// Inserts a candidate into `sh`, its (already locked) shard stripe.
    /// The invariant runs on newly inserted states; violations are
    /// recorded and the level is finished, never expanded past.
    /// `expected` is the owner's next-level depth: candidates one level
    /// beyond it (early arrivals from a worker already expanding the
    /// next level) are queued in `nextnext` instead of `next`.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn insert(
        &self,
        sh: &mut ShardData<T::State>,
        shard: usize,
        hash: u64,
        enc: &[u8],
        state: T::State,
        depth: u32,
        expected: u32,
        src: u64,
        label: Option<Label>,
        edges: &mut Vec<(u64, u64)>,
        local: &mut LocalCounts,
    ) {
        let (idx, is_new) = sh.store.insert_hashed_depth(hash, enc, depth);
        if is_new {
            self.record_new(sh, shard, idx, enc, state, depth, expected, src, label, local);
        }
        if self.is_progress.is_some() {
            edges.push((pack(shard, idx), src));
        }
    }

    /// Bookkeeping for a *newly inserted* state: depth/trail/flag rows,
    /// counters, invariant, and frontier routing. Split from the
    /// duplicate probe so the hot path moves `state` across a call
    /// boundary only for the minority of candidates that are actually
    /// new.
    #[allow(clippy::too_many_arguments)]
    fn record_new(
        &self,
        sh: &mut ShardData<T::State>,
        shard: usize,
        idx: u32,
        enc: &[u8],
        state: T::State,
        depth: u32,
        expected: u32,
        src: u64,
        label: Option<Label>,
        local: &mut LocalCounts,
    ) {
        if let Some(p) = self.persist {
            p.crash.tick();
        }
        sh.depth.push(depth);
        if self.track_trails() {
            sh.parents.push(src);
            sh.labels
                .push(label.unwrap_or_else(|| Label::new(ProcessId::Home, LabelKind::Tau, "?")));
        }
        if self.is_progress.is_some() {
            sh.flags.push(0);
        }
        local.states += 1;
        local.next += 1;
        local.frontier_in += 1;
        if let Some(desc) = (self.invariant)(&state) {
            self.record_violation(Violation {
                depth,
                enc: enc.to_vec(),
                rank: 0,
                outcome: Outcome::InvariantViolated(desc),
                state_ref: pack(shard, idx),
            });
        }
        debug_assert!(depth == expected || depth == expected + 1);
        if depth > expected {
            sh.nextnext.push((state, idx));
        } else {
            sh.next.push((state, idx));
        }
    }

    /// Drains one batch from `w`'s inbox, if any. `guards` are the
    /// worker's held stripes (position `s / threads` for shard `s`).
    /// Returns the number of items processed (0: no batch was pending;
    /// flushed batches are never empty).
    ///
    /// Fully consuming a batch — inserts done, local tallies flushed —
    /// is published by a `Release` bump of the worker's `recv` counter,
    /// so a decider that observes `recv == sent` (`Acquire`) sees every
    /// insertion and every count the batch produced.
    fn drain_one(
        &self,
        w: usize,
        expected: u32,
        guards: &mut [MutexGuard<'_, ShardData<T::State>>],
        edges: &mut Vec<(u64, u64)>,
        local: &mut LocalCounts,
        timer: &mut ccr_metrics::profile::SpanTimer,
    ) -> usize {
        let Some(batch) = self.inboxes[w].pop() else {
            return 0;
        };
        timer.lap(SpanKind::Drain, 1);
        let n_items = batch.items.len();
        for item in batch.items {
            let shard = self.shard_of(item.hash);
            let (owner, li) = self.route[shard];
            debug_assert_eq!(owner as usize, w);
            let enc = &batch.bytes[item.enc_start as usize..item.enc_end as usize];
            self.insert(
                &mut guards[li as usize],
                shard,
                item.hash,
                enc,
                item.state,
                item.depth,
                expected,
                item.src,
                item.label,
                edges,
                local,
            );
        }
        timer.lap(SpanKind::Insert, n_items as u64);
        self.flush_counts(w, local);
        self.counters[w].recv.fetch_add(1, Release);
        self.metrics.batches_drained.inc();
        n_items
    }

    /// Publishes worker-private tallies into the worker's shared cell.
    fn flush_counts(&self, w: usize, local: &mut LocalCounts) {
        let c = &self.counters[w];
        c.states.fetch_add(local.states, Relaxed);
        c.transitions.fetch_add(local.transitions, Relaxed);
        c.next.fetch_add(local.next, Relaxed);
        c.frontier_in.fetch_add(local.frontier_in, Relaxed);
        c.frontier_out.fetch_add(local.frontier_out, Relaxed);
        *local = LocalCounts::default();
    }

    /// Ships worker `w`'s non-empty outbox to `dest`'s inbox. Returns
    /// whether a batch was actually sent.
    fn flush(&self, w: usize, dest: usize, outbox: &mut Batch<T::State>) -> bool {
        if outbox.items.is_empty() {
            return false;
        }
        // Relaxed suffices: the decider only reads `sent` totals after
        // every worker's level arrival, whose `AcqRel` bump of
        // `arrivals` orders all earlier sends before the read.
        self.counters[w].sent.fetch_add(1, Relaxed);
        self.metrics.batches_flushed.inc();
        self.inboxes[dest].push(Batch {
            items: std::mem::take(&mut outbox.items),
            bytes: std::mem::take(&mut outbox.bytes),
        });
        true
    }

    /// Mid-level abort checks: wall clock, and a safety valve for levels
    /// that blow far past the state budget.
    fn check_mid_level_abort(&self) {
        let timed_out = self.budget.max_time.map(|t| self.started.elapsed() >= t).unwrap_or(false);
        let blown = self.states_total() >= self.budget.max_states.saturating_mul(2);
        if timed_out || blown {
            self.stop_mid_level.store(true, SeqCst);
            self.budget_hit.store(true, SeqCst);
        }
    }

    /// The worker body: expand, exchange, synchronize — once per level
    /// until the leader decides to stop. Returns the worker's edge list
    /// (progress mode; empty otherwise).
    fn worker(&self, w: usize) -> Vec<(u64, u64)> {
        let threads = self.cfg.threads.max(1);
        let trails = self.track_trails();
        let owned: Vec<usize> = (0..self.n_shards).filter(|s| self.owner_of(*s) == w).collect();
        // Hold every owned stripe for the worker's whole lifetime.
        // Stripes are strictly owner-accessed while workers are live
        // (seeding happens before the scope, trail reconstruction and
        // the progress sweep after it), so the locks exist to satisfy
        // the type system, not to arbitrate — taking them once turns
        // every insert into a plain `&mut` field access. Shard `s` sits
        // at `guards[s / threads]` because `owned` ascends in steps of
        // `threads` from `w`.
        let mut guards: Vec<MutexGuard<'_, ShardData<T::State>>> =
            owned.iter().map(|&s| self.stripes[s].lock().expect("stripe")).collect();
        let mut local = LocalCounts::default();
        let mut enc: Vec<u8> = Vec::new();
        let mut succs: Vec<(Label, T::State)> = Vec::new();
        let mut edges: Vec<(u64, u64)> = Vec::new();
        let mut outboxes: Vec<Batch<T::State>> =
            (0..threads).map(|_| Batch::with_capacity(self.cfg.batch)).collect();
        let mut taken: Vec<(T::State, u32)> = Vec::new();
        let mut timer = self.profiler.worker(w);
        // Zero-copy successor path: systems with an encoding bound are
        // encoded exactly once into this fixed scratch slot — hashed and
        // (for local inserts) committed straight from it, copied only
        // into the outbox when the successor belongs to another worker.
        let fast_cap = self.sys.max_encoded_len();
        let mut scratch: Vec<u8> = vec![0; fast_cap.unwrap_or(0)];
        // The worker's view of the level epoch; the decider's bump past
        // this value publishes the level decision (and, on checkpoint
        // levels, the manifest commit).
        let mut seen_epoch = 0usize;

        // Injected stall (CI watchdog exercise): park before the first
        // expansion so the pump thread sees no forward progress while
        // the run is demonstrably alive.
        if self.cfg.stall_ms > 0 {
            std::thread::sleep(Duration::from_millis(self.cfg.stall_ms));
        }

        loop {
            let depth = self.level.load(SeqCst) as u32;
            timer.set_level(depth);
            timer.mark();
            // Expand phase: all owned shards' current level.
            for (li, &s) in owned.iter().enumerate() {
                std::mem::swap(&mut taken, &mut guards[li].cur);
                let mut i = 0;
                while i < taken.len() {
                    if i & 0x3f == 0x3f {
                        // Periodic duties off the per-item path: keep the
                        // inbox short while other workers expand, check
                        // the wall clock, publish counters.
                        self.drain_one(
                            w,
                            depth + 1,
                            &mut guards,
                            &mut edges,
                            &mut local,
                            &mut timer,
                        );
                        if i & 0x3ff == 0x3ff {
                            self.flush_counts(w, &mut local);
                            self.check_mid_level_abort();
                        }
                        if self.stop_mid_level.load(SeqCst) {
                            // Wall-clock abort: put the unexpanded tail
                            // back so progress mode never judges an
                            // unexpanded state.
                            let tail: Vec<_> = taken.drain(i..).collect();
                            guards[li].cur.extend(tail);
                            break;
                        }
                    }
                    let (state, idx) = &taken[i];
                    let src = pack(s, *idx);
                    local.frontier_out += 1;
                    if let Err(e) = self.sys.successors(state, &mut succs) {
                        if self.is_progress.is_some() {
                            // Judged like the serial checker: expanded,
                            // no successors recorded.
                            guards[li].flags[*idx as usize] |= FLAG_EXPANDED;
                        }
                        self.sys.encode(state, &mut enc);
                        self.record_violation(Violation {
                            depth,
                            enc: enc.clone(),
                            rank: 2,
                            outcome: Outcome::RuntimeFailure(e),
                            state_ref: src,
                        });
                        i += 1;
                        continue;
                    }
                    timer.lap(SpanKind::Compute, 1);
                    local.transitions += succs.len();
                    if self.is_progress.is_some() {
                        let mut bits = FLAG_EXPANDED;
                        if !succs.is_empty() {
                            bits |= FLAG_HAS_SUCC;
                        }
                        if let Some(isp) = self.is_progress {
                            if succs.iter().any(|(l, _)| isp(l)) {
                                bits |= FLAG_PROGRESS;
                            }
                        }
                        guards[li].flags[*idx as usize] |= bits;
                    }
                    if self.check_deadlock && succs.is_empty() {
                        self.sys.encode(state, &mut enc);
                        self.record_violation(Violation {
                            depth,
                            enc: enc.clone(),
                            rank: 1,
                            outcome: Outcome::Deadlock,
                            state_ref: src,
                        });
                        i += 1;
                        continue;
                    }
                    let mut n_remote = 0u64;
                    for (label, next) in succs.drain(..) {
                        // Encode once: into the fixed scratch slot on the
                        // fast path, into the growable Vec otherwise.
                        let bytes: &[u8] = if fast_cap.is_some() {
                            let n = self.sys.encode_into(&next, &mut scratch);
                            &scratch[..n]
                        } else {
                            self.sys.encode(&next, &mut enc);
                            &enc
                        };
                        let hash = hash_encoded(bytes);
                        let shard = self.shard_of(hash);
                        let (dest, li) = self.route[shard];
                        let dest = dest as usize;
                        let label = trails.then_some(label);
                        if dest == w {
                            timer.lap(SpanKind::Encode, 1);
                            // Probe first: only genuinely new states pay
                            // the bookkeeping call (and the state move).
                            let sh = &mut guards[li as usize];
                            let (idx, is_new) =
                                sh.store.insert_hashed_depth(hash, bytes, depth + 1);
                            if is_new {
                                self.record_new(
                                    sh,
                                    shard,
                                    idx,
                                    bytes,
                                    next,
                                    depth + 1,
                                    depth + 1,
                                    src,
                                    label,
                                    &mut local,
                                );
                            }
                            if self.is_progress.is_some() {
                                edges.push((pack(shard, idx), src));
                            }
                            timer.lap(SpanKind::Insert, 1);
                        } else {
                            n_remote += 1;
                            let out = &mut outboxes[dest];
                            let enc_start = out.bytes.len() as u32;
                            out.bytes.extend_from_slice(bytes);
                            let enc_end = out.bytes.len() as u32;
                            out.items.push(Item {
                                hash,
                                depth: depth + 1,
                                src,
                                label,
                                state: next,
                                enc_start,
                                enc_end,
                            });
                            if out.items.len() >= self.cfg.batch {
                                // Close the encode interval first so the
                                // handoff alone is charged to `ship`.
                                timer.lap(SpanKind::Encode, n_remote);
                                n_remote = 0;
                                self.flush(w, dest, &mut outboxes[dest]);
                                timer.lap(SpanKind::Ship, 1);
                            }
                        }
                    }
                    if n_remote > 0 {
                        timer.lap(SpanKind::Encode, n_remote);
                    }
                    i += 1;
                }
                taken.clear();
            }
            let mut shipped = 0u64;
            for (dest, out) in outboxes.iter_mut().enumerate() {
                if dest != w && self.flush(w, dest, out) {
                    shipped += 1;
                }
            }
            if shipped > 0 {
                timer.lap(SpanKind::Ship, shipped);
            }
            // Publish before arriving: the decider reads totals only
            // after every worker has arrived and every batch has been
            // consumed, so it sees exact per-level counts.
            self.flush_counts(w, &mut local);
            // Byte footprint is published as an absolute once per level
            // (64 store sums, not one `approx_bytes` call per insert).
            // Late inserts drained below only grow it, so the budget
            // check reads an under- by at most one level's worth.
            let bytes: usize = guards.iter().map(|g| g.store.approx_bytes()).sum();
            self.counters[w].bytes.store(bytes, Relaxed);
            // Export sticky tier I/O errors before the decision — the
            // decider cannot read our stripes, so the shared error slot
            // is how a failed writer stops the run.
            if let Some(p) = self.persist {
                for g in guards.iter_mut() {
                    if let Some(tier) = g.store.tier_mut() {
                        if let Some(e) = tier.take_err() {
                            p.set_error(e);
                        }
                    }
                }
            }
            // Level boundary, asynchronously: the last worker to arrive
            // is the decider. All sends are final here (flushed above,
            // before the `AcqRel` arrival bump), so the level is over
            // exactly when every shipped batch has been consumed —
            // which the non-deciders keep working towards by draining
            // their inboxes while they wait for the epoch to move. Back
            // off from yielding to sleeping so stragglers get the core
            // on oversubscribed hosts instead of fighting our spin.
            let am_decider = self.arrivals.fetch_add(1, AcqRel) + 1 == threads;
            if am_decider {
                let sent: u64 = self.counters.iter().map(|c| c.sent.load(Relaxed)).sum();
                let mut idle = 0u32;
                loop {
                    if self.drain_one(w, depth + 1, &mut guards, &mut edges, &mut local, &mut timer)
                        > 0
                    {
                        idle = 0;
                        continue;
                    }
                    let recv: u64 = self.counters.iter().map(|c| c.recv.load(Acquire)).sum();
                    if recv == sent {
                        break;
                    }
                    idle += 1;
                    backoff(idle);
                }
                self.decide();
                // Reset the arrival count *before* releasing the epoch:
                // no worker starts the next level (and so can re-arrive)
                // until it observes the bump.
                self.arrivals.store(0, Relaxed);
                self.epoch.fetch_add(1, Release);
            } else {
                let mut idle = 0u32;
                while self.epoch.load(Acquire) == seen_epoch {
                    if self.drain_one(w, depth + 1, &mut guards, &mut edges, &mut local, &mut timer)
                        > 0
                    {
                        idle = 0;
                        continue;
                    }
                    idle += 1;
                    backoff(idle);
                }
            }
            seen_epoch += 1;
            if self.decision.load(SeqCst) == DECIDE_STOP {
                timer.lap(SpanKind::BarrierWait, 1);
                return edges;
            }
            for g in guards.iter_mut() {
                let sh = &mut **g;
                debug_assert!(sh.cur.is_empty());
                std::mem::swap(&mut sh.cur, &mut sh.next);
                std::mem::swap(&mut sh.next, &mut sh.nextnext);
            }
            if let Some(p) = self.persist {
                // The flag is set by the decider before the epoch bump
                // and cleared only after every worker has counted itself
                // into `ckpt_done`, so all workers agree on whether this
                // level checkpoints (and on the extra epoch bump).
                if p.ckpt_flag.load(SeqCst) {
                    timer.lap(SpanKind::BarrierWait, 0);
                    // Each worker commits its own shards: sync the log,
                    // rewrite the index, publish the committed cursor.
                    for (li, &s) in owned.iter().enumerate() {
                        if let Some(tier) = guards[li].store.tier_mut() {
                            let (bytes, records) = tier.sync();
                            tier.write_idx(&p.dir.idx(s));
                            if let Some(e) = tier.take_err() {
                                // Keep the previous committed cursor: the
                                // old prefix is still valid, the run stops
                                // at the next decision.
                                p.set_error(e);
                            } else {
                                p.committed[s].0.store(bytes, SeqCst);
                                p.committed[s].1.store(records, SeqCst);
                            }
                        }
                    }
                    timer.lap(SpanKind::Checkpoint, 1);
                    self.ckpt_done.fetch_add(1, Release);
                    if am_decider {
                        // Every shard's cursor must be published before
                        // the manifest that references them is written;
                        // nobody appends past the synced cursors until
                        // the second bump says the manifest hit disk.
                        let mut idle = 0u32;
                        while self.ckpt_done.load(Acquire) != threads {
                            idle += 1;
                            backoff(idle);
                        }
                        if let Err(e) = p.write_manifest(self.started, false, None) {
                            p.set_error(e);
                        }
                        p.ckpt_flag.store(false, SeqCst);
                        self.ckpt_done.store(0, Relaxed);
                        self.epoch.fetch_add(1, Release);
                    } else {
                        let mut idle = 0u32;
                        while self.epoch.load(Acquire) == seen_epoch {
                            idle += 1;
                            backoff(idle);
                        }
                    }
                    seen_epoch += 1;
                }
            }
            timer.lap(SpanKind::BarrierWait, 1);
        }
    }

    /// The per-level global decision, taken by the level's decider (the
    /// last worker to arrive) once the level is message-quiescent: every
    /// shipped batch consumed and every worker's tallies flushed, so the
    /// sums below are exact.
    fn decide(&self) {
        let next: usize = self.counters.iter().map(|c| c.next.swap(0, Relaxed)).sum();
        self.peak_frontier.fetch_max(next, SeqCst);
        if next > 0 {
            self.metrics.level_frontier.observe(next as u64);
        }
        let states = self.states_total();
        let bytes = self.bytes_total();
        let has_violation = !self.violations.lock().expect("violations").is_empty();
        let persist_err =
            self.persist.is_some_and(|p| p.error.lock().expect("persist error").is_some());
        let timed_out = self.budget.max_time.map(|t| self.started.elapsed() >= t).unwrap_or(false);
        let over_budget = states >= self.budget.max_states || bytes >= self.budget.max_bytes;
        let stop = if persist_err || has_violation {
            true
        } else if over_budget || timed_out || self.stop_mid_level.load(SeqCst) {
            self.budget_hit.store(true, SeqCst);
            true
        } else if next == 0 {
            true
        } else {
            let new_level = self.level.fetch_add(1, SeqCst) + 1;
            // Arm a checkpoint while every other worker is parked: the
            // counters are exact for the level boundary, and the frontier
            // the manifest will describe is exactly the states at
            // `new_level` — all inserted, none expanded.
            if let Some(p) = self.persist {
                if p.ckpt_due() {
                    *p.snapshot.lock().expect("ckpt snapshot") = CkptCounts {
                        states: states as u64,
                        transitions: self.transitions_total() as u64,
                        peak: self.peak_frontier.load(SeqCst).max(1) as u64,
                        level: new_level as u64,
                    };
                    p.ckpt_flag.store(true, SeqCst);
                }
            }
            false
        };
        self.decision.store(if stop { DECIDE_STOP } else { DECIDE_CONTINUE }, SeqCst);
        if stop {
            self.finished.store(true, SeqCst);
            *self.finish_mutex.lock().expect("finish") = true;
            self.finish_cv.notify_all();
        }
    }

    /// Seeds the initial state (mirroring the serial engine: the state is
    /// stored before its invariant runs). Returns the violation outcome
    /// when the invariant already fails there.
    fn seed(&self) -> Option<Outcome> {
        let init = self.sys.initial();
        let mut enc = Vec::new();
        self.sys.encode(&init, &mut enc);
        let hash = hash_encoded(&enc);
        let shard = self.shard_of(hash);
        {
            let mut sh = self.stripes[shard].lock().expect("stripe");
            let (idx, is_new) = sh.store.insert_hashed(hash, &enc);
            debug_assert!(is_new);
            sh.depth.push(0);
            if self.track_trails() {
                sh.parents.push(ROOT);
                sh.labels.push(Label::new(ProcessId::Home, LabelKind::Tau, "init"));
            }
            if self.is_progress.is_some() {
                sh.flags.push(0);
            }
            let b = sh.store.approx_bytes();
            sh.cur.push((init.clone(), idx));
            self.counters[0].bytes.fetch_add(b, Relaxed);
        }
        self.counters[0].states.fetch_add(1, Relaxed);
        self.counters[0].frontier_in.fetch_add(1, Relaxed);
        self.peak_frontier.fetch_max(1, SeqCst);
        self.metrics.level_frontier.observe(1);
        (self.invariant)(&init).map(Outcome::InvariantViolated)
    }

    /// Picks the winning violation: minimal `(depth, encoded state,
    /// kind)`, a total order independent of thread interleavings.
    fn winning_violation(&self) -> Option<Violation> {
        let mut vs = self.violations.lock().expect("violations");
        if vs.is_empty() {
            return None;
        }
        let best = vs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.depth.cmp(&b.depth).then(a.enc.cmp(&b.enc)).then(a.rank.cmp(&b.rank))
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        Some(vs.swap_remove(best))
    }

    /// Reconstructs the label trail to `state_ref` by walking parent
    /// pointers across shards (single-threaded; workers have exited).
    pub(crate) fn trail_to(&self, state_ref: u64) -> Vec<Label> {
        let mut labels = Vec::new();
        let mut cur = state_ref;
        while cur != ROOT {
            let (shard, idx) = unpack(cur);
            let sh = self.stripes[shard].lock().expect("stripe");
            let parent = sh.parents[idx as usize];
            if parent != ROOT {
                labels.push(sh.labels[idx as usize].clone());
            }
            cur = parent;
        }
        labels.reverse();
        labels
    }

    pub(crate) fn store_bytes(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().expect("stripe").store.approx_bytes()).sum()
    }

    /// Wires a persistence context into the engine before any worker
    /// spawns: every shard store gets its disk tier (fresh, or recovered
    /// from the committed log prefix), and on resume the frontier —
    /// every recovered state at the manifest's level — and the counters
    /// are restored so the run continues exactly where the checkpoint
    /// cut it.
    pub(crate) fn attach_persist(&mut self, p: &'e ParallelPersist) -> PResult<()> {
        let keep = p.eng.evict_per_shard == 0;
        match &p.resume {
            Some(rs) => {
                let mut frontier_total = 0usize;
                let mut bytes_total = 0usize;
                for s in 0..self.n_shards {
                    let mut guard = self.stripes[s].lock().expect("stripe");
                    let sh = &mut *guard;
                    let (bytes, records) = rs.committed[s];
                    let tier = LogTier::recover(
                        p.eng.dir.log(s),
                        &p.eng.dir.idx(s),
                        Some(bytes),
                        p.eng.evict_per_shard,
                        !keep,
                        |rec, payload| {
                            sh.store.rebuild_insert(rec.hash, payload.filter(|_| keep), rec.len);
                            sh.depth.push(rec.depth);
                        },
                    )?;
                    if tier.records() as u64 != records {
                        return Err(PersistError::new(
                            p.eng.dir.log(s),
                            format!(
                                "log holds {} committed records, manifest says {records}",
                                tier.records()
                            ),
                        ));
                    }
                    sh.store.attach_tier(Box::new(tier));
                    for i in 0..sh.store.len() as u32 {
                        if u64::from(sh.depth[i as usize]) != rs.level {
                            continue;
                        }
                        let enc = sh.store.read_entry(i).ok_or_else(|| {
                            PersistError::new(
                                p.eng.dir.log(s),
                                format!("cannot read recovered state {i} back"),
                            )
                        })?;
                        let state = self.sys.decode(&enc).ok_or_else(|| {
                            PersistError::new(
                                p.eng.dir.log(s),
                                format!("recovered state {i} does not decode for this system"),
                            )
                        })?;
                        sh.cur.push((state, i));
                        frontier_total += 1;
                    }
                    bytes_total += sh.store.approx_bytes();
                    p.eng.committed[s].0.store(bytes, SeqCst);
                    p.eng.committed[s].1.store(records, SeqCst);
                }
                self.counters[0].states.store(rs.states as usize, Relaxed);
                self.counters[0].transitions.store(rs.transitions as usize, Relaxed);
                self.counters[0].frontier_in.store(frontier_total, Relaxed);
                self.counters[0].bytes.store(bytes_total, Relaxed);
                self.peak_frontier.store(rs.peak as usize, SeqCst);
                self.level.store(rs.level as usize, SeqCst);
                self.resumed = true;
            }
            None => {
                for s in 0..self.n_shards {
                    let mut sh = self.stripes[s].lock().expect("stripe");
                    let tier = LogTier::create(p.eng.dir.log(s), p.eng.evict_per_shard)?;
                    sh.store.attach_tier(Box::new(tier));
                }
            }
        }
        self.persist = Some(&p.eng);
        Ok(())
    }
}

/// Counters frozen at the level boundary a checkpoint describes; the
/// manifest writer must not re-read the live counters, which other
/// workers may already be advancing.
#[derive(Debug, Clone, Copy, Default)]
struct CkptCounts {
    states: u64,
    transitions: u64,
    peak: u64,
    level: u64,
}

/// The persistence state the workers coordinate through: checkpoint
/// arming, per-shard committed cursors, the frozen counter snapshot,
/// and the first I/O error (which stops the run at the next level
/// decision).
pub(crate) struct EnginePersist {
    dir: PhaseDir,
    writer: ManifestWriter,
    interval: Duration,
    crash: CrashSwitch,
    elapsed_base: Duration,
    evict_per_shard: usize,
    threads: usize,
    ckpt_flag: AtomicBool,
    last_ckpt: Mutex<Instant>,
    /// Per shard: `(bytes, records)` of the last synced log prefix.
    committed: Vec<(AtomicU64, AtomicU64)>,
    snapshot: Mutex<CkptCounts>,
    error: Mutex<Option<PersistError>>,
    /// Manifests written (mid-run and terminal), for the stats report.
    ckpts: AtomicU64,
}

impl EnginePersist {
    /// Records the first persistence error; later ones are dropped (they
    /// are almost always consequences of the first).
    fn set_error(&self, e: PersistError) {
        self.error.lock().expect("persist error").get_or_insert(e);
    }

    /// Whether the wall-clock cadence calls for a checkpoint (leader
    /// only, between the decision barriers).
    fn ckpt_due(&self) -> bool {
        if self.interval.is_zero() {
            return true;
        }
        let mut last = self.last_ckpt.lock().expect("last ckpt");
        if last.elapsed() >= self.interval {
            *last = Instant::now();
            true
        } else {
            false
        }
    }

    /// Atomically replaces the manifest from the frozen snapshot and the
    /// published per-shard cursors.
    fn write_manifest(
        &self,
        started: Instant,
        finished: bool,
        outcome: Option<&Outcome>,
    ) -> PResult<()> {
        let snap = *self.snapshot.lock().expect("ckpt snapshot");
        let committed: Vec<(u64, u64)> =
            self.committed.iter().map(|(b, r)| (b.load(SeqCst), r.load(SeqCst))).collect();
        let mut m = Manifest {
            kind: "parallel".to_string(),
            finished,
            outcome_name: outcome.map(|o| o.name().to_string()),
            outcome_detail: outcome.and_then(Outcome::detail),
            states: snap.states,
            transitions: snap.transitions,
            peak_frontier: snap.peak,
            elapsed_ms: (self.elapsed_base + started.elapsed()).as_millis() as u64,
            head: 0,
            level: snap.level,
            threads: self.threads as u64,
            shards: committed.len() as u64,
            committed,
            evict: self.evict_per_shard > 0,
            ..Manifest::default()
        };
        self.writer.write(&mut m)?;
        self.ckpts.fetch_add(1, SeqCst);
        Ok(())
    }

    /// Committed (synced) log bytes summed over shards, for telemetry.
    fn committed_bytes(&self) -> u64 {
        self.committed.iter().map(|(b, _)| b.load(SeqCst)).sum()
    }

    /// Manifests written so far, for telemetry.
    fn checkpoints(&self) -> u64 {
        self.ckpts.load(SeqCst)
    }
}

/// Frontier and counters of the manifest a resumed run continues from.
struct ResumeData {
    level: u64,
    states: u64,
    transitions: u64,
    peak: u64,
    committed: Vec<(u64, u64)>,
}

/// Result of opening a parallel persistence directory: either a context
/// to run with, or the terminal manifest of a phase that already
/// finished.
pub enum ParallelPersistOpen {
    /// Run (fresh or resumed) with this context.
    Run(Box<ParallelPersist>),
    /// A prior run already finished with this manifest.
    Finished(Manifest),
}

/// Parallel-engine persistence: the phase directory (one log + index
/// per shard), its writer lock, and the shared worker-coordination
/// state. Checkpoints land at level boundaries — the natural
/// determinism cut of a level-synchronized search — so a resumed run
/// reproduces the uninterrupted run's counts and outcome exactly, at
/// any thread count (the shard count must match; it fixes the
/// state-to-log mapping).
pub struct ParallelPersist {
    eng: EnginePersist,
    _lock: LockGuard,
    resume: Option<ResumeData>,
}

impl ParallelPersist {
    /// Opens (or creates) the phase directory at `root`, acquiring the
    /// writer lock. With [`PersistOpts::resume`] and an existing
    /// manifest every shard log is recovered to its committed prefix; a
    /// finished manifest returns [`ParallelPersistOpen::Finished`]
    /// instead. Without `resume` any stale files are wiped. The byte
    /// budget `opts.evict_at` is split evenly across the shards.
    pub fn open(
        root: &Path,
        opts: &PersistOpts,
        cfg: &ParallelConfig,
    ) -> PResult<ParallelPersistOpen> {
        let shards = cfg.shard_count();
        let dir = PhaseDir::create(root, shards)?;
        let lock = LockGuard::acquire(dir.lock())?;
        let prior = if opts.resume { Manifest::read(&dir.manifest())? } else { None };
        let (resume, elapsed_base, seq0) = match prior {
            Some(m) if m.finished => return Ok(ParallelPersistOpen::Finished(m)),
            Some(m) => {
                if m.kind != "parallel" {
                    return Err(PersistError::new(
                        dir.manifest(),
                        format!("manifest kind `{}`, expected `parallel`", m.kind),
                    ));
                }
                if m.shards as usize != shards || m.committed.len() != shards {
                    return Err(PersistError::new(
                        dir.manifest(),
                        format!(
                            "checkpoint used {} shards, this run {shards}: the shard count \
                             fixes the state-to-log mapping and cannot change across a resume",
                            m.shards
                        ),
                    ));
                }
                (
                    Some(ResumeData {
                        level: m.level,
                        states: m.states,
                        transitions: m.transitions,
                        peak: m.peak_frontier,
                        committed: m.committed.clone(),
                    }),
                    Duration::from_millis(m.elapsed_ms),
                    m.seq,
                )
            }
            None => {
                dir.wipe()?;
                (None, Duration::ZERO, 0)
            }
        };
        let evict_per_shard = if opts.evict_at == 0 { 0 } else { (opts.evict_at / shards).max(1) };
        let writer = ManifestWriter::create(dir.manifest(), seq0);
        Ok(ParallelPersistOpen::Run(Box::new(ParallelPersist {
            eng: EnginePersist {
                dir,
                writer,
                interval: opts.interval,
                crash: opts.crash.clone(),
                elapsed_base,
                evict_per_shard,
                threads: cfg.threads.max(1),
                ckpt_flag: AtomicBool::new(false),
                last_ckpt: Mutex::new(Instant::now()),
                committed: (0..shards).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect(),
                snapshot: Mutex::new(CkptCounts::default()),
                error: Mutex::new(None),
                ckpts: AtomicU64::new(0),
            },
            _lock: lock,
            resume,
        })))
    }

    /// Search time accumulated by prior runs of this phase.
    pub fn elapsed_base(&self) -> Duration {
        self.eng.elapsed_base
    }

    /// Concludes a finished run (workers have exited, stripes are free):
    /// syncs every shard tier, writes the terminal manifest and folds
    /// the tier counters into `reg`. Any persistence error — sticky from
    /// the run or fresh from this final sync — replaces the outcome with
    /// [`Outcome::PersistFailure`] and leaves the last mid-run manifest
    /// in place, so the phase stays resumable.
    fn conclude<T, F, G>(&self, engine: &Engine<'_, T, F, G>, outcome: &mut Outcome, reg: &Registry)
    where
        T: TransitionSystem + Sync,
        T::State: Send,
        F: Fn(&T::State) -> Option<String> + Sync,
        G: Fn(&Label) -> bool + Sync,
    {
        let mut stats = crate::persist::PersistStats::default();
        let mut err: Option<PersistError> = self.eng.error.lock().expect("persist error").take();
        for s in 0..self.eng.committed.len() {
            let mut sh = engine.stripes[s].lock().expect("stripe");
            if let Some(tier) = sh.store.tier_mut() {
                let (bytes, records) = tier.sync();
                tier.write_idx(&self.eng.dir.idx(s));
                if let Some(e) = tier.take_err() {
                    err.get_or_insert(e);
                } else {
                    self.eng.committed[s].0.store(bytes, SeqCst);
                    self.eng.committed[s].1.store(records, SeqCst);
                }
                stats.merge(&tier.stats());
            }
        }
        *self.eng.snapshot.lock().expect("ckpt snapshot") = CkptCounts {
            states: engine.states_total() as u64,
            transitions: engine.transitions_total() as u64,
            peak: engine.peak_frontier.load(SeqCst).max(1) as u64,
            level: engine.level.load(SeqCst) as u64,
        };
        if err.is_none() {
            if let Err(e) = self.eng.write_manifest(engine.started, true, Some(outcome)) {
                err = Some(e);
            }
        }
        if let Some(e) = err {
            if !matches!(outcome, Outcome::PersistFailure(_)) {
                *outcome = Outcome::PersistFailure(e.to_string());
            }
        }
        stats.checkpoints += self.eng.ckpts.load(SeqCst);
        stats.publish(reg);
    }
}

/// Runs the engine to completion: seeds, spawns the scoped workers,
/// pumps heartbeats from the calling thread, classifies the outcome and
/// reconstructs the trail. Returns `(outcome, trail, edges)`; the caller
/// reads counters off the engine. Shared by the explore and progress
/// entry points.
pub(crate) fn run<T, F, G>(
    engine: &Engine<'_, T, F, G>,
    obs: &mut SearchObserver<'_>,
) -> (Outcome, Option<Vec<Label>>, Vec<(u64, u64)>)
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
    G: Fn(&Label) -> bool + Sync,
{
    let reg = obs.metrics().clone();
    if engine.resumed {
        // The frontier and counters were restored from the manifest by
        // `attach_persist`; re-seeding would double-count the root.
    } else if let Some(v) = engine.seed() {
        record_parallel_run(engine, &reg);
        return (v, engine.track_trails().then(Vec::new), Vec::new());
    }
    let threads = engine.cfg.threads.max(1);
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let quantum = obs.interval().min(Duration::from_millis(100)).max(Duration::from_millis(1));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|w| scope.spawn(move || engine.worker(w))).collect();
        // Pump heartbeats until the last level's decision flips the
        // completion flag: a timed condvar wait, so the run returns the
        // moment the workers finish instead of after a poll quantum.
        loop {
            let finished = {
                let done = engine.finish_mutex.lock().expect("finish");
                if *done {
                    true
                } else {
                    let (done, _) = engine.finish_cv.wait_timeout(done, quantum).expect("finish");
                    *done
                }
            };
            if finished {
                break;
            }
            // Refresh the diagnostics the flight recorder snapshots on
            // this tick: termination epoch, inbox depths, and (when the
            // run persists) the committed spill volume. Cheap atomic
            // reads, and only taken when something will consume them.
            if obs.timeline().enabled() {
                let queues: Vec<u64> = engine.inboxes.iter().map(|q| q.len() as u64).collect();
                obs.set_engine_diag(Some(engine.epoch.load(Acquire) as u64), &queues);
                if let Some(p) = engine.persist {
                    obs.set_persist_gauges(p.committed_bytes(), 0, p.checkpoints());
                }
            }
            obs.tick_paced(
                engine.states_total(),
                engine.frontier_len(),
                engine.bytes_total(),
                Some(engine.transitions_total() as u64),
                Some(engine.level.load(SeqCst) as u64),
            );
        }
        for h in handles {
            let mut worker_edges = h.join().expect("worker panicked");
            edges.append(&mut worker_edges);
        }
    });
    record_parallel_run(engine, &reg);
    match engine.winning_violation() {
        Some(v) => {
            let trail = engine.track_trails().then(|| engine.trail_to(v.state_ref));
            (v.outcome, trail, edges)
        }
        None if engine.budget_hit.load(SeqCst) => (Outcome::Unfinished, None, edges),
        None => (Outcome::Complete, None, edges),
    }
}

/// Folds one finished parallel run into `reg`: the shared serial/parallel
/// totals (`mc_runs_total`, `mc_states_total`, `mc_transitions_total`,
/// peak frontier, store bytes — see
/// [`crate::search::record_run_totals`]) plus the parallel-only level
/// count, worker-width gauge, and per-stripe store-shape histograms.
/// Called exactly once per run, from [`run`], so every parallel entry
/// point (explore, traced, progress, fault-mode) records the same way.
fn record_parallel_run<T, F, G>(engine: &Engine<'_, T, F, G>, reg: &Registry)
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
    G: Fn(&Label) -> bool + Sync,
{
    if !reg.enabled() {
        return;
    }
    crate::search::record_run_totals(
        reg,
        engine.states_total(),
        engine.transitions_total(),
        engine.peak_frontier.load(SeqCst).max(1),
        engine.store_bytes(),
    );
    reg.counter("mc_levels_total", "BFS levels fully expanded, summed over parallel runs")
        .add(engine.level.load(SeqCst) as u64);
    reg.gauge_nondet("mc_workers", "Worker threads used by the widest parallel run")
        .record_max(engine.cfg.threads.max(1) as u64);
    for stripe in &engine.stripes {
        let sh = stripe.lock().expect("stripe");
        crate::search::record_store_shape(reg, &sh.store);
    }
}

/// Explores the reachable state space of `sys` breadth-first with
/// `cfg.threads` workers over `cfg.shards` lock-striped shards. Semantics
/// match [`crate::search::explore`]; see the module docs for the exact
/// determinism guarantees.
pub fn explore_parallel<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    explore_parallel_observed(sys, budget, invariant, check_deadlock, cfg, &mut obs)
}

/// The shared body of the two observed entry points: build the engine
/// (no progress judging), run it to completion, assemble the report.
fn run_assembled<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: &F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let engine: Engine<'_, T, F, fn(&Label) -> bool> = Engine::new(
        sys,
        budget,
        invariant,
        None,
        check_deadlock,
        cfg,
        obs.metrics(),
        obs.profiler(),
    );
    let (outcome, trail, _) = run(&engine, obs);
    assemble(&engine, cfg, outcome, trail)
}

/// [`explore_parallel`] with heartbeats: the calling thread aggregates
/// worker counters into [`SearchObserver`] ticks while the workers run.
pub fn explore_parallel_observed<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let report = run_assembled(sys, budget, &invariant, check_deadlock, cfg, obs);
    obs.finish(&report.outcome, None);
    report
}

/// [`explore_parallel_observed`] with the serial traced-export behavior
/// of [`crate::trace::explore_traced_observed`]: trails are always
/// tracked, and on a violation the counterexample is exported to the
/// observer's sink as a replayed event stream ending with the outcome
/// (instead of the bare outcome event).
pub fn explore_parallel_traced_observed<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let cfg = cfg.clone().with_trails();
    let report = run_assembled(sys, budget, &invariant, check_deadlock, &cfg, obs);
    crate::trace::conclude_with_trail(sys, &report.outcome, report.trail.as_deref(), obs);
    report
}

/// The persist analog of [`run_assembled`]: attach the tiers (recovering
/// on resume), run, write the terminal manifest.
fn run_assembled_persist<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: &F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
    persist: &ParallelPersist,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let mut engine: Engine<'_, T, F, fn(&Label) -> bool> = Engine::new(
        sys,
        budget,
        invariant,
        None,
        check_deadlock,
        cfg,
        obs.metrics(),
        obs.profiler(),
    );
    if let Err(e) = engine.attach_persist(persist) {
        return ParallelReport {
            states: 0,
            transitions: 0,
            elapsed: Duration::ZERO,
            store_bytes: 0,
            peak_frontier: 0,
            outcome: Outcome::PersistFailure(e.to_string()),
            depth: 0,
            threads: cfg.threads.max(1),
            shards: cfg.shard_count(),
            probabilistic: cfg.compact_hash,
            trail: None,
        };
    }
    let (mut outcome, trail, _) = run(&engine, obs);
    persist.conclude(&engine, &mut outcome, obs.metrics());
    let mut report = assemble(&engine, cfg, outcome, trail);
    report.elapsed += persist.elapsed_base();
    report
}

/// [`explore_parallel_observed`] with persistence: every shard's visited
/// set is backed by an on-disk log (optionally spilling state bytes once
/// the RAM budget is crossed), the search checkpoints at level
/// boundaries, and with [`PersistOpts::resume`] a killed run continues
/// from its last manifest — reproducing the uninterrupted run's counts
/// and outcome exactly.
pub fn explore_parallel_observed_persist<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
    persist: &ParallelPersist,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let report = run_assembled_persist(sys, budget, &invariant, check_deadlock, cfg, obs, persist);
    obs.finish(&report.outcome, None);
    report
}

/// [`explore_parallel_traced_observed`] with persistence. Resumed runs
/// report `trail: None`: the recovered states carry no parent pointers,
/// so a counterexample cannot be reconstructed across the crash (the
/// violation itself is still found and reported deterministically).
pub fn explore_parallel_traced_observed_persist<T, F>(
    sys: &T,
    budget: &Budget,
    invariant: F,
    check_deadlock: bool,
    cfg: &ParallelConfig,
    obs: &mut SearchObserver<'_>,
    persist: &ParallelPersist,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
{
    let cfg = cfg.clone().with_trails();
    let report = run_assembled_persist(sys, budget, &invariant, check_deadlock, &cfg, obs, persist);
    crate::trace::conclude_with_trail(sys, &report.outcome, report.trail.as_deref(), obs);
    report
}

fn assemble<T, F, G>(
    engine: &Engine<'_, T, F, G>,
    cfg: &ParallelConfig,
    outcome: Outcome,
    trail: Option<Vec<Label>>,
) -> ParallelReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
    F: Fn(&T::State) -> Option<String> + Sync,
    G: Fn(&Label) -> bool + Sync,
{
    ParallelReport {
        states: engine.states_total(),
        transitions: engine.transitions_total(),
        elapsed: engine.started.elapsed(),
        store_bytes: engine.store_bytes(),
        peak_frontier: engine.peak_frontier.load(SeqCst).max(1),
        outcome,
        depth: engine.level.load(SeqCst),
        threads: cfg.threads.max(1),
        shards: engine.n_shards,
        probabilistic: cfg.compact_hash,
        trail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{explore, explore_plain};
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;
    use ccr_core::ids::RemoteId;
    use ccr_core::value::Value;
    use ccr_runtime::rendezvous::RendezvousSystem;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    fn deadlocking_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        b.finish().unwrap()
    }

    #[test]
    fn matches_serial_on_complete_spaces() {
        let spec = token_spec();
        for n in [1u32, 2, 3, 4] {
            let sys = RendezvousSystem::new(&spec, n);
            let serial = explore_plain(&sys, &Budget::default());
            for threads in [1usize, 2, 4] {
                let cfg = ParallelConfig::threads(threads);
                let par = explore_parallel(&sys, &Budget::default(), |_| None, false, &cfg);
                assert_eq!(par.outcome, Outcome::Complete, "n={n} t={threads}");
                assert_eq!(par.states, serial.states, "n={n} t={threads}");
                assert_eq!(par.transitions, serial.transitions, "n={n} t={threads}");
            }
        }
    }

    #[test]
    fn deterministic_across_thread_counts_on_deadlock() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let serial = explore(&sys, &Budget::default(), |_| None, true);
        assert_eq!(serial.outcome, Outcome::Deadlock);
        let mut reference: Option<(usize, usize, usize)> = None;
        for threads in [1usize, 2, 4] {
            let cfg = ParallelConfig::threads(threads).with_trails();
            let par = explore_parallel(&sys, &Budget::default(), |_| None, true, &cfg);
            assert_eq!(par.outcome, Outcome::Deadlock, "t={threads}");
            let key = (par.states, par.transitions, par.trail.as_ref().unwrap().len());
            match &reference {
                None => reference = Some(key),
                Some(r) => assert_eq!(&key, r, "t={threads}"),
            }
        }
    }

    #[test]
    fn deadlock_trail_replays() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let cfg = ParallelConfig::threads(4).with_trails();
        let par = explore_parallel(&sys, &Budget::default(), |_| None, true, &cfg);
        assert_eq!(par.outcome, Outcome::Deadlock);
        let trail = par.trail.clone().expect("trail");
        let end = crate::trace::replay_trail(&sys, &trail).expect("trail replays");
        let mut succs = Vec::new();
        sys.successors(&end, &mut succs).unwrap();
        assert!(succs.is_empty(), "trail must end in the deadlocked state");
        assert!(par.trail_text().contains("rendezvous"));
    }

    #[test]
    fn invariant_violation_found_and_trail_replays() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let v = spec.remote.state_by_name("V").unwrap();
        let cfg = ParallelConfig::threads(3).with_trails();
        let par = explore_parallel(
            &sys,
            &Budget::default(),
            |s: &ccr_runtime::rendezvous::RvState| {
                if s.remotes.iter().any(|r| r.state == v) {
                    Some("a remote reached V".into())
                } else {
                    None
                }
            },
            false,
            &cfg,
        );
        assert!(matches!(par.outcome, Outcome::InvariantViolated(_)));
        let trail = par.trail.clone().expect("trail");
        let end = crate::trace::replay_trail(&sys, &trail).expect("trail replays");
        assert!(end.remotes.iter().any(|r| r.state == v));
    }

    #[test]
    fn violated_initial_state_reports_like_serial() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let cfg = ParallelConfig::threads(2).with_trails();
        let par =
            explore_parallel(&sys, &Budget::default(), |_| Some("always".into()), false, &cfg);
        assert!(matches!(par.outcome, Outcome::InvariantViolated(_)));
        assert_eq!(par.states, 1);
        assert_eq!(par.trail.as_deref(), Some(&[][..]));
    }

    #[test]
    fn state_budget_stops_at_a_level_boundary() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let full = explore_plain(&sys, &Budget::default());
        let cfg = ParallelConfig::threads(2);
        let par = explore_parallel(&sys, &Budget::states(3), |_| None, false, &cfg);
        assert_eq!(par.outcome, Outcome::Unfinished);
        assert!(par.states >= 3 && par.states < full.states);
        let tiny = explore_parallel(&sys, &Budget::bytes(64), |_| None, false, &cfg);
        assert_eq!(tiny.outcome, Outcome::Unfinished);
    }

    #[test]
    fn compact_mode_is_flagged_probabilistic_and_agrees_here() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let exact = explore_plain(&sys, &Budget::default());
        let cfg = ParallelConfig::threads(2).with_compaction();
        let par = explore_parallel(&sys, &Budget::default(), |_| None, false, &cfg);
        assert!(par.probabilistic);
        assert!(par.explore_report().probabilistic);
        // No 64-bit collisions in a space this small: counts agree.
        assert_eq!(par.states, exact.states);
        // Dropping the arena makes the store strictly smaller than the
        // exact parallel store under the same sharding.
        let full = explore_parallel(
            &sys,
            &Budget::default(),
            |_| None,
            false,
            &ParallelConfig::threads(2),
        );
        assert!(!full.probabilistic);
        assert!(par.store_bytes < full.store_bytes);
    }

    #[test]
    fn metrics_deterministic_counters_match_serial_at_any_thread_count() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let snap_for = |threads: Option<usize>| {
            let reg = ccr_metrics::Registry::new();
            let mut null = NullSink;
            let mut obs = SearchObserver::with_metrics(&mut null, reg.clone());
            match threads {
                None => {
                    crate::search::explore_observed(
                        &sys,
                        &Budget::default(),
                        |_| None,
                        false,
                        &mut obs,
                    );
                }
                Some(t) => {
                    explore_parallel_observed(
                        &sys,
                        &Budget::default(),
                        |_| None,
                        false,
                        &ParallelConfig::threads(t),
                        &mut obs,
                    );
                }
            }
            reg.snapshot()
        };
        let serial = snap_for(None);
        let par: Vec<_> = [1usize, 2, 4].iter().map(|&t| snap_for(Some(t))).collect();
        for p in &par {
            // The shared serial/parallel counters agree exactly.
            for name in ["mc_runs_total", "mc_states_total", "mc_transitions_total"] {
                assert_eq!(serial.counters[name], p.counters[name], "{name}");
            }
            // The encoded-length histogram is a multiset property of the
            // reachable set: identical whatever engine visited it.
            assert_eq!(
                serial.histograms["mc_state_bytes"].counts,
                p.histograms["mc_state_bytes"].counts
            );
            // Timing-dependent metrics are tagged as such.
            for name in ["mc_batches_flushed_total", "mc_batches_drained_total", "mc_workers"] {
                assert!(p.nondeterministic.contains(&name.to_string()), "{name}");
            }
        }
        // The deterministic view is byte-identical across thread counts.
        let views: Vec<String> = par.iter().map(|p| p.deterministic().to_json()).collect();
        assert_eq!(views[0], views[1]);
        assert_eq!(views[1], views[2]);
    }

    fn persist_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ccr-par-persist-{tag}-{}", std::process::id()))
    }

    fn open_par(
        root: &Path,
        opts: &crate::search::PersistOpts,
        cfg: &ParallelConfig,
    ) -> ParallelPersist {
        match ParallelPersist::open(root, opts, cfg).expect("open") {
            ParallelPersistOpen::Run(p) => *p,
            ParallelPersistOpen::Finished(_) => panic!("unexpected finished manifest"),
        }
    }

    #[test]
    fn parallel_persisted_run_matches_plain() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let plain = explore_plain(&sys, &Budget::default());
        let root = persist_dir("match");
        for threads in [1usize, 4] {
            for evict in [0usize, 2048] {
                let cfg = ParallelConfig::threads(threads);
                let opts = crate::search::PersistOpts {
                    interval: Duration::ZERO,
                    evict_at: evict,
                    ..Default::default()
                };
                let persist = open_par(&root, &opts, &cfg);
                let mut null = NullSink;
                let mut obs = SearchObserver::new(&mut null);
                let par = explore_parallel_observed_persist(
                    &sys,
                    &Budget::default(),
                    |_| None,
                    false,
                    &cfg,
                    &mut obs,
                    &persist,
                );
                assert_eq!(par.outcome, Outcome::Complete, "t={threads} evict={evict}");
                assert_eq!(par.states, plain.states, "t={threads} evict={evict}");
                assert_eq!(par.transitions, plain.transitions, "t={threads} evict={evict}");
                drop(persist);
                std::fs::remove_dir_all(&root).unwrap();
            }
        }
    }

    #[test]
    fn parallel_finished_manifest_restores_counts() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let plain = explore_plain(&sys, &Budget::default());
        let root = persist_dir("finished");
        let cfg = ParallelConfig::threads(2);
        let opts = crate::search::PersistOpts { interval: Duration::ZERO, ..Default::default() };
        let persist = open_par(&root, &opts, &cfg);
        let mut null = NullSink;
        let mut obs = SearchObserver::new(&mut null);
        explore_parallel_observed_persist(
            &sys,
            &Budget::default(),
            |_| None,
            false,
            &cfg,
            &mut obs,
            &persist,
        );
        drop(persist);
        let reopen = crate::search::PersistOpts { resume: true, ..opts };
        match ParallelPersist::open(&root, &reopen, &cfg).expect("reopen") {
            ParallelPersistOpen::Finished(m) => {
                assert!(m.finished);
                assert_eq!(m.states as usize, plain.states);
                assert_eq!(m.transitions as usize, plain.transitions);
                let report = crate::search::report_from_manifest(&m);
                assert_eq!(report.outcome, Outcome::Complete);
            }
            ParallelPersistOpen::Run(_) => panic!("expected a finished manifest"),
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn parallel_resume_from_mid_run_checkpoint_reproduces_counts() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 4);
        let plain = explore_plain(&sys, &Budget::default());
        for (crash_threads, resume_threads, evict) in
            [(1usize, 4usize, 0usize), (4, 4, 0), (4, 1, 2048)]
        {
            let root = persist_dir(&format!("resume-{crash_threads}-{resume_threads}-{evict}"));
            let opts = crate::search::PersistOpts {
                interval: Duration::ZERO,
                evict_at: evict,
                ..Default::default()
            };
            // First leg: run under a state budget that stops mid-space,
            // then drop WITHOUT a terminal manifest — simulating a kill
            // after the last level-boundary checkpoint.
            {
                let cfg = ParallelConfig::threads(crash_threads);
                let persist = open_par(&root, &opts, &cfg);
                let mut null = NullSink;
                let mut obs = SearchObserver::new(&mut null);
                let inv = |_: &ccr_runtime::rendezvous::RvState| None;
                let budget = Budget::states(plain.states / 2);
                let mut engine: Engine<'_, _, _, fn(&Label) -> bool> = Engine::new(
                    &sys,
                    &budget,
                    &inv,
                    None,
                    false,
                    &cfg,
                    obs.metrics(),
                    obs.profiler(),
                );
                engine.attach_persist(&persist).expect("attach");
                let (outcome, _, _) = run(&engine, &mut obs);
                assert_eq!(outcome, Outcome::Unfinished);
            }
            // Second leg: resume with a full budget finishes the space
            // with exactly the uninterrupted counts.
            let cfg = ParallelConfig::threads(resume_threads);
            let reopen = crate::search::PersistOpts { resume: true, ..opts };
            let persist = open_par(&root, &reopen, &cfg);
            let mut null = NullSink;
            let mut obs = SearchObserver::new(&mut null);
            let par = explore_parallel_observed_persist(
                &sys,
                &Budget::default(),
                |_| None,
                false,
                &cfg,
                &mut obs,
                &persist,
            );
            assert_eq!(par.outcome, Outcome::Complete, "evict={evict}");
            assert_eq!(par.states, plain.states, "evict={evict}");
            assert_eq!(par.transitions, plain.transitions, "evict={evict}");
            drop(persist);
            std::fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn parallel_resume_refuses_a_changed_shard_count() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let root = persist_dir("shards");
        let cfg = ParallelConfig { threads: 2, shards: 8, ..ParallelConfig::default() };
        let opts = crate::search::PersistOpts { interval: Duration::ZERO, ..Default::default() };
        let persist = open_par(&root, &opts, &cfg);
        let mut null = NullSink;
        let mut obs = SearchObserver::new(&mut null);
        let inv = |_: &ccr_runtime::rendezvous::RvState| None;
        let budget = Budget::states(4);
        let mut engine: Engine<'_, _, _, fn(&Label) -> bool> =
            Engine::new(&sys, &budget, &inv, None, false, &cfg, obs.metrics(), obs.profiler());
        engine.attach_persist(&persist).expect("attach");
        let _ = run(&engine, &mut obs);
        drop(engine);
        drop(persist);
        let other = ParallelConfig { threads: 2, shards: 16, ..ParallelConfig::default() };
        let reopen = crate::search::PersistOpts { resume: true, ..opts };
        let err = match ParallelPersist::open(&root, &reopen, &other) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("shard-count change must be refused"),
        };
        assert!(err.contains("shard count"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn single_shard_config_still_works() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 2);
        let serial = explore_plain(&sys, &Budget::default());
        let cfg = ParallelConfig { threads: 2, shards: 1, ..ParallelConfig::default() };
        let par = explore_parallel(&sys, &Budget::default(), |_| None, false, &cfg);
        assert_eq!(par.states, serial.states);
        assert_eq!(par.transitions, serial.transitions);
        assert!(par.shards >= 2, "shards round up to cover the workers");
    }
}
