//! Symmetry reduction over the identical-remotes permutation group.
//!
//! Every protocol in the paper runs on a star topology: one home node and
//! `N` *interchangeable* remotes. Renaming the remotes by any permutation
//! `π` maps reachable states to reachable states and violations to
//! violations, so the reachable space splits into orbits of up to `N!`
//! equivalent states — and it suffices to explore one representative per
//! orbit. This module picks that representative *canonically*: the orbit
//! member with the lexicographically least [`TransitionSystem::encode`]
//! bytes.
//!
//! The [`Reduced`] wrapper plugs the reduction in under every engine at
//! once. Engines identify states solely through `encode` (the serial
//! [`crate::search::drive`], the parallel engine's shard hashing, the
//! progress checkers' CSR indices); `Reduced` delegates everything except
//! `encode`, which it redirects to the canonical representative's bytes.
//! Frontier states stay *concrete* (the first-discovered member of each
//! orbit), and recorded labels are real transitions fired from those
//! concrete states — so counterexample trails are genuine executions that
//! replay on the unreduced system, with no witness-permutation
//! bookkeeping. Sharding in the parallel engine hashes the canonical
//! bytes, so shard assignment is permutation-independent and the level
//! counts stay deterministic across thread counts.
//!
//! Orbit enumeration is `argmin` over *sorting permutations*: each remote
//! gets an id-independent signature (its local slice with `self`/`other`
//! node references abstracted), candidates are exactly the permutations
//! that sort the signature sequence, and the least encoding among them is
//! canonical. Equal signatures expand into all their orderings, so the
//! candidate count is `Π gᵢ!` over signature-group sizes — worst case
//! `N!` for a fully symmetric state, typically 1–2 once the protocol
//! breaks symmetry. See `docs/symmetry.md` for the soundness argument and
//! the fault-mode interaction (scripted per-link faults break symmetry;
//! `--symmetry auto` falls back to `off`).

use ccr_core::ids::RemoteId;
use ccr_core::ids::{MsgType, ProcessId};
use ccr_core::process::{CommAction, Peer, Process, ProtocolSpec};
use ccr_core::value::{Env, Value};
use ccr_metrics::Registry;
use ccr_runtime::asynch::{AsyncState, AsyncSystem, BufEntry, HomePhase, HomeState, RemoteState};
use ccr_runtime::rendezvous::{Local, RendezvousSystem, RvState};
use ccr_runtime::wire::{Link, Wire};
use ccr_runtime::{Label, TransitionSystem};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// A transition system whose state carries `remote_count()` interchangeable
/// per-remote components, acted on by the symmetric group: `permute`
/// renames the remotes and `signature` produces an id-independent
/// discriminator for one remote's slice.
///
/// The contract both implementations uphold (and the proptests check):
///
/// * **Action**: `permute(s, π)` relabels every remote-indexed component
///   and every remote-valued datum (`Value::Node`, `Value::Mask` bits,
///   buffer senders, `Awaiting` targets, link endpoints) by `π`, where
///   `π[i] = j` sends old remote `i` to new slot `j`. It is a group
///   action: permuting by `π` then `σ` equals permuting by `σ∘π`.
/// * **Equivariance**: `signature(permute(s, π), π[i]) == signature(s, i)`
///   — the signature never mentions a concrete remote id, only *self* /
///   *other* relationships, so it is constant along the orbit.
pub trait Symmetric: TransitionSystem {
    /// Number of remote processes in every state of this system.
    fn remote_count(&self) -> usize;

    /// Whether the remotes really are interchangeable: true iff every
    /// transition expression of the underlying protocol is equivariant
    /// (see [`spec_permutable`]). When this is false, permutations are
    /// *not* automorphisms of the transition graph and [`Reduced`]
    /// degrades to the identity — reduction of an asymmetric protocol
    /// would merge states with genuinely different futures.
    fn permutable(&self) -> bool;

    /// Applies the remote permutation `perm` (`perm[i]` = new index of old
    /// remote `i`) to `s`, producing the relabelled sibling state.
    fn permute(&self, s: &Self::State, perm: &[usize]) -> Self::State;

    /// Appends an id-independent signature of remote `i`'s slice of `s`
    /// to `out` (which is *not* cleared). Equal signatures mark remotes
    /// that are possibly interchangeable in `s`.
    fn signature(&self, s: &Self::State, i: usize, out: &mut Vec<u8>);
}

/// True when every branch of `p` (guard, peer designator, payload,
/// assignment right-hand sides) is equivariant under remote renaming.
fn process_permutable(p: &Process) -> bool {
    p.states.iter().flat_map(|st| &st.branches).all(|br| {
        let action_ok = match &br.action {
            CommAction::Send { to, payload, .. } => {
                let peer_ok = match to {
                    Peer::Remote(e) => e.is_equivariant(),
                    Peer::Home | Peer::AnyRemote { .. } => true,
                };
                peer_ok && payload.as_ref().is_none_or(|e| e.is_equivariant())
            }
            CommAction::Recv { from, .. } => match from {
                Peer::Remote(e) => e.is_equivariant(),
                Peer::Home | Peer::AnyRemote { .. } => true,
            },
            CommAction::Tau => true,
        };
        action_ok
            && br.guard.as_ref().is_none_or(|e| e.is_equivariant())
            && br.assigns.iter().all(|(_, e)| e.is_equivariant())
    })
}

/// The scalarset check: true when the spec's remotes are genuinely
/// interchangeable, i.e. no transition expression of either process
/// distinguishes remotes by their *number* — no `first(mask)` (which
/// picks the lowest-numbered member) and no literal naming a specific
/// node or non-empty node set. Initial variable values are exempt: they
/// fix one concrete initial state but do not shape the transition
/// *relation*, which is all an automorphism cares about.
///
/// Of the shipped specs, `invalidate.ccp` and `update.ccp` use
/// `first(...)` to walk their sharer sets in index order and are
/// therefore not reducible; the migratory family and `token.ccp` are.
pub fn spec_permutable(spec: &ProtocolSpec) -> bool {
    process_permutable(&spec.home) && process_permutable(&spec.remote)
}

/// Bit mask of the low `n` bits, saturating at all-ones for `n >= 64`.
fn low_bits(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Relabels one value under a remote permutation: node identities move to
/// their new index, mask bits below the remote count are permuted (higher
/// bits pass through), everything else is untouched.
fn permute_value(v: Value, perm: &[usize]) -> Value {
    let n = perm.len();
    match v {
        Value::Node(r) if r.index() < n => Value::Node(RemoteId(perm[r.index()] as u32)),
        Value::Mask(m) => {
            let low = low_bits(n);
            let mut out = m & !low;
            for (b, &p) in perm.iter().enumerate() {
                if m & (1u64 << b) != 0 {
                    out |= 1u64 << p;
                }
            }
            Value::Mask(out)
        }
        other => other,
    }
}

/// Relabels every slot of an environment under a remote permutation.
fn permute_env(env: &Env, perm: &[usize]) -> Env {
    Env::new(env.values().map(|v| permute_value(v, perm)).collect())
}

/// Id-independent signature bytes of a value *owned by* remote `i`: node
/// references collapse to self/other markers and masks to (self-bit,
/// other-popcount), so the bytes are identical for every remote whose
/// slice looks the same up to renaming.
fn signature_value(v: Value, i: usize, n: usize, out: &mut Vec<u8>) {
    match v {
        Value::Node(r) if r.index() < n => {
            out.push(4);
            out.push(if r.index() == i { 0xFF } else { 0xFE });
        }
        Value::Mask(m) => {
            let low = low_bits(n);
            out.push(5);
            out.push(((m >> i) & 1) as u8);
            out.push(((m & low) & !(1u64 << i)).count_ones() as u8);
            out.extend_from_slice(&(m & !low).to_le_bytes());
        }
        other => other.encode(out),
    }
}

/// Signature bytes of how a *home-owned* value relates to remote `i`:
/// does it name `i`, another remote, or no remote at all. Pure relation,
/// no identity — equivariant by construction.
fn signature_home_ref(v: Value, i: usize, n: usize, out: &mut Vec<u8>) {
    match v {
        Value::Node(r) if r.index() < n => out.push(if r.index() == i { 1 } else { 2 }),
        Value::Mask(m) => {
            out.push(3);
            out.push(((m >> i) & 1) as u8);
        }
        _ => out.push(0),
    }
}

/// Signature bytes of one wire message travelling to or from remote `i`.
fn signature_wire(w: &Wire, i: usize, n: usize, out: &mut Vec<u8>) {
    match w {
        Wire::Req { msg, val } => {
            out.push(1);
            out.push(msg.0 as u8);
            match val {
                Some(v) => {
                    out.push(1);
                    signature_value(*v, i, n, out);
                }
                None => out.push(0),
            }
        }
        Wire::Ack => out.push(2),
        Wire::Nack => out.push(3),
    }
}

impl Symmetric for RendezvousSystem<'_> {
    fn remote_count(&self) -> usize {
        self.n() as usize
    }

    fn permutable(&self) -> bool {
        spec_permutable(self.spec())
    }

    fn permute(&self, s: &RvState, perm: &[usize]) -> RvState {
        let mut remotes = s.remotes.clone();
        for (i, r) in s.remotes.iter().enumerate() {
            remotes[perm[i]] = Local { state: r.state, env: permute_env(&r.env, perm) };
        }
        RvState {
            home: Local { state: s.home.state, env: permute_env(&s.home.env, perm) },
            remotes,
        }
    }

    fn signature(&self, s: &RvState, i: usize, out: &mut Vec<u8>) {
        let n = s.remotes.len();
        let r = &s.remotes[i];
        out.extend_from_slice(&(r.state.0 as u16).to_le_bytes());
        for v in r.env.values() {
            signature_value(v, i, n, out);
        }
        for v in s.home.env.values() {
            signature_home_ref(v, i, n, out);
        }
    }
}

impl Symmetric for AsyncSystem<'_> {
    fn remote_count(&self) -> usize {
        self.n() as usize
    }

    fn permutable(&self) -> bool {
        spec_permutable(self.spec())
    }

    fn permute(&self, s: &AsyncState, perm: &[usize]) -> AsyncState {
        let mut remotes = s.remotes.clone();
        let mut to_home = s.to_home.clone();
        let mut to_remote = s.to_remote.clone();
        for (i, r) in s.remotes.iter().enumerate() {
            remotes[perm[i]] = RemoteState {
                phase: r.phase,
                env: permute_env(&r.env, perm),
                buf: r.buf.map(|(m, v)| (m, v.map(|v| permute_value(v, perm)))),
            };
            to_home[perm[i]] = permute_link(&s.to_home[i], perm);
            to_remote[perm[i]] = permute_link(&s.to_remote[i], perm);
        }
        AsyncState {
            home: HomeState {
                phase: match s.home.phase {
                    HomePhase::At(st) => HomePhase::At(st),
                    HomePhase::Awaiting { state, branch, target } => HomePhase::Awaiting {
                        state,
                        branch,
                        target: RemoteId(perm[target.index()] as u32),
                    },
                },
                env: permute_env(&s.home.env, perm),
                // FIFO order is semantic (the C1 scan and victim-nack pick
                // by position), so entries keep their slots; only senders
                // and payloads are renamed.
                buf: s
                    .home
                    .buf
                    .iter()
                    .map(|e| BufEntry {
                        from: RemoteId(perm[e.from.index()] as u32),
                        msg: e.msg,
                        val: e.val.map(|v| permute_value(v, perm)),
                    })
                    .collect(),
                cursor: s.home.cursor,
            },
            remotes,
            to_home,
            to_remote,
        }
    }

    fn signature(&self, s: &AsyncState, i: usize, out: &mut Vec<u8>) {
        let n = s.remotes.len();
        let r = &s.remotes[i];
        match r.phase {
            ccr_runtime::asynch::RemotePhase::At(st) => {
                out.push(0);
                out.extend_from_slice(&(st.0 as u16).to_le_bytes());
            }
            ccr_runtime::asynch::RemotePhase::Awaiting { state, branch } => {
                out.push(1);
                out.extend_from_slice(&(state.0 as u16).to_le_bytes());
                out.push(branch as u8);
            }
        }
        for v in r.env.values() {
            signature_value(v, i, n, out);
        }
        match &r.buf {
            Some((m, v)) => {
                out.push(1);
                out.push(m.0 as u8);
                match v {
                    Some(v) => {
                        out.push(1);
                        signature_value(*v, i, n, out);
                    }
                    None => out.push(0),
                }
            }
            None => out.push(0),
        }
        // This remote's halves of the shared state: its two links, the
        // home-buffer entries it parked, and how the home's bookkeeping
        // refers to it.
        for link in [&s.to_home[i], &s.to_remote[i]] {
            out.push(link.len() as u8);
            for w in link.iter() {
                signature_wire(w, i, n, out);
            }
        }
        if let HomePhase::Awaiting { target, .. } = s.home.phase {
            out.push(if target.index() == i { 1 } else { 2 });
        } else {
            out.push(0);
        }
        for (pos, e) in s.home.buf.iter().enumerate() {
            if e.from.index() == i {
                out.push(pos as u8);
                out.push(e.msg.0 as u8);
                match e.val {
                    Some(v) => {
                        out.push(1);
                        signature_value(v, i, n, out);
                    }
                    None => out.push(0),
                }
            }
        }
        out.push(0xFD);
        for v in s.home.env.values() {
            signature_home_ref(v, i, n, out);
        }
    }
}

/// Rebuilds a link with every payload relabelled under `perm` (FIFO order
/// preserved — in-order delivery is semantic).
fn permute_link(link: &Link, perm: &[usize]) -> Link {
    let mut out = Link::new();
    for w in link.iter() {
        out.push(match w {
            Wire::Req { msg, val } => {
                Wire::Req { msg: *msg, val: val.map(|v| permute_value(v, perm)) }
            }
            other => *other,
        });
    }
    out
}

/// What one canonicalization observed, for the orbit metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrbitSample {
    /// Sorting permutations evaluated (1 when the signature sequence has
    /// no ties, up to `N!` for a fully symmetric state).
    pub candidates: u64,
    /// Whether the canonical encoding differs from the state's own — i.e.
    /// the state was not already its orbit representative.
    pub moved: bool,
}

/// Walks every permutation of `order` that keeps each equal-signature
/// group within its positions (groups are contiguous after the sort;
/// `group_end[pos]` is one past the group containing `pos`), converting
/// each ordering into an old-index → new-index `perm` for `f`.
fn for_each_sorting_perm(
    order: &mut [usize],
    group_end: &[usize],
    pos: usize,
    perm: &mut [usize],
    f: &mut impl FnMut(&[usize]),
) {
    if pos == order.len() {
        for (new_pos, &old) in order.iter().enumerate() {
            perm[old] = new_pos;
        }
        f(perm);
        return;
    }
    for k in pos..group_end[pos] {
        order.swap(pos, k);
        for_each_sorting_perm(order, group_end, pos + 1, perm, f);
        order.swap(pos, k);
    }
}

/// Encodes the canonical orbit representative of `s` into `out` (cleared
/// first, like [`TransitionSystem::encode`]) and reports what the search
/// over sorting permutations saw.
///
/// Soundness: signatures are equivariant, so the *set* of sorting
/// permutations applied to `s` yields the same candidate state-set for
/// every member of the orbit — and the minimum of a fixed set does not
/// depend on where you start. Idempotence follows because the identity
/// sorts the already-sorted canonical state, so `canon(canon(s))` can
/// never find anything smaller.
pub fn canonical_encode<T: Symmetric>(sys: &T, s: &T::State, out: &mut Vec<u8>) -> OrbitSample {
    let n = sys.remote_count();
    if n <= 1 {
        sys.encode(s, out);
        return OrbitSample { candidates: 1, moved: false };
    }

    let mut sigs: Vec<Vec<u8>> = vec![Vec::new(); n];
    for (i, sig) in sigs.iter_mut().enumerate() {
        sys.signature(s, i, sig);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
    let mut group_end = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let mut e = k + 1;
        while e < n && sigs[order[e]] == sigs[order[k]] {
            e += 1;
        }
        for g in group_end.iter_mut().take(e).skip(k) {
            *g = e;
        }
        k = e;
    }

    let mut perm = vec![0usize; n];
    let mut best: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    let mut first = true;
    let mut candidates = 0u64;
    for_each_sorting_perm(&mut order, &group_end, 0, &mut perm, &mut |perm| {
        candidates += 1;
        let cand = sys.permute(s, perm);
        sys.encode(&cand, &mut scratch);
        if first || scratch < best {
            std::mem::swap(&mut best, &mut scratch);
            first = false;
        }
    });

    sys.encode(s, &mut scratch);
    let moved = best != scratch;
    out.clear();
    out.extend_from_slice(&best);
    OrbitSample { candidates, moved }
}

/// The canonical orbit representative of `s` itself (the state whose
/// encoding [`canonical_encode`] produces). Primarily for tests; the
/// engines only ever need the canonical *bytes*.
pub fn canonicalize<T: Symmetric>(sys: &T, s: &T::State) -> T::State {
    let n = sys.remote_count();
    if n <= 1 {
        return s.clone();
    }
    let mut enc = Vec::new();
    canonical_encode(sys, s, &mut enc);
    // Re-run the candidate walk keeping the matching state. Two passes
    // keep the hot path (`canonical_encode`, used by every engine) free
    // of state clones it does not need.
    let mut sigs: Vec<Vec<u8>> = vec![Vec::new(); n];
    for (i, sig) in sigs.iter_mut().enumerate() {
        sys.signature(s, i, sig);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| sigs[a].cmp(&sigs[b]));
    let mut group_end = vec![0usize; n];
    let mut k = 0;
    while k < n {
        let mut e = k + 1;
        while e < n && sigs[order[e]] == sigs[order[k]] {
            e += 1;
        }
        for g in group_end.iter_mut().take(e).skip(k) {
            *g = e;
        }
        k = e;
    }
    let mut perm = vec![0usize; n];
    let mut found: Option<T::State> = None;
    let mut scratch = Vec::new();
    for_each_sorting_perm(&mut order, &group_end, 0, &mut perm, &mut |perm| {
        if found.is_some() {
            return;
        }
        let cand = sys.permute(s, perm);
        sys.encode(&cand, &mut scratch);
        if scratch == enc {
            found = Some(cand);
        }
    });
    found.expect("the canonical encoding came from some sorting permutation")
}

/// Applies the remote permutation `perm` to `s` — a re-export of
/// [`Symmetric::permute`] as a free function, for the differential and
/// property tests.
pub fn apply_perm<T: Symmetric>(sys: &T, s: &T::State, perm: &[usize]) -> T::State {
    sys.permute(s, perm)
}

/// A [`TransitionSystem`] adapter that explores `T` modulo remote
/// symmetry: identical to the inner system except that [`encode`]
/// produces the canonical orbit representative's bytes, so every engine
/// that deduplicates on encodings (all of them) visits one state per
/// orbit. See the module docs for why frontiers and trails stay concrete.
///
/// [`encode`]: TransitionSystem::encode
pub struct Reduced<'a, T: Symmetric> {
    inner: &'a T,
    active: bool,
    canon_total: AtomicU64,
    moved_total: AtomicU64,
    candidates_total: AtomicU64,
    candidates_max: AtomicU64,
}

impl<'a, T: Symmetric> Reduced<'a, T> {
    /// Wraps `inner` with orbit-canonical encoding and fresh orbit
    /// counters. When the inner system is not [`Symmetric::permutable`]
    /// (its protocol uses order-sensitive primitives such as `first`),
    /// the wrapper is the *identity*: reduction of an asymmetric graph
    /// would be unsound, so none happens and [`Reduced::active`] reports
    /// it.
    pub fn new(inner: &'a T) -> Self {
        Self {
            inner,
            active: inner.permutable() && inner.remote_count() > 1,
            canon_total: AtomicU64::new(0),
            moved_total: AtomicU64::new(0),
            candidates_total: AtomicU64::new(0),
            candidates_max: AtomicU64::new(0),
        }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &'a T {
        self.inner
    }

    /// Whether encoding actually canonicalizes (false for non-permutable
    /// protocols and for `n <= 1`, where the wrapper is the identity).
    pub fn active(&self) -> bool {
        self.active
    }

    /// Canonicalizations performed so far.
    pub fn canon_total(&self) -> u64 {
        self.canon_total.load(Relaxed)
    }

    /// Folds this wrapper's orbit counters into `reg`:
    /// `mc_symmetry_orbit_states_total` (canonicalizations),
    /// `mc_symmetry_orbit_moved_total` (states that were not already
    /// canonical), `mc_symmetry_orbit_candidates_total` (sorting
    /// permutations evaluated) and the `mc_symmetry_orbit_candidates_max`
    /// gauge. Call once after each reduced search phase.
    pub fn record_metrics(&self, reg: &Registry) {
        if !reg.enabled() {
            return;
        }
        reg.counter("mc_symmetry_orbit_states_total", "States canonicalized by symmetry reduction")
            .add(self.canon_total.load(Relaxed));
        reg.counter(
            "mc_symmetry_orbit_moved_total",
            "Canonicalized states that were not already orbit representatives",
        )
        .add(self.moved_total.load(Relaxed));
        reg.counter(
            "mc_symmetry_orbit_candidates_total",
            "Sorting permutations evaluated across all canonicalizations",
        )
        .add(self.candidates_total.load(Relaxed));
        reg.gauge(
            "mc_symmetry_orbit_candidates_max",
            "Largest sorting-permutation set met by one canonicalization",
        )
        .record_max(self.candidates_max.load(Relaxed));
    }
}

impl<T: Symmetric> TransitionSystem for Reduced<'_, T> {
    type State = T::State;

    fn initial(&self) -> T::State {
        self.inner.initial()
    }

    fn successors(
        &self,
        s: &T::State,
        out: &mut Vec<(Label, T::State)>,
    ) -> ccr_runtime::Result<()> {
        self.inner.successors(s, out)
    }

    fn encode(&self, s: &T::State, out: &mut Vec<u8>) {
        if !self.active {
            self.inner.encode(s, out);
            return;
        }
        let sample = canonical_encode(self.inner, s, out);
        self.canon_total.fetch_add(1, Relaxed);
        self.candidates_total.fetch_add(sample.candidates, Relaxed);
        self.candidates_max.fetch_max(sample.candidates, Relaxed);
        if sample.moved {
            self.moved_total.fetch_add(1, Relaxed);
        }
    }

    fn decode(&self, bytes: &[u8]) -> Option<T::State> {
        // Canonical bytes are the verbatim encoding of the orbit
        // representative, which is itself a real state — the inner
        // decoder reconstructs it, and re-encoding canonicalizes to the
        // same bytes (canonicalization is idempotent).
        self.inner.decode(bytes)
    }

    fn link_occupancy(&self, s: &T::State, from: ProcessId, to: ProcessId) -> Option<u32> {
        self.inner.link_occupancy(s, from, to)
    }

    fn home_buffer_occupancy(&self, s: &T::State) -> Option<(u32, u32)> {
        self.inner.home_buffer_occupancy(s)
    }

    fn msg_name(&self, m: MsgType) -> String {
        self.inner.msg_name(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{explore_plain, Budget};
    use ccr_core::builder::ProtocolBuilder;
    use ccr_core::expr::Expr;

    fn token_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("token");
        let req = b.msg("req");
        let gr = b.msg("gr");
        let rel = b.msg("rel");
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g1 = b.home_state("G1");
        let e = b.home_state("E");
        b.home(f).recv_any(req).bind_sender(o).goto(g1);
        b.home(g1).send_to(Expr::Var(o), gr).goto(e);
        b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        let v = b.remote_state("V");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(gr).goto(v);
        b.remote(v).send(rel).goto(i);
        b.finish().unwrap()
    }

    #[test]
    fn permute_value_moves_nodes_and_mask_bits() {
        let perm = [2usize, 0, 1];
        assert_eq!(permute_value(Value::Node(RemoteId(0)), &perm), Value::Node(RemoteId(2)));
        assert_eq!(permute_value(Value::Mask(0b011), &perm), Value::Mask(0b101));
        assert_eq!(permute_value(Value::Int(7), &perm), Value::Int(7));
        // Bits past the remote count pass through.
        assert_eq!(permute_value(Value::Mask(0b1000), &perm), Value::Mask(0b1000));
    }

    #[test]
    fn canonical_encode_is_constant_on_an_orbit() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        // Reach an asymmetric state: remote 1 owns the token.
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        let s = out
            .iter()
            .find(|(l, _)| l.actor == ProcessId::Remote(RemoteId(1)))
            .map(|(_, s)| s.clone())
            .unwrap();
        let mut base = Vec::new();
        canonical_encode(&sys, &s, &mut base);
        // Every permutation of the state canonicalizes to the same bytes.
        let perms: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        for p in &perms {
            let sibling = sys.permute(&s, p);
            let mut enc = Vec::new();
            canonical_encode(&sys, &sibling, &mut enc);
            assert_eq!(enc, base, "perm {p:?}");
        }
    }

    #[test]
    fn canonicalize_is_idempotent_and_matches_encoding() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let s0 = sys.initial();
        let mut out = Vec::new();
        sys.successors(&s0, &mut out).unwrap();
        for (_, s) in &out {
            let c = canonicalize(&sys, s);
            let cc = canonicalize(&sys, &c);
            assert_eq!(sys.encoded(&c), sys.encoded(&cc), "idempotent");
            let mut enc = Vec::new();
            canonical_encode(&sys, s, &mut enc);
            assert_eq!(sys.encoded(&c), enc, "canonicalize agrees with canonical_encode");
        }
    }

    #[test]
    fn reduced_search_shrinks_the_token_space() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let full = explore_plain(&sys, &Budget::default());
        let red = Reduced::new(&sys);
        let reduced = explore_plain(&red, &Budget::default());
        assert!(full.outcome.is_complete() && reduced.outcome.is_complete());
        assert!(reduced.states < full.states, "reduced {} vs full {}", reduced.states, full.states);
        assert!(red.canon_total() > 0, "orbit counters advance");
    }

    #[test]
    fn order_sensitive_spec_is_detected_and_left_unreduced() {
        // A home that walks its sharer set with first(s) — the scalarset
        // violation that makes invalidate.ccp/update.ccp irreducible.
        let mut b = ProtocolBuilder::new("ordered");
        let req = b.msg("req");
        let inv = b.msg("inv");
        let s = b.home_var("s", Value::Mask(0));
        let o = b.home_var("o", Value::Node(RemoteId(0)));
        let f = b.home_state("F");
        let g = b.home_state("G");
        b.home(f)
            .recv_any(req)
            .bind_sender(o)
            .assign(s, Expr::MaskAdd(Box::new(Expr::Var(s)), Box::new(Expr::Var(o))))
            .goto(g);
        b.home(g)
            .when(Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(s))))))
            .send_to(Expr::MaskFirst(Box::new(Expr::Var(s))), inv)
            .assign(
                s,
                Expr::MaskDel(
                    Box::new(Expr::Var(s)),
                    Box::new(Expr::MaskFirst(Box::new(Expr::Var(s)))),
                ),
            )
            .goto(f);
        let i = b.remote_state("I");
        let w = b.remote_state("W");
        b.remote(i).send(req).goto(w);
        b.remote(w).recv(inv).goto(i);
        let spec = b.finish().unwrap();
        assert!(!spec_permutable(&spec), "first() must flag the spec");
        assert!(spec_permutable(&token_spec()), "token is scalarset-clean");

        let sys = RendezvousSystem::new(&spec, 3);
        let red = Reduced::new(&sys);
        assert!(!red.active(), "reduction must disable itself");
        let full = explore_plain(&sys, &Budget::default());
        let reduced = explore_plain(&red, &Budget::default());
        assert_eq!(reduced.states, full.states, "identity wrapper");
        assert_eq!(reduced.outcome, full.outcome);
        assert_eq!(red.canon_total(), 0, "no canonicalization happens");
    }

    #[test]
    fn fully_symmetric_initial_state_explores_all_orderings() {
        let spec = token_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let s0 = sys.initial();
        let mut enc = Vec::new();
        // All three remotes are identical in the initial state except for
        // the home's owner variable, which names remote 0.
        let sample = canonical_encode(&sys, &s0, &mut enc);
        assert!(sample.candidates >= 2, "ties expand into orderings");
        assert!(!enc.is_empty());
    }
}
