//! The visited-state store: an open-addressed hash table over encoded
//! states with arena-backed keys.
//!
//! States are stored by their canonical byte encodings. Hashing uses a
//! local FxHash-style multiply-xor hasher (fast on short byte strings, per
//! the Rust perf-book guidance) followed by a splitmix-style finalizer, so
//! the store adds no external dependency and the same 64-bit hash drives
//! slot probing here and shard routing in the parallel engine.
//!
//! Two deliberate layout choices keep the constant factors down:
//!
//! * **Single-probe insertion.** [`StateStore::insert`] walks the probe
//!   sequence once, returning the existing index or claiming the first
//!   empty slot — no separate `get` + `insert` double probe, and no
//!   `enc.to_vec()` allocation per *hit* the way a `HashMap<Vec<u8>, _>`
//!   key forces.
//! * **Arena-backed keys.** Key bytes live contiguously in one bump arena
//!   addressed by `(offset, len)` pairs, eliminating the per-key `Vec`
//!   header and allocator round-trip (~48 bytes of overhead per state in
//!   the old layout).
//!
//! An opt-in **hash-compaction** mode ([`StateStore::compact`]) stores only
//! the 64-bit hash per state. Distinct states that collide are conflated,
//! so a run using it is *probabilistic* (reported as such in
//! [`crate::report::ExploreReport`]); in exchange the per-state footprint
//! drops to ~12 bytes, letting runs squeeze under the paper's 64 MB budget.
//!
//! The store tracks its memory footprint from the real capacities of its
//! buffers so searches can enforce a byte budget the way the paper's SPIN
//! runs enforced 64 MB.

use crate::persist::LogTier;
use std::hash::Hasher;

/// FxHash-style 64-bit hasher: multiply-rotate over 8-byte words.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Splitmix64 finalizer: spreads FxHash entropy into the low bits used for
/// slot probing and the high bits used for shard routing.
#[inline]
pub(crate) fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Hashes an encoded state. The same value is used for slot probing,
/// duplicate detection (full 64-bit compare before any byte compare) and,
/// in the parallel engine, shard routing (top bits).
#[inline]
pub fn hash_encoded(enc: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(enc);
    mix(h.finish())
}

const EMPTY: u32 = u32::MAX;
/// Arena-offset sentinel marking an entry whose key bytes were evicted
/// to the log tier. A legitimate offset of `u32::MAX` cannot occur:
/// eviction thresholds sit far below a 4 GB arena, and the store
/// debug-asserts against arena overflow long before that.
const EVICTED: u32 = u32::MAX;
/// Initial slot-table capacity (power of two).
const MIN_CAP: usize = 16;

/// A reserved byte region at the arena tail, opened by
/// [`StateStore::begin_insert`] and resolved by
/// [`StateStore::commit_insert`]: the engines encode a successor directly
/// into the slot, so a new state is written exactly once (commit keeps
/// the bytes in place) and a duplicate costs no copy at all (commit
/// rewinds the bump pointer).
#[derive(Debug)]
#[must_use = "an open slot must be resolved with commit_insert"]
pub struct ArenaSlot {
    start: usize,
}

/// A visited set mapping encoded states to dense indices (the index order
/// is discovery order, used by the progress checker to address states).
#[derive(Debug, Default)]
pub struct StateStore {
    /// Slot → full hash of the occupying entry (valid where `slots` is).
    hashes: Vec<u64>,
    /// Slot → dense entry index, or `EMPTY`.
    slots: Vec<u32>,
    /// Dense index → `(arena offset, length)`. Unused in compact mode.
    entries: Vec<(u32, u32)>,
    /// Bump arena holding every key's bytes back to back. Committed data
    /// occupies `arena[..data]`; the vector's length is a high-water mark
    /// that [`StateStore::begin_insert`] reservations reuse, so slot bytes
    /// are zero-initialized once per high-water byte, not once per
    /// reservation.
    arena: Vec<u8>,
    /// Logical length of committed arena data (the bump pointer).
    data: usize,
    len: u32,
    /// Hash-compaction: drop the key bytes, keep only the 64-bit hash.
    compact: bool,
    /// Optional disk tier: every new state is appended to its log, and
    /// when the tier's eviction threshold is crossed the arena is
    /// released wholesale — evicted entries keep their dense index and
    /// are compared against the log on a probe hit.
    tier: Option<Box<LogTier>>,
}

impl StateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store in 8-byte hash-compaction mode: only state
    /// hashes are kept, so distinct states that collide are conflated and
    /// any search over the store is probabilistic.
    pub fn compact() -> Self {
        Self { compact: true, ..Self::default() }
    }

    /// True when the store runs in hash-compaction mode.
    pub fn is_compact(&self) -> bool {
        self.compact
    }

    /// Attaches a disk tier. Callers attach either to an empty store
    /// (fresh run) or right after replaying that tier's log through
    /// [`StateStore::rebuild_insert`] (recovery — entry `i` must be
    /// record `i`). Incompatible with hash-compaction mode, which keeps
    /// no key bytes to spill.
    pub fn attach_tier(&mut self, tier: Box<LogTier>) {
        assert!(!self.compact, "hash-compaction and a disk tier are mutually exclusive");
        debug_assert_eq!(tier.records(), self.len());
        self.tier = Some(tier);
    }

    /// The attached disk tier, if any.
    pub fn tier(&self) -> Option<&LogTier> {
        self.tier.as_deref()
    }

    /// Mutable access to the attached disk tier, if any.
    pub fn tier_mut(&mut self) -> Option<&mut LogTier> {
        self.tier.as_deref_mut()
    }

    /// Inserts an encoded state. Returns `(index, true)` if newly inserted
    /// or `(existing index, false)` if already present.
    pub fn insert(&mut self, enc: &[u8]) -> (u32, bool) {
        self.insert_hashed(hash_encoded(enc), enc)
    }

    /// [`StateStore::insert`] with the hash precomputed by
    /// [`hash_encoded`] — the parallel engine hashes once on the sending
    /// side for shard routing and reuses the value here.
    pub fn insert_hashed(&mut self, hash: u64, enc: &[u8]) -> (u32, bool) {
        self.insert_hashed_depth(hash, enc, 0)
    }

    /// [`StateStore::insert_hashed`] recording a BFS depth with the
    /// state when a disk tier is attached (the depth identifies which
    /// frontier a recovered state belongs to; tierless stores ignore
    /// it). New states are appended to the tier's log, and crossing the
    /// tier's eviction threshold releases the arena wholesale.
    pub fn insert_hashed_depth(&mut self, hash: u64, enc: &[u8], depth: u32) -> (u32, bool) {
        if self.slots.is_empty() || (self.len as usize + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let idx = self.slots[i];
            if idx == EMPTY {
                let new_idx = self.len;
                self.slots[i] = new_idx;
                self.hashes[i] = hash;
                if !self.compact {
                    let off = self.data;
                    debug_assert!(off + enc.len() <= u32::MAX as usize, "arena overflow");
                    self.push_bytes(enc);
                    self.entries.push((off as u32, enc.len() as u32));
                }
                self.len += 1;
                if let Some(tier) = self.tier.as_deref_mut() {
                    tier.append(depth, enc);
                    let evict_at = tier.evict_at;
                    if evict_at > 0 && self.data > 0 && self.approx_bytes() > evict_at {
                        self.evict_arena();
                    }
                }
                return (new_idx, true);
            }
            if self.hashes[i] == hash && (self.compact || self.stored_eq(idx, enc)) {
                return (idx, false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Begins a zero-copy insert: reserves `max_len` writable bytes at
    /// the arena tail and returns the slot handle. The caller encodes the
    /// candidate state directly into [`StateStore::slot_buf`] and then
    /// resolves the slot with [`StateStore::commit_insert`] (or the
    /// depth-tagged variant) — exactly one `begin_insert` may be
    /// outstanding at a time, and no other store method may run in
    /// between.
    pub fn begin_insert(&mut self, max_len: usize) -> ArenaSlot {
        let start = self.data;
        if self.arena.len() < start + max_len {
            // Raise the high-water mark; bytes zeroed here are reused by
            // every later reservation, so the cost amortizes away.
            self.arena.resize(start + max_len, 0);
        }
        ArenaSlot { start }
    }

    /// The writable byte region of an open slot.
    #[inline]
    pub fn slot_buf(&mut self, slot: &ArenaSlot) -> &mut [u8] {
        &mut self.arena[slot.start..]
    }

    /// Appends `bytes` at the bump pointer, reusing high-water capacity.
    fn push_bytes(&mut self, bytes: &[u8]) {
        let end = self.data + bytes.len();
        if self.arena.len() < end {
            self.arena.resize(end, 0);
        }
        self.arena[self.data..end].copy_from_slice(bytes);
        self.data = end;
    }

    /// Resolves an open slot whose first `written` bytes now hold the
    /// candidate's canonical encoding: hashes the in-arena bytes, probes,
    /// and either commits the slot as a new entry (no copy — the encode
    /// *was* the arena write) or rolls the bump pointer back to where
    /// [`StateStore::begin_insert`] found it, leaving the arena
    /// byte-identical. Returns `(index, is_new)` like
    /// [`StateStore::insert`].
    pub fn commit_insert(&mut self, slot: ArenaSlot, written: usize) -> (u32, bool) {
        self.commit_insert_depth(slot, written, 0)
    }

    /// [`StateStore::commit_insert`] recording a BFS depth with the state
    /// when a disk tier is attached (see
    /// [`StateStore::insert_hashed_depth`]).
    pub fn commit_insert_depth(
        &mut self,
        slot: ArenaSlot,
        written: usize,
        depth: u32,
    ) -> (u32, bool) {
        let start = slot.start;
        debug_assert_eq!(start, self.data, "slots must be resolved in open order");
        let hash = hash_encoded(&self.arena[start..start + written]);
        if self.slots.is_empty() || (self.len as usize + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let idx = self.slots[i];
            if idx == EMPTY {
                let new_idx = self.len;
                self.slots[i] = new_idx;
                self.hashes[i] = hash;
                debug_assert!(start + written <= u32::MAX as usize, "arena overflow");
                self.len += 1;
                if let Some(tier) = self.tier.as_deref_mut() {
                    tier.append(depth, &self.arena[start..start + written]);
                }
                if !self.compact {
                    // Commit: advance the bump pointer past the slot —
                    // the encode was the arena write.
                    self.data = start + written;
                    self.entries.push((start as u32, written as u32));
                    if let Some(tier) = self.tier.as_deref() {
                        let evict_at = tier.evict_at;
                        if evict_at > 0 && self.data > 0 && self.approx_bytes() > evict_at {
                            self.evict_arena();
                        }
                    }
                }
                return (new_idx, true);
            }
            if self.hashes[i] == hash && (self.compact || self.slot_eq(idx, start, written)) {
                // Rollback: the bump pointer never moved, so the
                // committed arena is byte-identical to the moment the
                // slot was opened.
                return (idx, false);
            }
            i = (i + 1) & mask;
        }
    }

    /// Whether stored entry `idx` equals the open slot's bytes at
    /// `[start, start + written)`. Committed entries always live strictly
    /// before `start`, so the comparison splits the arena.
    fn slot_eq(&self, idx: u32, start: usize, written: usize) -> bool {
        let (off, len) = self.entries[idx as usize];
        if len as usize != written {
            return false;
        }
        if off != EVICTED {
            let (head, tail) = self.arena.split_at(start);
            return head[off as usize..off as usize + len as usize] == tail[..written];
        }
        self.tier
            .as_deref()
            .expect("evicted entry without a tier")
            .payload_eq(idx, &self.arena[start..start + written])
    }

    /// Whether stored entry `idx` equals `enc`, consulting the disk
    /// tier for evicted entries.
    fn stored_eq(&self, idx: u32, enc: &[u8]) -> bool {
        let (off, len) = self.entries[idx as usize];
        if len as usize != enc.len() {
            return false;
        }
        if off != EVICTED {
            return &self.arena[off as usize..off as usize + len as usize] == enc;
        }
        self.tier.as_deref().expect("evicted entry without a tier").payload_eq(idx, enc)
    }

    /// Releases the whole arena to the disk tier: every entry keeps its
    /// dense index and length but its offset becomes [`EVICTED`], so
    /// later probe hits compare against the log instead.
    fn evict_arena(&mut self) {
        let released = self.data as u64;
        for e in &mut self.entries {
            e.0 = EVICTED;
        }
        self.arena = Vec::new();
        self.data = 0;
        if let Some(tier) = self.tier.as_deref_mut() {
            let stats = tier.stats_mut();
            stats.evictions += 1;
            stats.evicted_bytes += released;
        }
    }

    /// Re-inserts one recovered record during log replay: claims the
    /// first empty slot on `hash`'s probe path with *no* duplicate
    /// check (log records are distinct by construction — each was a new
    /// insert when appended). `payload == None` rebuilds an
    /// already-evicted entry from the index alone.
    pub fn rebuild_insert(&mut self, hash: u64, payload: Option<&[u8]>, len: u32) {
        debug_assert!(!self.compact, "rebuild into a compact store");
        if self.slots.is_empty() || (self.len as usize + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.slots[i] = self.len;
        self.hashes[i] = hash;
        match payload {
            Some(p) => {
                debug_assert_eq!(p.len(), len as usize);
                let off = self.data;
                self.push_bytes(p);
                self.entries.push((off as u32, len));
            }
            None => self.entries.push((EVICTED, len)),
        }
        self.len += 1;
    }

    /// Looks up an encoded state.
    pub fn get(&self, enc: &[u8]) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let hash = hash_encoded(enc);
        let mask = self.slots.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let idx = self.slots[i];
            if idx == EMPTY {
                return None;
            }
            if self.hashes[i] == hash && (self.compact || self.stored_eq(idx, enc)) {
                return Some(idx);
            }
            i = (i + 1) & mask;
        }
    }

    /// The encoded bytes of state `idx`, or `None` in compact mode
    /// (where only hashes are retained) or when the entry was evicted
    /// to the disk tier. Used by the parallel engine to order witnesses
    /// deterministically; evicted callers use [`StateStore::read_entry`].
    pub fn key_bytes(&self, idx: u32) -> Option<&[u8]> {
        if self.compact || idx >= self.len {
            return None;
        }
        let (off, len) = self.entries[idx as usize];
        if off == EVICTED {
            return None;
        }
        Some(&self.arena[off as usize..off as usize + len as usize])
    }

    /// The encoded bytes of state `idx` as an owned copy, read back from
    /// the disk tier when the entry was evicted. `None` in compact mode,
    /// out of range, or on a tier read error (which also sets the tier's
    /// sticky error).
    pub fn read_entry(&self, idx: u32) -> Option<Vec<u8>> {
        if self.compact || idx >= self.len {
            return None;
        }
        let (off, len) = self.entries[idx as usize];
        if off != EVICTED {
            return Some(self.arena[off as usize..off as usize + len as usize].to_vec());
        }
        self.tier.as_deref()?.read_payload(idx)
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(MIN_CAP);
        let old_slots = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let old_hashes = std::mem::replace(&mut self.hashes, vec![0; new_cap]);
        let mask = new_cap - 1;
        for (slot, hash) in old_slots.into_iter().zip(old_hashes) {
            if slot == EMPTY {
                continue;
            }
            let mut i = (hash as usize) & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = slot;
            self.hashes[i] = hash;
        }
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no states are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint in bytes, computed from the buffers actually
    /// allocated (arena + slot table + entry table); tracks the real
    /// allocation within 2× (asserted by a unit test).
    pub fn approx_bytes(&self) -> usize {
        self.data
            + self.slots.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<u64>())
            + self.entries.len() * std::mem::size_of::<(u32, u32)>()
            + std::mem::size_of::<Self>()
            + self.tier.as_deref().map_or(0, LogTier::mem_bytes)
    }

    /// Probe displacement (distance from the hash's home slot, in slots)
    /// of every occupied slot, in table order. Computed post-hoc by
    /// rescanning the table, so histogramming probe lengths costs the
    /// search's hot path nothing. Displacements depend on insertion
    /// order, which under parallel exploration depends on scheduling.
    pub fn probe_displacements(&self) -> impl Iterator<Item = u64> + '_ {
        let mask = self.slots.len().wrapping_sub(1);
        self.slots.iter().enumerate().filter(|(_, &slot)| slot != EMPTY).map(move |(i, _)| {
            let home = (self.hashes[i] as usize) & mask;
            (i.wrapping_sub(home) & mask) as u64
        })
    }

    /// Encoded length in bytes of every stored state, in insertion order.
    /// Empty in hash-compaction mode, where key bytes are not kept.
    pub fn entry_lengths(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(_, len)| u64::from(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_differs_on_small_changes() {
        let mut a = FxHasher::default();
        a.write(b"hello world 1234");
        let mut b = FxHasher::default();
        b.write(b"hello world 1235");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fxhash_handles_remainders() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
        // Empty write is fine.
        let mut c = FxHasher::default();
        c.write(b"");
        let _ = c.finish();
    }

    #[test]
    fn store_assigns_dense_indices() {
        let mut st = StateStore::new();
        let (i0, new0) = st.insert(b"s0");
        let (i1, new1) = st.insert(b"s1");
        let (i0b, new0b) = st.insert(b"s0");
        assert!(new0 && new1 && !new0b);
        assert_eq!(i0, 0);
        assert_eq!(i1, 1);
        assert_eq!(i0b, 0);
        assert_eq!(st.len(), 2);
        assert_eq!(st.get(b"s1"), Some(1));
        assert_eq!(st.get(b"s2"), None);
        assert!(st.approx_bytes() > 0);
    }

    #[test]
    fn store_survives_growth_and_keeps_indices() {
        let mut st = StateStore::new();
        let keys: Vec<Vec<u8>> = (0u32..10_000).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            let (idx, is_new) = st.insert(k);
            assert!(is_new);
            assert_eq!(idx as usize, i);
        }
        assert_eq!(st.len(), keys.len());
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(st.get(k), Some(i as u32), "key {i}");
            let (idx, is_new) = st.insert(k);
            assert!(!is_new);
            assert_eq!(idx as usize, i);
        }
    }

    #[test]
    fn store_handles_variable_length_and_prefix_keys() {
        let mut st = StateStore::new();
        // Keys that are prefixes of each other must not be conflated by the
        // arena layout.
        let (a, _) = st.insert(b"abc");
        let (b, _) = st.insert(b"abcd");
        let (c, _) = st.insert(b"ab");
        let (d, _) = st.insert(b"");
        assert_eq!([a, b, c, d], [0, 1, 2, 3]);
        assert_eq!(st.get(b"abc"), Some(0));
        assert_eq!(st.get(b"abcd"), Some(1));
        assert_eq!(st.get(b"ab"), Some(2));
        assert_eq!(st.get(b""), Some(3));
        assert_eq!(st.len(), 4);
    }

    #[test]
    fn byte_accounting_tracks_actual_allocation_within_2x() {
        let mut st = StateStore::new();
        for i in 0u32..50_000 {
            let mut k = [0u8; 24];
            k[..4].copy_from_slice(&i.to_le_bytes());
            k[4..8].copy_from_slice(&i.wrapping_mul(2654435761).to_le_bytes());
            st.insert(&k);
        }
        // The real heap allocation behind the store, from capacities.
        let actual = st.arena.capacity()
            + st.slots.capacity() * std::mem::size_of::<u32>()
            + st.hashes.capacity() * std::mem::size_of::<u64>()
            + st.entries.capacity() * std::mem::size_of::<(u32, u32)>()
            + std::mem::size_of::<StateStore>();
        let approx = st.approx_bytes();
        assert!(
            approx * 2 >= actual && actual * 2 >= approx,
            "approx_bytes {approx} vs actual allocation {actual}"
        );
        // And the per-state overhead beyond the key bytes stays small: the
        // arena layout must beat the old HashMap<Vec<u8>, u32> entry
        // (~48 bytes of header + bucket per state).
        let overhead = (approx - st.arena.len()) / st.len();
        assert!(overhead < 48, "per-state overhead {overhead} >= 48 bytes");
    }

    #[test]
    fn compact_mode_dedups_by_hash_and_stays_small() {
        let mut full = StateStore::new();
        let mut compact = StateStore::compact();
        assert!(compact.is_compact() && !full.is_compact());
        for i in 0u32..10_000 {
            let k = (i % 1000).to_le_bytes();
            full.insert(&k);
            compact.insert(&k);
        }
        assert_eq!(full.len(), 1000);
        // No collisions expected among 1000 64-bit hashes.
        assert_eq!(compact.len(), 1000);
        assert!(
            compact.approx_bytes() < full.approx_bytes(),
            "compact {} vs full {}",
            compact.approx_bytes(),
            full.approx_bytes()
        );
    }

    #[test]
    fn hashed_insert_agrees_with_plain_insert() {
        let mut a = StateStore::new();
        let mut b = StateStore::new();
        for i in 0u32..1000 {
            let k = i.to_le_bytes();
            let ra = a.insert(&k);
            let rb = b.insert_hashed(hash_encoded(&k), &k);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn slot_inserts_agree_with_plain_inserts() {
        let mut plain = StateStore::new();
        let mut slotted = StateStore::new();
        for i in 0u32..5000 {
            let k = (i % 700).to_le_bytes();
            let expected = plain.insert(&k);
            let slot = slotted.begin_insert(16);
            slotted.slot_buf(&slot)[..4].copy_from_slice(&k);
            let got = slotted.commit_insert(slot, 4);
            assert_eq!(expected, got, "key {i}");
        }
        assert_eq!(plain.len(), slotted.len());
        assert_eq!(plain.approx_bytes(), slotted.approx_bytes());
        for i in 0..700u32 {
            assert_eq!(plain.key_bytes(i), slotted.key_bytes(i));
        }
    }

    #[test]
    fn slot_rollback_leaves_arena_byte_identical() {
        let mut st = StateStore::new();
        st.insert(b"alpha");
        st.insert(b"beta");
        let data_before = st.arena[..st.data].to_vec();
        let bytes_before = st.approx_bytes();
        // Duplicate probe: the slot is rolled back exactly — the
        // committed arena region is byte-identical.
        let slot = st.begin_insert(32);
        st.slot_buf(&slot)[..5].copy_from_slice(b"alpha");
        let (idx, is_new) = st.commit_insert(slot, 5);
        assert_eq!((idx, is_new), (0, false));
        assert_eq!(st.arena[..st.data], data_before);
        assert_eq!(st.approx_bytes(), bytes_before);
        // New state: only the written prefix of the reservation commits.
        let slot = st.begin_insert(32);
        st.slot_buf(&slot)[..5].copy_from_slice(b"gamma");
        let (idx, is_new) = st.commit_insert(slot, 5);
        assert_eq!((idx, is_new), (2, true));
        assert_eq!(&st.arena[data_before.len()..st.data], b"gamma");
    }

    #[test]
    fn compact_mode_slot_inserts_keep_no_bytes() {
        let mut st = StateStore::compact();
        for i in 0u32..100 {
            let slot = st.begin_insert(8);
            st.slot_buf(&slot)[..4].copy_from_slice(&(i % 40).to_le_bytes());
            st.commit_insert(slot, 4);
        }
        assert_eq!(st.len(), 40);
        assert_eq!(st.data, 0);
    }

    #[test]
    fn shape_iterators_cover_every_entry() {
        let mut store = StateStore::new();
        assert_eq!(store.probe_displacements().count(), 0);
        assert_eq!(store.entry_lengths().count(), 0);
        for i in 0u32..500 {
            // Variable-length keys: 4 or 8 bytes.
            if i % 2 == 0 {
                store.insert(&i.to_le_bytes());
            } else {
                store.insert(&u64::from(i).to_le_bytes());
            }
        }
        assert_eq!(store.probe_displacements().count(), 500);
        assert_eq!(store.entry_lengths().count(), 500);
        assert_eq!(store.entry_lengths().filter(|&l| l == 4).count(), 250);
        assert_eq!(store.entry_lengths().filter(|&l| l == 8).count(), 250);
        // Displacements are small for a healthy table (load factor 7/8).
        assert!(store.probe_displacements().all(|d| d < store.len() as u64));

        // Compact mode keeps no key bytes, but still probes.
        let mut compact = StateStore::compact();
        for i in 0u32..100 {
            compact.insert(&i.to_le_bytes());
        }
        assert_eq!(compact.entry_lengths().count(), 0);
        assert_eq!(compact.probe_displacements().count(), 100);
    }
}
