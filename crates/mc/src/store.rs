//! The visited-state store: a hash set over encoded states.
//!
//! States are stored by their canonical byte encodings. Hashing uses a
//! local FxHash-style multiply-xor hasher (fast on short byte strings, per
//! the Rust perf-book guidance) so the store adds no external dependency.
//! The store tracks its approximate memory footprint so searches can
//! enforce a byte budget the way the paper's SPIN runs enforced 64 MB.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style 64-bit hasher: multiply-rotate over 8-byte words.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// A visited set mapping encoded states to dense indices (the index order
/// is discovery order, used by the progress checker to address states).
#[derive(Debug, Default)]
pub struct StateStore {
    map: HashMap<Vec<u8>, u32, FxBuild>,
    bytes: usize,
}

impl StateStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an encoded state. Returns `(index, true)` if newly inserted
    /// or `(existing index, false)` if already present.
    pub fn insert(&mut self, enc: &[u8]) -> (u32, bool) {
        if let Some(&idx) = self.map.get(enc) {
            return (idx, false);
        }
        let idx = self.map.len() as u32;
        // Key bytes + map entry overhead (key header 3 words + value + hash
        // bucket), a deliberate slight overestimate.
        self.bytes += enc.len() + 48;
        self.map.insert(enc.to_vec(), idx);
        (idx, true)
    }

    /// Looks up an encoded state.
    pub fn get(&self, enc: &[u8]) -> Option<u32> {
        self.map.get(enc).copied()
    }

    /// Number of distinct states stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no states are stored.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_differs_on_small_changes() {
        let mut a = FxHasher::default();
        a.write(b"hello world 1234");
        let mut b = FxHasher::default();
        b.write(b"hello world 1235");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fxhash_handles_remainders() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
        // Empty write is fine.
        let mut c = FxHasher::default();
        c.write(b"");
        let _ = c.finish();
    }

    #[test]
    fn store_assigns_dense_indices() {
        let mut st = StateStore::new();
        let (i0, new0) = st.insert(b"s0");
        let (i1, new1) = st.insert(b"s1");
        let (i0b, new0b) = st.insert(b"s0");
        assert!(new0 && new1 && !new0b);
        assert_eq!(i0, 0);
        assert_eq!(i1, 1);
        assert_eq!(i0b, 0);
        assert_eq!(st.len(), 2);
        assert_eq!(st.get(b"s1"), Some(1));
        assert_eq!(st.get(b"s2"), None);
        assert!(st.approx_bytes() > 0);
    }
}
