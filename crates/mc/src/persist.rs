//! External-memory persistence: the append-only state log behind the
//! disk-backed [`StateStore`](crate::store::StateStore) tier, with
//! checkpoint manifests and crash recovery.
//!
//! The visited set of a big-N search outgrows RAM long before it
//! outgrows a disk (the paper's Table 3 stops where SPIN's 64 MB do);
//! this module turns the store into a bounded-memory, kill-safe tier.
//! The on-disk layout of one search phase directory is:
//!
//! * **`log`** (serial) / **`shard-NNN.log`** (parallel, one per shard)
//!   — an append-only record log: a 16-byte versioned header
//!   (`CCRLOG1\0`, version, reserved) followed by records of
//!   `[payload_len u32][check u32][depth u32][payload]`, all
//!   little-endian. `check` is the truncated splitmix-finalized FxHash
//!   of `depth ‖ payload`, so torn or corrupted records are detected
//!   individually. Record order is store insertion order: record `i`
//!   *is* dense state index `i`.
//! * **`idx`** / **`shard-NNN.idx`** — the hash64 → offset index,
//!   rewritten at every checkpoint: header (`CCRIDX1\0`, version,
//!   record count, covered log bytes) then one
//!   `[hash u64][offset u64][depth u32][len u32]` row per record and a
//!   trailing checksum. Missing or stale index files are not an error —
//!   the index is rebuilt from the log by a full checksum scan.
//! * **`manifest.json`** — the checkpoint: committed log bytes and
//!   record counts per shard, search counters, and the frontier cursor
//!   (`head` for the serial engine, `level` for the parallel one).
//!   Written atomically (write-temp-then-rename, the `status.rs`
//!   discipline) with a monotonic `seq`. Everything in the log *beyond*
//!   the committed byte count is an uncommitted (dead) tail: recovery
//!   ignores it, appends overwrite it, and the next checkpoint's
//!   [`LogTier::sync`] compacts whatever is left of it away
//!   (`mc_persist_compacted_bytes_total`).
//! * **`lock`** — a pid lock file refusing concurrent writers; stale
//!   locks (dead pid) are broken automatically.
//!
//! # Recovery rules
//!
//! Recovery is **read-only**: it never mutates the log, so a resume
//! killed before its first checkpoint leaves the directory exactly as
//! it found it and re-recovery is idempotent. On open with a manifest:
//! the committed prefix is the live log — anything beyond it is the
//! torn tail a kill -9 leaves behind and is treated as dead — and every
//! committed record's checksum is verified: a mismatch *inside* the
//! committed region is real corruption and fails the open with a
//! diagnostic, never a wrong answer. On open without a manifest (or
//! with `committed = None`): the scan keeps the longest valid record
//! prefix and treats everything from the first bad checksum on as dead.
//! Dead bytes are reclaimed by **log compaction** at the next
//! checkpoint boundary: the live records are always a contiguous
//! prefix, so the rewrite-live-prefix step degenerates to a truncate at
//! the live boundary inside [`LogTier::sync`], followed by the atomic
//! manifest swap that commits the new geometry. A fresh index matching
//! the manifest lets eviction-mode opens skip payload reads entirely.
//!
//! # Determinism contract
//!
//! Spilling and resuming never change *what* is explored: record order
//! is insertion order, the rebuilt hash table reproduces the exact
//! probe layout (insertions replay in order against the same hashes),
//! and a resumed search continues from a cut that the checkpoint placed
//! *between* state expansions. A resumed or spilled run therefore
//! reports byte-identical states/transitions/outcome versus an
//! uninterrupted in-memory run — the property `tests/persistence.rs`
//! enforces with a kill -9 differential harness.

use crate::store::{mix, FxHasher};
use ccr_metrics::jsonval::Json;
use ccr_metrics::Registry;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Magic bytes opening every state log file.
pub const LOG_MAGIC: &[u8; 8] = b"CCRLOG1\0";
/// Magic bytes opening every index file.
pub const IDX_MAGIC: &[u8; 8] = b"CCRIDX1\0";
/// On-disk format version (log, index and manifest move together).
pub const FORMAT_VERSION: u32 = 1;
/// Log/idx file header size: magic + version + reserved word.
pub const FILE_HEADER: u64 = 16;
/// Per-record header: payload length, checksum, depth.
pub const RECORD_HEADER: usize = 12;
/// Buffered-tail size that triggers a write to the log file.
const TAIL_FLUSH: usize = 256 * 1024;

/// A persistence failure: what went wrong and the offending path.
/// Carried into [`Outcome::PersistFailure`](crate::report::Outcome) so
/// checking outcomes stay structured instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    /// The file or directory the operation failed on.
    pub path: PathBuf,
    /// Human-readable description.
    pub detail: String,
}

impl PersistError {
    pub(crate) fn new(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        PersistError { path: path.into(), detail: detail.into() }
    }

    pub(crate) fn io(path: impl Into<PathBuf>, e: std::io::Error) -> Self {
        PersistError { path: path.into(), detail: e.to_string() }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.detail, self.path.display())
    }
}

/// Alias for persistence results.
pub type PResult<T> = std::result::Result<T, PersistError>;

/// Plain per-tier counters, merged across shards and folded into the
/// metrics registry at the end of a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PersistStats {
    /// Records appended to the log.
    pub records_appended: u64,
    /// Payload bytes appended (headers excluded).
    pub bytes_appended: u64,
    /// Wholesale arena evictions performed by the store.
    pub evictions: u64,
    /// Arena bytes released by evictions.
    pub evicted_bytes: u64,
    /// Payload reads served from disk (not the in-memory tail).
    pub disk_reads: u64,
    /// Checkpoints (manifest rewrites) performed.
    pub checkpoints: u64,
    /// Records recovered from the log on open.
    pub recovered_records: u64,
    /// Uncommitted tail bytes found beyond the recovered prefix on open.
    pub torn_bytes: u64,
    /// Index files rebuilt from the log (missing or stale idx).
    pub idx_rebuilds: u64,
    /// Dead log bytes reclaimed by checkpoint-boundary compaction.
    pub compacted_bytes: u64,
}

impl PersistStats {
    /// Accumulates another tier's counters.
    pub fn merge(&mut self, o: &PersistStats) {
        self.records_appended += o.records_appended;
        self.bytes_appended += o.bytes_appended;
        self.evictions += o.evictions;
        self.evicted_bytes += o.evicted_bytes;
        self.disk_reads += o.disk_reads;
        self.checkpoints += o.checkpoints;
        self.recovered_records += o.recovered_records;
        self.torn_bytes += o.torn_bytes;
        self.idx_rebuilds += o.idx_rebuilds;
        self.compacted_bytes += o.compacted_bytes;
    }

    /// Folds the counters into `reg` as `mc_persist_*` totals.
    /// Spill/recovery volume is deterministic for a given run shape, but
    /// disk-read counts depend on flush timing in the parallel engine,
    /// so everything timing-adjacent registers as nondeterministic.
    pub fn publish(&self, reg: &Registry) {
        if !reg.enabled() {
            return;
        }
        reg.counter("mc_persist_records_appended_total", "State records appended to the log tier")
            .add(self.records_appended);
        reg.counter("mc_persist_bytes_appended_total", "Payload bytes appended to the log tier")
            .add(self.bytes_appended);
        reg.counter_nondet("mc_persist_evictions_total", "Wholesale arena evictions")
            .add(self.evictions);
        reg.counter_nondet("mc_persist_evicted_bytes_total", "Arena bytes released by evictions")
            .add(self.evicted_bytes);
        reg.counter_nondet("mc_persist_disk_reads_total", "Payload reads served from disk")
            .add(self.disk_reads);
        reg.counter_nondet("mc_persist_checkpoints_total", "Checkpoint manifests written")
            .add(self.checkpoints);
        reg.counter("mc_persist_recovered_records_total", "Records recovered from the log on open")
            .add(self.recovered_records);
        reg.counter("mc_persist_torn_bytes_total", "Uncommitted tail bytes found on open")
            .add(self.torn_bytes);
        reg.counter("mc_persist_idx_rebuilds_total", "Index files rebuilt by a full log scan")
            .add(self.idx_rebuilds);
        reg.counter_nondet(
            "mc_persist_compacted_bytes_total",
            "Dead log bytes reclaimed by checkpoint-boundary compaction",
        )
        .add(self.compacted_bytes);
    }
}

/// Geometry of one recovered record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecInfo {
    /// File offset of the record header.
    pub offset: u64,
    /// Payload length.
    pub len: u32,
    /// BFS depth recorded with the state (0 in the serial engine).
    pub depth: u32,
    /// Full 64-bit hash of the payload ([`crate::store::hash_encoded`]).
    pub hash: u64,
}

/// Checksum of one record: truncated splitmix-finalized FxHash over
/// `depth ‖ payload`, so a record torn anywhere — header or body —
/// fails verification.
pub fn record_check(depth: u32, payload: &[u8]) -> u32 {
    let mut h = FxHasher::default();
    h.write(&depth.to_le_bytes());
    h.write(payload);
    mix(h.finish()) as u32
}

fn file_header() -> [u8; FILE_HEADER as usize] {
    let mut hdr = [0u8; FILE_HEADER as usize];
    hdr[..8].copy_from_slice(LOG_MAGIC);
    hdr[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    hdr
}

/// One append-only log file plus its in-memory index: the disk half of
/// a spilling [`StateStore`](crate::store::StateStore). Record `i`
/// corresponds to dense state index `i` of the fronting store.
///
/// Reads go through a `RefCell<File>` with explicit seeks so shared
/// (`&self`) lookups work from the store's probe path; the tier is
/// still single-writer — in the parallel engine each shard owns one.
#[derive(Debug)]
pub struct LogTier {
    file: RefCell<File>,
    path: PathBuf,
    /// Bytes durably in the file (tail excluded).
    flushed: u64,
    /// Actual file length on disk. Exceeds `flushed` only after a
    /// recovery that found a torn/uncommitted tail: the open is
    /// read-only, so the dead region survives until the next checkpoint
    /// [`LogTier::sync`] compacts it away (new appends overwrite it in
    /// the meantime).
    file_len: u64,
    /// Appended records not yet written to the file. Always drained
    /// wholesale, so a record is never split across the boundary.
    tail: Vec<u8>,
    /// Record header offsets, by record index.
    offsets: Vec<u64>,
    /// Payload lengths, by record index.
    lens: Vec<u32>,
    /// Recorded depths, by record index.
    depths: Vec<u32>,
    /// Payload hashes, by record index (the in-memory hash64 → offset
    /// index; persisted to the idx file at checkpoints).
    hashes: Vec<u64>,
    /// Store-byte threshold that triggers wholesale arena eviction in
    /// the fronting store; 0 disables eviction (log-only mode).
    pub(crate) evict_at: usize,
    /// Sticky I/O error: set on the first read/write failure, checked
    /// by the engines which then abort with `PersistFailure` rather
    /// than report counts computed from bad bytes. Interior-mutable so
    /// shared-path reads (the store's `get`) can record failures.
    err: RefCell<Option<PersistError>>,
    /// Payload reads served from disk (interior-mutable: counted on the
    /// shared read path; folded into [`LogTier::stats`] on read-out).
    disk_reads: Cell<u64>,
    /// Tier counters (disk reads excluded; see [`LogTier::stats`]).
    stats: PersistStats,
}

impl LogTier {
    /// Creates a fresh log at `path` (truncating any previous file) and
    /// writes the versioned header.
    pub fn create(path: impl Into<PathBuf>, evict_at: usize) -> PResult<LogTier> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        file.write_all(&file_header()).map_err(|e| PersistError::io(&path, e))?;
        Ok(LogTier {
            file: RefCell::new(file),
            path,
            flushed: FILE_HEADER,
            file_len: FILE_HEADER,
            tail: Vec::new(),
            offsets: Vec::new(),
            lens: Vec::new(),
            depths: Vec::new(),
            hashes: Vec::new(),
            evict_at,
            err: RefCell::new(None),
            disk_reads: Cell::new(0),
            stats: PersistStats::default(),
        })
    }

    /// Opens an existing log and recovers its committed records.
    ///
    /// With `committed = Some(bytes)` (from a manifest): the file must
    /// hold at least that many valid bytes — a shorter file or a failed
    /// checksum inside the committed region is corruption and fails the
    /// open; anything beyond it is an uncommitted tail and is truncated.
    /// With `committed = None`: the longest valid record prefix wins and
    /// the first bad record truncates the rest (torn-tail recovery).
    ///
    /// `idx` names the sibling index file: when it is fresh (record
    /// count and covered bytes match) and `skip_payloads` is set
    /// (eviction mode — the store keeps nothing in RAM anyway), the open
    /// trusts it and reads no payload at all. Otherwise the log is
    /// scanned record by record, verifying every checksum, and
    /// `on_record` receives each payload in insertion order so the
    /// caller can rebuild the fronting store.
    pub fn recover(
        path: impl Into<PathBuf>,
        idx: &Path,
        committed: Option<u64>,
        evict_at: usize,
        skip_payloads: bool,
        mut on_record: impl FnMut(RecInfo, Option<&[u8]>),
    ) -> PResult<LogTier> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| PersistError::io(&path, e))?;
        let file_len = file.metadata().map_err(|e| PersistError::io(&path, e))?.len();
        if file_len < FILE_HEADER {
            return Err(PersistError::new(&path, "log shorter than its header"));
        }
        let mut hdr = [0u8; FILE_HEADER as usize];
        file.read_exact(&mut hdr).map_err(|e| PersistError::io(&path, e))?;
        if &hdr[..8] != LOG_MAGIC {
            return Err(PersistError::new(&path, "bad log magic"));
        }
        let version = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(PersistError::new(&path, format!("unsupported log version {version}")));
        }
        if let Some(committed) = committed {
            if file_len < committed {
                return Err(PersistError::new(
                    &path,
                    format!(
                        "log truncated below its manifest: {file_len} bytes on disk, \
                         {committed} committed"
                    ),
                ));
            }
        }
        let scan_end = committed.unwrap_or(file_len);
        let mut stats = PersistStats::default();

        let mut tier = LogTier {
            file: RefCell::new(file),
            path: path.clone(),
            flushed: scan_end,
            file_len,
            tail: Vec::new(),
            offsets: Vec::new(),
            lens: Vec::new(),
            depths: Vec::new(),
            hashes: Vec::new(),
            evict_at,
            err: RefCell::new(None),
            disk_reads: Cell::new(0),
            stats: PersistStats::default(),
        };

        let from_idx = if skip_payloads { read_idx(idx, scan_end) } else { None };
        match from_idx {
            Some(recs) => {
                for r in &recs {
                    tier.offsets.push(r.offset);
                    tier.lens.push(r.len);
                    tier.depths.push(r.depth);
                    tier.hashes.push(r.hash);
                    on_record(*r, None);
                }
                stats.recovered_records = recs.len() as u64;
            }
            None => {
                stats.idx_rebuilds = 1;
                let mut off = FILE_HEADER;
                let mut f = tier.file.borrow_mut();
                f.seek(SeekFrom::Start(off)).map_err(|e| PersistError::io(&path, e))?;
                let mut hdr = [0u8; RECORD_HEADER];
                let mut payload = Vec::new();
                while off + RECORD_HEADER as u64 <= scan_end {
                    f.read_exact(&mut hdr).map_err(|e| PersistError::io(&path, e))?;
                    let len = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes"));
                    let check = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes"));
                    let depth = u32::from_le_bytes(hdr[8..12].try_into().expect("4 bytes"));
                    let end = off + RECORD_HEADER as u64 + len as u64;
                    let mut ok = end <= scan_end;
                    if ok {
                        payload.resize(len as usize, 0);
                        f.read_exact(&mut payload).map_err(|e| PersistError::io(&path, e))?;
                        ok = record_check(depth, &payload) == check;
                    }
                    if !ok {
                        if committed.is_some() {
                            return Err(PersistError::new(
                                &path,
                                format!(
                                    "checksum mismatch at committed offset {off} \
                                     (record {})",
                                    tier.offsets.len()
                                ),
                            ));
                        }
                        break; // torn tail: keep the valid prefix
                    }
                    let rec = RecInfo {
                        offset: off,
                        len,
                        depth,
                        hash: crate::store::hash_encoded(&payload),
                    };
                    tier.offsets.push(rec.offset);
                    tier.lens.push(rec.len);
                    tier.depths.push(rec.depth);
                    tier.hashes.push(rec.hash);
                    on_record(rec, Some(&payload));
                    off = end;
                }
                drop(f);
                tier.flushed = off;
                stats.recovered_records = tier.offsets.len() as u64;
            }
        }
        // The dead tail is *not* truncated here: recovery is read-only,
        // so a resume killed before its first checkpoint leaves the log
        // exactly as it found it (re-recovery is idempotent). The dead
        // region is overwritten by new appends and reclaimed — with the
        // manifest swapped atomically right after — by the next
        // checkpoint's [`LogTier::sync`].
        if file_len > tier.flushed {
            stats.torn_bytes = file_len - tier.flushed;
        }
        tier.stats = stats;
        Ok(tier)
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended (equals the fronting store's `len`).
    pub fn records(&self) -> usize {
        self.offsets.len()
    }

    /// The depth recorded with record `i`.
    pub fn depth(&self, i: u32) -> u32 {
        self.depths[i as usize]
    }

    /// Bytes this tier's in-memory index costs (offsets, lengths,
    /// depths, hashes): 24 per record, charged to the fronting store's
    /// `approx_bytes`. The write tail is deliberately *excluded* — it
    /// is bounded (≤ [`TAIL_FLUSH`]) and including it would make
    /// byte-budget checks depend on flush timing.
    pub fn mem_bytes(&self) -> usize {
        self.offsets.len() * (8 + 4 + 4 + 8)
    }

    /// Takes the sticky I/O error, if one occurred.
    pub fn take_err(&mut self) -> Option<PersistError> {
        self.err.get_mut().take()
    }

    /// Whether a sticky I/O error is pending.
    pub fn has_err(&self) -> bool {
        self.err.borrow().is_some()
    }

    /// Records a failure in the sticky slot; the first error wins.
    fn set_err(&self, e: PersistError) {
        let mut slot = self.err.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    /// The tier counters, with interior-mutable disk reads folded in.
    pub fn stats(&self) -> PersistStats {
        let mut s = self.stats;
        s.disk_reads += self.disk_reads.get();
        s
    }

    /// Mutable counters (the store bumps eviction totals, the engines
    /// checkpoint totals).
    pub fn stats_mut(&mut self) -> &mut PersistStats {
        &mut self.stats
    }

    /// Appends one record; the caller guarantees `payload` is a state
    /// not seen before (the store's insert path). Write errors go to
    /// the sticky error slot.
    pub fn append(&mut self, depth: u32, payload: &[u8]) {
        let offset = self.flushed + self.tail.len() as u64;
        self.tail.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.tail.extend_from_slice(&record_check(depth, payload).to_le_bytes());
        self.tail.extend_from_slice(&depth.to_le_bytes());
        self.tail.extend_from_slice(payload);
        self.offsets.push(offset);
        self.lens.push(payload.len() as u32);
        self.depths.push(depth);
        self.hashes.push(crate::store::hash_encoded(payload));
        self.stats.records_appended += 1;
        self.stats.bytes_appended += payload.len() as u64;
        if self.tail.len() >= TAIL_FLUSH {
            self.write_tail();
        }
    }

    /// Drains the buffered tail into the file (no durability guarantee;
    /// see [`LogTier::sync`]).
    pub fn write_tail(&mut self) {
        if self.tail.is_empty() || self.has_err() {
            return;
        }
        let res = {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(self.flushed)).and_then(|_| f.write_all(&self.tail))
        };
        match res {
            Ok(()) => {
                self.flushed += self.tail.len() as u64;
                self.file_len = self.file_len.max(self.flushed);
                self.tail.clear();
            }
            Err(e) => self.set_err(PersistError::io(&self.path, e)),
        }
    }

    /// Dead bytes on disk beyond the live record prefix (a torn tail
    /// carried over from recovery that appends have not yet overwritten).
    pub fn dead_bytes(&self) -> u64 {
        self.file_len.saturating_sub(self.flushed)
    }

    /// Drains the tail and makes everything durable, compacting away any
    /// dead region beyond the live prefix. Returns the committed
    /// `(bytes, records)` pair that goes into the manifest.
    ///
    /// Compaction is safe exactly here — at a checkpoint boundary: the
    /// live records are always a contiguous prefix, so rewriting the
    /// live prefix degenerates to truncating at `flushed`, and the
    /// manifest that commits the new geometry is swapped in atomically
    /// right after. A crash in between leaves a shorter-but-valid log
    /// whose committed prefix (per the *old* manifest) is intact.
    pub fn sync(&mut self) -> (u64, u64) {
        self.write_tail();
        if !self.has_err() && self.file_len > self.flushed {
            let dead = self.file_len - self.flushed;
            let res = self.file.borrow_mut().set_len(self.flushed);
            match res {
                Ok(()) => {
                    self.file_len = self.flushed;
                    self.stats.compacted_bytes += dead;
                }
                Err(e) => self.set_err(PersistError::io(&self.path, e)),
            }
        }
        if !self.has_err() {
            let res = self.file.borrow_mut().sync_data();
            if let Err(e) = res {
                self.set_err(PersistError::io(&self.path, e));
            }
        }
        (self.flushed, self.offsets.len() as u64)
    }

    /// Reads record `i`'s payload. Served from the in-memory tail when
    /// the record has not been written out yet; otherwise from the
    /// file. I/O errors set the sticky error and return `None`.
    pub fn read_payload(&self, i: u32) -> Option<Vec<u8>> {
        let off = *self.offsets.get(i as usize)?;
        let len = self.lens[i as usize] as usize;
        let start = off + RECORD_HEADER as u64;
        if off >= self.flushed {
            let t = (start - self.flushed) as usize;
            return Some(self.tail[t..t + len].to_vec());
        }
        self.disk_reads.set(self.disk_reads.get() + 1);
        let mut buf = vec![0u8; len];
        let res = {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(start)).and_then(|_| f.read_exact(&mut buf))
        };
        match res {
            Ok(()) => Some(buf),
            Err(e) => {
                self.set_err(PersistError::io(&self.path, e));
                None
            }
        }
    }

    /// Whether record `i`'s payload equals `enc`. On a read error the
    /// sticky error is set and the answer is `true` (treat as
    /// duplicate): the engine checks [`LogTier::has_err`] and aborts
    /// with `PersistFailure` before any count computed this way could
    /// be reported.
    pub fn payload_eq(&self, i: u32, enc: &[u8]) -> bool {
        let off = self.offsets[i as usize];
        let len = self.lens[i as usize] as usize;
        if len != enc.len() {
            return false;
        }
        let start = off + RECORD_HEADER as u64;
        if off >= self.flushed {
            let t = (start - self.flushed) as usize;
            return &self.tail[t..t + len] == enc;
        }
        self.disk_reads.set(self.disk_reads.get() + 1);
        let mut buf = vec![0u8; len];
        let res = {
            let mut f = self.file.borrow_mut();
            f.seek(SeekFrom::Start(start)).and_then(|_| f.read_exact(&mut buf))
        };
        match res {
            Ok(()) => buf == enc,
            Err(e) => {
                self.set_err(PersistError::io(&self.path, e));
                true
            }
        }
    }

    /// Rewrites the sibling index file to cover every appended record.
    /// Call after [`LogTier::sync`] so the covered-bytes field matches
    /// durable data.
    pub fn write_idx(&mut self, idx_path: &Path) {
        if self.has_err() {
            return;
        }
        let mut buf = Vec::with_capacity(FILE_HEADER as usize + 12 + self.offsets.len() * 24 + 4);
        buf.extend_from_slice(IDX_MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // reserved, as in the log header
        buf.extend_from_slice(&(self.offsets.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.flushed.to_le_bytes());
        for i in 0..self.offsets.len() {
            buf.extend_from_slice(&self.hashes[i].to_le_bytes());
            buf.extend_from_slice(&self.offsets[i].to_le_bytes());
            buf.extend_from_slice(&self.depths[i].to_le_bytes());
            buf.extend_from_slice(&self.lens[i].to_le_bytes());
        }
        let mut h = FxHasher::default();
        h.write(&buf);
        buf.extend_from_slice(&(mix(h.finish()) as u32).to_le_bytes());
        if let Err(e) = std::fs::write(idx_path, &buf) {
            self.set_err(PersistError::io(idx_path, e));
        }
    }
}

/// Reads an index file, returning its records only when it is intact
/// and *fresh*: it must cover exactly `log_bytes` of the log. Stale,
/// missing or corrupt index files return `None` — the caller falls
/// back to a full log scan.
pub fn read_idx(path: &Path, log_bytes: u64) -> Option<Vec<RecInfo>> {
    let buf = std::fs::read(path).ok()?;
    let hdr = FILE_HEADER as usize + 4 + 8; // magic+version, count, bytes
    if buf.len() < hdr + 4 || &buf[..8] != IDX_MAGIC {
        return None;
    }
    if u32::from_le_bytes(buf[8..12].try_into().ok()?) != FORMAT_VERSION {
        return None;
    }
    let records = u32::from_le_bytes(buf[16..20].try_into().ok()?) as usize;
    let covered = u64::from_le_bytes(buf[20..28].try_into().ok()?);
    if covered != log_bytes || buf.len() != hdr + records * 24 + 4 {
        return None;
    }
    let body = &buf[..buf.len() - 4];
    let mut h = FxHasher::default();
    h.write(body);
    if mix(h.finish()) as u32 != u32::from_le_bytes(buf[buf.len() - 4..].try_into().ok()?) {
        return None;
    }
    let mut out = Vec::with_capacity(records);
    let mut at = hdr;
    for _ in 0..records {
        out.push(RecInfo {
            hash: u64::from_le_bytes(buf[at..at + 8].try_into().ok()?),
            offset: u64::from_le_bytes(buf[at + 8..at + 16].try_into().ok()?),
            depth: u32::from_le_bytes(buf[at + 16..at + 20].try_into().ok()?),
            len: u32::from_le_bytes(buf[at + 20..at + 24].try_into().ok()?),
        });
        at += 24;
    }
    Some(out)
}

/// A pid lock file refusing concurrent writers on one persist
/// directory. Dropping the guard releases the lock. A lock left by a
/// dead process (its pid no longer exists) is broken automatically.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// Acquires the lock at `path`.
    pub fn acquire(path: impl Into<PathBuf>) -> PResult<LockGuard> {
        let path = path.into();
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = f.write_all(format!("{}\n", std::process::id()).as_bytes());
                    return Ok(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let holder = std::fs::read_to_string(&path)
                        .ok()
                        .and_then(|s| s.trim().parse::<u32>().ok());
                    let alive = holder.is_some_and(|pid| {
                        pid != std::process::id() && Path::new(&format!("/proc/{pid}")).exists()
                    });
                    if alive {
                        return Err(PersistError::new(
                            &path,
                            format!("another writer (pid {}) holds the lock", holder.unwrap_or(0)),
                        ));
                    }
                    // Stale or our own: break it and retry once.
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => return Err(PersistError::io(&path, e)),
            }
        }
        Err(PersistError::new(&path, "could not acquire the lock"))
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The checkpoint manifest of one search phase: committed log geometry
/// plus the counters and frontier cursor a resume needs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// On-disk format version.
    pub version: u32,
    /// `"serial"` or `"parallel"`.
    pub kind: String,
    /// Monotonic checkpoint sequence number.
    pub seq: u64,
    /// Whether the search ran to an outcome.
    pub finished: bool,
    /// Final outcome name, set with `finished`.
    pub outcome_name: Option<String>,
    /// Final outcome detail, set with `finished` when the outcome
    /// carries one.
    pub outcome_detail: Option<String>,
    /// States discovered at the checkpoint.
    pub states: u64,
    /// Transitions traversed at the checkpoint.
    pub transitions: u64,
    /// Peak frontier size so far.
    pub peak_frontier: u64,
    /// Milliseconds of search time accumulated (across resumes).
    pub elapsed_ms: u64,
    /// Serial engine: dense index of the next frontier state to expand.
    pub head: u64,
    /// Parallel engine: BFS depth of the checkpointed frontier.
    pub level: u64,
    /// Worker threads of the run that wrote the checkpoint.
    pub threads: u64,
    /// Shard count (1 for the serial engine).
    pub shards: u64,
    /// Committed `(bytes, records)` per shard, in shard order.
    pub committed: Vec<(u64, u64)>,
    /// Whether the run evicts (spills) or only logs.
    pub evict: bool,
}

impl Manifest {
    /// Serializes to a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut ser = serde::Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("version", &self.version);
            map.entry("kind", &self.kind);
            map.entry("seq", &self.seq);
            map.entry("finished", &self.finished);
            map.entry("outcome_name", &self.outcome_name);
            map.entry("outcome_detail", &self.outcome_detail);
            map.entry("states", &self.states);
            map.entry("transitions", &self.transitions);
            map.entry("peak_frontier", &self.peak_frontier);
            map.entry("elapsed_ms", &self.elapsed_ms);
            map.entry("head", &self.head);
            map.entry("level", &self.level);
            map.entry("threads", &self.threads);
            map.entry("shards", &self.shards);
            map.entry_with("committed", |ser| {
                let mut seq = ser.begin_seq();
                for (bytes, records) in &self.committed {
                    seq.elem_with(|ser| {
                        let mut e = ser.begin_map();
                        e.entry("bytes", bytes);
                        e.entry("records", records);
                        e.end();
                    });
                }
                seq.end();
            });
            map.entry("evict", &self.evict);
            map.end();
        }
        ser.into_string()
    }

    /// Parses a document produced by [`Manifest::to_json`].
    pub fn parse(text: &str) -> std::result::Result<Manifest, String> {
        let json = Json::parse(text)?;
        let u64_of = |key: &str| {
            json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("manifest missing `{key}`"))
        };
        let mut committed = Vec::new();
        for e in
            json.get("committed").and_then(Json::as_array).ok_or("manifest missing `committed`")?
        {
            let bytes = e.get("bytes").and_then(Json::as_u64).ok_or("committed entry bytes")?;
            let records =
                e.get("records").and_then(Json::as_u64).ok_or("committed entry records")?;
            committed.push((bytes, records));
        }
        let version = u64_of("version")? as u32;
        if version != FORMAT_VERSION {
            return Err(format!("unsupported manifest version {version}"));
        }
        Ok(Manifest {
            version,
            kind: json
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("manifest missing `kind`")?
                .to_string(),
            seq: u64_of("seq")?,
            finished: json
                .get("finished")
                .and_then(Json::as_bool)
                .ok_or("manifest missing `finished`")?,
            outcome_name: json.get("outcome_name").and_then(Json::as_str).map(str::to_string),
            outcome_detail: json.get("outcome_detail").and_then(Json::as_str).map(str::to_string),
            states: u64_of("states")?,
            transitions: u64_of("transitions")?,
            peak_frontier: u64_of("peak_frontier")?,
            elapsed_ms: u64_of("elapsed_ms")?,
            head: u64_of("head")?,
            level: u64_of("level")?,
            threads: u64_of("threads")?,
            shards: u64_of("shards")?,
            committed,
            evict: json.get("evict").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Reads and parses a manifest file. `Ok(None)` when the file does
    /// not exist (fresh start); `Err` when it exists but does not parse
    /// (corruption — refuse to guess).
    pub fn read(path: &Path) -> PResult<Option<Manifest>> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(PersistError::io(path, e)),
        };
        Manifest::parse(&text)
            .map(Some)
            .map_err(|e| PersistError::new(path, format!("corrupt manifest: {e}")))
    }
}

/// Atomic-rename manifest writer with a monotonic shared sequence
/// number — the same discipline as `ccr_metrics::status::StatusWriter`.
#[derive(Debug, Clone)]
pub struct ManifestWriter {
    path: PathBuf,
    tmp: PathBuf,
    seq: Arc<AtomicU64>,
}

impl ManifestWriter {
    /// A writer targeting `path`, starting from sequence `seq0` (the
    /// prior manifest's seq on resume, 0 fresh).
    pub fn create(path: impl Into<PathBuf>, seq0: u64) -> ManifestWriter {
        let path = path.into();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let tmp = path.with_file_name(format!(".{name}.tmp"));
        ManifestWriter { path, tmp, seq: Arc::new(AtomicU64::new(seq0)) }
    }

    /// The target path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stamps the next sequence number and replaces the manifest
    /// atomically.
    pub fn write(&self, manifest: &mut Manifest) -> PResult<()> {
        manifest.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        manifest.version = FORMAT_VERSION;
        let mut doc = manifest.to_json();
        doc.push('\n');
        std::fs::write(&self.tmp, doc)
            .and_then(|()| std::fs::rename(&self.tmp, &self.path))
            .map_err(|e| PersistError::io(&self.path, e))
    }
}

/// File names inside one phase persist directory.
#[derive(Debug, Clone)]
pub struct PhaseDir {
    /// The phase directory itself.
    pub root: PathBuf,
    shards: usize,
}

impl PhaseDir {
    /// Lays out (and creates) the directory for one search phase.
    /// `shards == 1` uses the serial names (`log`/`idx`); more shards
    /// use `shard-NNN.log`/`.idx`.
    pub fn create(root: impl Into<PathBuf>, shards: usize) -> PResult<PhaseDir> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| PersistError::io(&root, e))?;
        Ok(PhaseDir { root, shards })
    }

    /// Shard count this layout was created for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The log path of shard `s`.
    pub fn log(&self, s: usize) -> PathBuf {
        if self.shards == 1 {
            self.root.join("log")
        } else {
            self.root.join(format!("shard-{s:03}.log"))
        }
    }

    /// The index path of shard `s`.
    pub fn idx(&self, s: usize) -> PathBuf {
        if self.shards == 1 {
            self.root.join("idx")
        } else {
            self.root.join(format!("shard-{s:03}.idx"))
        }
    }

    /// The lock file path.
    pub fn lock(&self) -> PathBuf {
        self.root.join("lock")
    }

    /// The manifest path.
    pub fn manifest(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    /// Removes stale log/idx/manifest files for a fresh start (the lock
    /// is held by the caller and kept).
    pub fn wipe(&self) -> PResult<()> {
        for entry in std::fs::read_dir(&self.root).map_err(|e| PersistError::io(&self.root, e))? {
            let entry = entry.map_err(|e| PersistError::io(&self.root, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name == "lock" {
                continue;
            }
            std::fs::remove_file(entry.path()).map_err(|e| PersistError::io(entry.path(), e))?;
        }
        Ok(())
    }
}

/// A shared crash switch for the kill -9 differential harness: aborts
/// the whole process (no destructors, no flushes — as close to kill -9
/// as a test hook gets) once `remaining` decrements to zero. Decremented
/// once per newly inserted state.
#[derive(Debug, Clone, Default)]
pub struct CrashSwitch {
    remaining: Option<Arc<AtomicU64>>,
}

impl CrashSwitch {
    /// A switch that aborts after `n` new states. `None` never fires.
    pub fn after(n: Option<u64>) -> CrashSwitch {
        CrashSwitch { remaining: n.map(|n| Arc::new(AtomicU64::new(n))) }
    }

    /// Whether the switch is armed.
    pub fn armed(&self) -> bool {
        self.remaining.is_some()
    }

    /// Ticks the switch; aborts the process when the budget is spent.
    #[inline]
    pub fn tick(&self) {
        if let Some(rem) = &self.remaining {
            if rem.fetch_sub(1, Ordering::Relaxed) <= 1 {
                eprintln!("ccr: crash switch fired (simulated kill -9)");
                std::process::abort();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ccr-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn payloads() -> Vec<(u32, Vec<u8>)> {
        (0..40u32).map(|i| (i / 7, (0..=i as u8).map(|b| b.wrapping_mul(37)).collect())).collect()
    }

    fn filled_log(dir: &Path) -> (PathBuf, PathBuf, u64, u64) {
        let log = dir.join("log");
        let idx = dir.join("idx");
        let mut tier = LogTier::create(&log, 0).unwrap();
        for (depth, p) in payloads() {
            tier.append(depth, &p);
        }
        let (bytes, records) = tier.sync();
        tier.write_idx(&idx);
        assert!(tier.take_err().is_none());
        (log, idx, bytes, records)
    }

    #[test]
    fn append_sync_recover_round_trip() {
        let dir = tmp("roundtrip");
        let (log, idx, bytes, records) = filled_log(&dir);
        assert_eq!(records as usize, payloads().len());
        let mut seen: Vec<(u32, Vec<u8>)> = Vec::new();
        let tier = LogTier::recover(&log, &idx, Some(bytes), 0, false, |rec, payload| {
            seen.push((rec.depth, payload.expect("full scan carries payloads").to_vec()));
        })
        .unwrap();
        assert_eq!(seen, payloads());
        assert_eq!(tier.records() as u64, records);
        // Payloads read back individually too (the spill read path).
        for (i, (_, p)) in payloads().iter().enumerate() {
            assert_eq!(tier.read_payload(i as u32).as_deref(), Some(p.as_slice()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_readonly_and_compacts_at_the_next_checkpoint() {
        use std::io::Write;
        let dir = tmp("torn");
        let (log, idx, bytes, records) = filled_log(&dir);
        // Simulate a crash mid-append: garbage past the committed bytes.
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0xAB; 29]).unwrap();
        drop(f);
        let mut n = 0;
        let mut tier = LogTier::recover(&log, &idx, None, 0, false, |_, _| n += 1).unwrap();
        assert_eq!(n as u64, records);
        assert_eq!(tier.stats().torn_bytes, 29);
        // Recovery is read-only: the dead tail survives the open…
        assert_eq!(std::fs::metadata(&log).unwrap().len(), bytes + 29);
        assert_eq!(tier.dead_bytes(), 29);
        // …and the next checkpoint's sync compacts it away.
        let (committed, _) = tier.sync();
        assert_eq!(committed, bytes);
        assert_eq!(std::fs::metadata(&log).unwrap().len(), bytes);
        assert_eq!(tier.dead_bytes(), 0);
        assert_eq!(tier.stats().compacted_bytes, 29);
        assert!(tier.take_err().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appends_overwrite_the_dead_region_before_compaction() {
        use std::io::Write;
        let dir = tmp("overwrite");
        let (log, idx, bytes, records) = filled_log(&dir);
        // A long torn tail (larger than the records appended below).
        let mut f = OpenOptions::new().append(true).open(&log).unwrap();
        f.write_all(&[0xCD; 200]).unwrap();
        drop(f);
        let mut tier = LogTier::recover(&log, &idx, Some(bytes), 0, false, |_, _| {}).unwrap();
        assert_eq!(tier.stats().torn_bytes, 200);
        // New appends land at the live boundary, overwriting dead bytes.
        tier.append(9, b"fresh-payload");
        let (committed, recs) = tier.sync();
        assert_eq!(recs, records + 1);
        // Compaction trimmed the file to exactly the new live prefix.
        assert_eq!(std::fs::metadata(&log).unwrap().len(), committed);
        let reclaimed = tier.stats().compacted_bytes;
        assert_eq!(reclaimed, 200 - (RECORD_HEADER as u64 + 13));
        // The compacted log recovers cleanly, torn tail gone.
        let mut seen = Vec::new();
        let back = LogTier::recover(&log, &idx, Some(committed), 0, false, |rec, p| {
            seen.push((rec.depth, p.unwrap().to_vec()));
        })
        .unwrap();
        assert_eq!(seen.last(), Some(&(9u32, b"fresh-payload".to_vec())));
        assert_eq!(back.stats().torn_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_inside_the_committed_region_fails_safe() {
        use std::io::{Seek, Write};
        let dir = tmp("corrupt");
        let (log, idx, bytes, _) = filled_log(&dir);
        let mut f = OpenOptions::new().write(true).open(&log).unwrap();
        f.seek(SeekFrom::Start(bytes / 2)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);
        let err = LogTier::recover(&log, &idx, Some(bytes), 0, false, |_, _| {})
            .expect_err("corruption must fail the open");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_shorter_than_the_manifest_fails_safe() {
        let dir = tmp("short");
        let (log, idx, bytes, _) = filled_log(&dir);
        OpenOptions::new().write(true).open(&log).unwrap().set_len(bytes - 3).unwrap();
        let err = LogTier::recover(&log, &idx, Some(bytes), 0, false, |_, _| {})
            .expect_err("a log shorter than its manifest must fail the open");
        assert!(err.to_string().contains("truncated below"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn idx_round_trip_and_staleness_rejection() {
        let dir = tmp("idx");
        let (log, idx, bytes, records) = filled_log(&dir);
        let recs = read_idx(&idx, bytes).expect("fresh idx reads back");
        assert_eq!(recs.len() as u64, records);
        // A stale idx (covered bytes disagree) is rejected, forcing the
        // full checksum scan.
        assert!(read_idx(&idx, bytes + 1).is_none());
        // A trusted-idx recovery (eviction mode) agrees with the scan.
        let mut hashes_scan = Vec::new();
        LogTier::recover(&log, &idx, Some(bytes), 0, false, |r, _| hashes_scan.push(r.hash))
            .unwrap();
        let mut hashes_idx = Vec::new();
        let tier = LogTier::recover(&log, &idx, Some(bytes), 1024, true, |r, payload| {
            assert!(payload.is_none(), "trusted idx reads no payloads");
            hashes_idx.push(r.hash);
        })
        .unwrap();
        assert_eq!(hashes_scan, hashes_idx);
        assert_eq!(tier.stats().idx_rebuilds, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_refuses_a_live_second_writer() {
        let dir = tmp("lock");
        let path = dir.join("lock");
        // A lock held by a live foreign process (pid 1 always exists) is
        // refused.
        std::fs::write(&path, "1\n").unwrap();
        let err = LockGuard::acquire(&path).expect_err("second writer must be refused");
        assert!(err.to_string().contains("holds the lock"), "{err}");
        // A stale lock (dead pid) is broken and re-acquired.
        std::fs::write(&path, "999999999\n").unwrap();
        let guard = LockGuard::acquire(&path).unwrap();
        drop(guard);
        assert!(!path.exists(), "dropping the guard releases the lock");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_round_trips_and_rejects_garbage() {
        let dir = tmp("manifest");
        let path = dir.join("manifest.json");
        let writer = ManifestWriter::create(&path, 7);
        let mut m = Manifest {
            kind: "parallel".to_string(),
            finished: true,
            outcome_name: Some("InvariantViolated".to_string()),
            outcome_detail: Some("two owners".to_string()),
            states: 123,
            transitions: 456,
            peak_frontier: 78,
            elapsed_ms: 9001,
            level: 5,
            threads: 4,
            shards: 8,
            committed: vec![(16, 0), (300, 7)],
            evict: true,
            ..Manifest::default()
        };
        writer.write(&mut m).unwrap();
        assert_eq!(m.seq, 8, "writer stamps the next sequence number");
        let back = Manifest::read(&path).unwrap().expect("written manifest reads back");
        assert_eq!(back.seq, 8);
        assert_eq!(back.kind, m.kind);
        assert_eq!(back.outcome_name, m.outcome_name);
        assert_eq!(back.outcome_detail, m.outcome_detail);
        assert_eq!(back.states, m.states);
        assert_eq!(back.transitions, m.transitions);
        assert_eq!(back.committed, m.committed);
        assert!(back.finished && back.evict);
        assert!(Manifest::read(&dir.join("absent.json")).unwrap().is_none());
        std::fs::write(&path, "{not json").unwrap();
        let err = Manifest::read(&path).expect_err("garbage manifest must fail");
        assert!(err.to_string().contains("corrupt manifest"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn phase_dir_wipe_keeps_the_lock() {
        let dir = tmp("phasedir");
        let pd = PhaseDir::create(dir.join("phase"), 4).unwrap();
        let _guard = LockGuard::acquire(pd.lock()).unwrap();
        std::fs::write(pd.log(2), b"stale").unwrap();
        std::fs::write(pd.manifest(), b"stale").unwrap();
        pd.wipe().unwrap();
        assert!(!pd.log(2).exists());
        assert!(!pd.manifest().exists());
        assert!(pd.lock().exists(), "wipe must not break the held lock");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
