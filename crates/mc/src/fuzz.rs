//! Derivation fuzzing: the differential pipeline behind `ccr fuzz`.
//!
//! Each spec from the [`ccr_core::zoo`] generator runs through the whole
//! derivation stack as one property:
//!
//! 1. **build + validate** — the shape lowers to a §2.4-valid spec;
//! 2. **text round-trip** — `parse(print(spec)) == spec` through
//!    [`ccr_core::text`];
//! 3. **refine** (both with and without the req/repl optimization) and the
//!    **Equation 1** check: no reachable asynchronous transition may fall
//!    outside the stuttering simulation;
//! 4. **serial model-check** of the rendezvous and asynchronous systems
//!    (safety: no executor runtime failure; deadlock/livelock are allowed —
//!    random protocols block all the time — but must be *reported*, not
//!    crashed on);
//! 5. **parallel re-check** at 2 and 4 threads — states, transitions and
//!    outcome must be byte-identical to serial;
//! 6. **symmetry re-check** — when the spec passes the scalarset test, the
//!    reduced system must agree with itself across engines and with the
//!    full system on the verdict;
//! 7. **bounded fault-closure** — serial and parallel closures must agree.
//!
//! A spec *fails* when any stage errors, Equation 1 is violated, an engine
//! pair disagrees, or an executor assertion trips. Failures feed the
//! [`shrink_failing`] greedy shrinker, which walks
//! [`ZooSpec::shrink_candidates`] until no strictly smaller shape still
//! fails.
//!
//! For shrinker tests and CI's negative case there is [`FuzzConfig::inject`]:
//! after refinement it marks one acked remote send as fire-and-forget (a
//! `migratory_broken`-shaped unsoundness — the completion protocol is
//! desynchronized), which the pipeline must then catch.

use crate::report::{ExploreReport, Outcome};
use crate::search::{explore, Budget};
use crate::simrel::check_simulation;
use crate::symmetry::{spec_permutable, Reduced};
use crate::{
    check_fault_closure, check_fault_closure_parallel_observed, check_progress,
    check_progress_parallel, explore_parallel, ParallelConfig, SearchObserver,
};
use ccr_core::process::{CommAction, ProtocolSpec};
use ccr_core::refine::{refine, BranchKey, RefineOptions, RefinedProtocol, ReqRepMode};
use ccr_core::text::{parse_validated, to_text};
use ccr_core::zoo::ZooSpec;
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_trace::NullSink;
use std::fmt;

/// Tuning for one fuzzing run. Everything here is part of the reproducible
/// fingerprint: the same config + seed must give the same verdicts.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Remote process count for every built system.
    pub n: u32,
    /// State budget per exploration stage (an `Unfinished` stage is not a
    /// failure, it just bounds the differential claim to the prefix).
    pub budget_states: usize,
    /// Thread counts for the parallel re-checks.
    pub threads: Vec<usize>,
    /// Fault budget for the closure stage; 0 disables it.
    pub fault_budget: u32,
    /// Deterministically inject a `migratory_broken`-shaped unsoundness
    /// after refinement (see [`inject_unsound`]). Test/CI hook.
    pub inject: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            n: 2,
            budget_states: 20_000,
            threads: vec![2, 4],
            fault_budget: 1,
            inject: false,
        }
    }
}

/// Why a spec failed the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzFailure {
    /// The shape did not lower to a valid spec (never expected from
    /// `generate`; shrink candidates may hit it and are skipped).
    Build(String),
    /// `parse(print(spec))` errored or produced a different spec.
    RoundTrip(String),
    /// The refinement procedure itself errored.
    Refine(String),
    /// Equation 1 violated (the derived protocol is unsound).
    Soundness {
        /// Which req/repl mode was being checked.
        mode: &'static str,
        /// The violating edge, as reported by the simulation check.
        detail: String,
    },
    /// An executor assertion tripped during exploration.
    Runtime {
        /// Which stage tripped it.
        stage: &'static str,
        /// The runtime error message.
        detail: String,
    },
    /// Two engine configurations disagreed on states/transitions/outcome.
    Mismatch {
        /// Which pair of engines disagreed.
        what: String,
        /// Both sides, rendered.
        detail: String,
    },
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzFailure::Build(e) => write!(f, "build: {e}"),
            FuzzFailure::RoundTrip(e) => write!(f, "round-trip: {e}"),
            FuzzFailure::Refine(e) => write!(f, "refine: {e}"),
            FuzzFailure::Soundness { mode, detail } => {
                write!(f, "soundness[{mode}]: {detail}")
            }
            FuzzFailure::Runtime { stage, detail } => write!(f, "runtime[{stage}]: {detail}"),
            FuzzFailure::Mismatch { what, detail } => write!(f, "mismatch[{what}]: {detail}"),
        }
    }
}

impl FuzzFailure {
    /// Short classification tag for tables and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            FuzzFailure::Build(_) => "build",
            FuzzFailure::RoundTrip(_) => "roundtrip",
            FuzzFailure::Refine(_) => "refine",
            FuzzFailure::Soundness { .. } => "soundness",
            FuzzFailure::Runtime { .. } => "runtime",
            FuzzFailure::Mismatch { .. } => "mismatch",
        }
    }
}

/// Verdict for one spec through the whole pipeline.
#[derive(Debug, Clone)]
pub struct SpecVerdict {
    /// Spec name (`zoo_<seed>_<index>` for generated specs).
    pub name: String,
    /// Did the spec pass the scalarset check (symmetry stage active)?
    pub permutable: bool,
    /// Rendezvous states explored (serial).
    pub rv_states: usize,
    /// Asynchronous states explored (serial, Auto mode).
    pub async_states: usize,
    /// Asynchronous transitions explored (serial, Auto mode).
    pub async_transitions: usize,
    /// Serial asynchronous outcome (None if the pipeline failed earlier).
    pub outcome: Option<Outcome>,
    /// Whether §2.5 progress held on the async system.
    pub progress_holds: Option<bool>,
    /// Whether the bounded fault closure held (None when disabled or
    /// skipped).
    pub fault_holds: Option<bool>,
    /// The first failure, if any.
    pub failure: Option<FuzzFailure>,
}

impl SpecVerdict {
    /// True when every stage passed (deadlock/livelock outcomes count as
    /// passes: arbitrary protocols may block, they must not be unsound).
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }

    fn failed(name: &str, failure: FuzzFailure) -> SpecVerdict {
        SpecVerdict {
            name: name.to_string(),
            permutable: false,
            rv_states: 0,
            async_states: 0,
            async_transitions: 0,
            outcome: None,
            progress_holds: None,
            fault_holds: None,
            failure: Some(failure),
        }
    }
}

/// Deterministically breaks a refined protocol the way `migratory_broken`
/// is broken: the first remote send branch that still awaits an ack is
/// marked fire-and-forget, so the home's ack arrives at a remote that no
/// longer expects one. Returns `false` (protocol unchanged) when every
/// remote send is already completion-free — such specs cannot host this
/// injection and a shrinker driving it will not adopt them.
pub fn inject_unsound(refined: &mut RefinedProtocol) -> bool {
    let mut keys: Vec<BranchKey> = Vec::new();
    for (si, st) in refined.spec.remote.states.iter().enumerate() {
        for (bi, br) in st.branches.iter().enumerate() {
            if let CommAction::Send { .. } = br.action {
                let key = (ccr_core::ids::StateId(si as u32), bi as u32);
                if !refined.remote_fire_forget.contains(&key)
                    && !refined.remote_reply.contains_key(&key)
                {
                    keys.push(key);
                }
            }
        }
    }
    match keys.first() {
        Some(&key) => {
            refined.remote_fire_forget.insert(key);
            true
        }
        None => false,
    }
}

/// The documented serial-vs-parallel contract (see [`crate::parallel`]):
/// on `Complete`/`Unfinished` runs the counts are byte-identical; on
/// violating runs the outcome still matches but the parallel engine
/// finishes the violation's level, so its counts may *exceed* the serial
/// early-exit counts (never undershoot them).
fn cmp_serial_vs_parallel(
    what: &str,
    serial: &ExploreReport,
    par: &ExploreReport,
) -> Option<FuzzFailure> {
    let violating = !matches!(serial.outcome, Outcome::Complete | Outcome::Unfinished);
    let ok = if violating {
        serial.outcome == par.outcome
            && par.states >= serial.states
            && par.transitions >= serial.transitions
    } else {
        key_of(serial) == key_of(par)
    };
    if ok {
        None
    } else {
        Some(FuzzFailure::Mismatch {
            what: what.to_string(),
            detail: format!(
                "serial (states={}, transitions={}, outcome={:?}) vs {what} (states={}, transitions={}, outcome={:?})",
                serial.states, serial.transitions, serial.outcome, par.states, par.transitions, par.outcome
            ),
        })
    }
}

/// Parallel runs must be byte-identical *across thread counts*, violating
/// or not.
fn cmp_parallel_pair(
    what: &str,
    a: (usize, &ExploreReport),
    b: (usize, &ExploreReport),
) -> Option<FuzzFailure> {
    if key_of(a.1) == key_of(b.1) {
        None
    } else {
        Some(FuzzFailure::Mismatch {
            what: what.to_string(),
            detail: format!(
                "{}t (states={}, transitions={}, outcome={:?}) vs {}t (states={}, transitions={}, outcome={:?})",
                a.0, a.1.states, a.1.transitions, a.1.outcome, b.0, b.1.states, b.1.transitions, b.1.outcome
            ),
        })
    }
}

fn key_of(r: &ExploreReport) -> (usize, usize, &Outcome) {
    (r.states, r.transitions, &r.outcome)
}

/// Runs one spec through the full differential pipeline.
pub fn run_spec(spec: &ProtocolSpec, cfg: &FuzzConfig) -> SpecVerdict {
    let budget = Budget::states(cfg.budget_states);
    let name = spec.name.clone();

    // Stage 2: text round-trip.
    match parse_validated(&to_text(spec)) {
        Err(e) => return SpecVerdict::failed(&name, FuzzFailure::RoundTrip(e.to_string())),
        Ok(back) if &back != spec => {
            return SpecVerdict::failed(
                &name,
                FuzzFailure::RoundTrip("parse(print(spec)) != spec".to_string()),
            )
        }
        Ok(_) => {}
    }

    // Stage 3a: refinement with the req/repl detector off is checked for
    // Equation 1 only — it shares the executor with Auto mode, so the
    // differential battery below would be redundant work.
    let rv = RendezvousSystem::new(spec, cfg.n);
    match refine(spec, &RefineOptions { reqrep: ReqRepMode::Off }) {
        Err(e) => return SpecVerdict::failed(&name, FuzzFailure::Refine(e.to_string())),
        Ok(mut refined) => {
            if cfg.inject {
                inject_unsound(&mut refined);
            }
            let asys = AsyncSystem::new(&refined, cfg.n, AsyncConfig::default());
            let sim = check_simulation(&asys, &rv, &budget);
            if let Some(v) = sim.violation {
                return SpecVerdict::failed(
                    &name,
                    FuzzFailure::Soundness { mode: "off", detail: v },
                );
            }
        }
    }

    // Stage 3b: the Auto-mode refinement carries the full battery.
    let mut refined = match refine(spec, &RefineOptions { reqrep: ReqRepMode::Auto }) {
        Ok(r) => r,
        Err(e) => return SpecVerdict::failed(&name, FuzzFailure::Refine(e.to_string())),
    };
    if cfg.inject {
        inject_unsound(&mut refined);
    }
    let asys = AsyncSystem::new(&refined, cfg.n, AsyncConfig::default());

    let sim = check_simulation(&asys, &rv, &budget);
    if let Some(v) = sim.violation {
        return SpecVerdict::failed(&name, FuzzFailure::Soundness { mode: "auto", detail: v });
    }

    // Stage 4: serial model checks.
    let rv_serial = explore(&rv, &budget, |_| None, true);
    let a_serial = explore(&asys, &budget, |_| None, true);
    let permutable = spec_permutable(spec);
    let mut verdict = SpecVerdict {
        name: name.clone(),
        permutable,
        rv_states: rv_serial.states,
        async_states: a_serial.states,
        async_transitions: a_serial.transitions,
        outcome: Some(a_serial.outcome.clone()),
        progress_holds: None,
        fault_holds: None,
        failure: None,
    };
    for (stage, rep) in [("rendezvous", &rv_serial), ("async", &a_serial)] {
        if let Outcome::RuntimeFailure(e) = &rep.outcome {
            verdict.failure = Some(FuzzFailure::Runtime { stage, detail: e.to_string() });
            return verdict;
        }
    }

    // Stage 5: parallel re-checks. Each thread count must satisfy the
    // serial contract, and all thread counts must agree byte-identically
    // with each other.
    let mut prev: Option<(usize, ExploreReport)> = None;
    for &t in &cfg.threads {
        let par = explore_parallel(&asys, &budget, |_| None, true, &ParallelConfig::threads(t));
        let par = par.explore_report();
        if let Some(f) = cmp_serial_vs_parallel(&format!("async-{t}t"), &a_serial, &par) {
            verdict.failure = Some(f);
            return verdict;
        }
        if let Some((pt, ref prep)) = prev {
            if let Some(f) =
                cmp_parallel_pair(&format!("async-{pt}t-vs-{t}t"), (pt, prep), (t, &par))
            {
                verdict.failure = Some(f);
                return verdict;
            }
        }
        prev = Some((t, par));
    }

    // Progress: serial vs parallel must agree on the verdict and on the
    // state count (witness trails may legitimately differ in shape).
    let prog = check_progress(&asys, &budget, |l| l.completes.is_some());
    verdict.progress_holds = Some(prog.holds());
    if let Some(&t) = cfg.threads.first() {
        let pprog = check_progress_parallel(
            &asys,
            &budget,
            |l| l.completes.is_some(),
            &ParallelConfig::threads(t),
        );
        let a = (prog.states, prog.holds(), prog.livelocked_states, prog.deadlocked_states);
        let b = (pprog.states, pprog.holds(), pprog.livelocked_states, pprog.deadlocked_states);
        if a != b {
            verdict.failure = Some(FuzzFailure::Mismatch {
                what: format!("progress-{t}t"),
                detail: format!("serial {a:?} vs parallel {b:?}"),
            });
            return verdict;
        }
    }

    // Stage 6: symmetry. The reduced system must agree with itself across
    // engines; against the full system only the verdict is comparable
    // (orbit counts differ by construction), and only when both finished.
    if permutable {
        let red = Reduced::new(&asys);
        let r_serial = explore(&red, &budget, |_| None, true);
        if let Some(&t) = cfg.threads.first() {
            let r_par =
                explore_parallel(&red, &budget, |_| None, true, &ParallelConfig::threads(t));
            let r_par = r_par.explore_report();
            if let Some(f) = cmp_serial_vs_parallel(&format!("sym-{t}t"), &r_serial, &r_par) {
                verdict.failure = Some(f);
                return verdict;
            }
        }
        let finished = !matches!(r_serial.outcome, Outcome::Unfinished)
            && !matches!(a_serial.outcome, Outcome::Unfinished);
        if finished && r_serial.outcome != a_serial.outcome {
            verdict.failure = Some(FuzzFailure::Mismatch {
                what: "sym-vs-full".to_string(),
                detail: format!(
                    "full outcome {:?} vs reduced outcome {:?}",
                    a_serial.outcome, r_serial.outcome
                ),
            });
            return verdict;
        }
        if r_serial.states > a_serial.states {
            verdict.failure = Some(FuzzFailure::Mismatch {
                what: "sym-blowup".to_string(),
                detail: format!(
                    "reduced explored {} states > full {}",
                    r_serial.states, a_serial.states
                ),
            });
            return verdict;
        }
    }

    // Stage 7: bounded fault closure, serial vs parallel.
    if cfg.fault_budget > 0 {
        let fc = check_fault_closure(&asys, cfg.fault_budget, &budget, |_| None);
        verdict.fault_holds = Some(fc.holds());
        if let Outcome::RuntimeFailure(e) = &fc.explore.outcome {
            verdict.failure =
                Some(FuzzFailure::Runtime { stage: "fault-closure", detail: e.to_string() });
            return verdict;
        }
        if let Some(&t) = cfg.threads.first() {
            let mut null = NullSink;
            let mut obs = SearchObserver::new(&mut null);
            let pfc = check_fault_closure_parallel_observed(
                &asys,
                cfg.fault_budget,
                &budget,
                |_| None,
                &ParallelConfig::threads(t),
                &mut obs,
            );
            // Same contract as the plain explores: outcome + holds()
            // always agree; counts are byte-identical on non-violating
            // runs and may only overshoot on violating ones.
            let violating = !matches!(fc.explore.outcome, Outcome::Complete | Outcome::Unfinished);
            let counts_ok = if violating {
                pfc.explore.states >= fc.explore.states
                    && pfc.explore.transitions >= fc.explore.transitions
            } else {
                pfc.explore.states == fc.explore.states
                    && pfc.explore.transitions == fc.explore.transitions
            };
            if fc.explore.outcome != pfc.explore.outcome || fc.holds() != pfc.holds() || !counts_ok
            {
                verdict.failure = Some(FuzzFailure::Mismatch {
                    what: format!("fault-{t}t"),
                    detail: format!(
                        "serial (states={}, transitions={}, outcome={:?}, holds={}) vs parallel (states={}, transitions={}, outcome={:?}, holds={})",
                        fc.explore.states, fc.explore.transitions, fc.explore.outcome, fc.holds(),
                        pfc.explore.states, pfc.explore.transitions, pfc.explore.outcome, pfc.holds()
                    ),
                });
                return verdict;
            }
        }
    }

    verdict
}

/// Generates and runs the `index`-th spec of stream `seed`.
pub fn fuzz_one(seed: u64, index: u64, cfg: &FuzzConfig) -> (ZooSpec, SpecVerdict) {
    let shape = ZooSpec::generate(seed, index);
    let verdict = run_shape(&shape, cfg);
    (shape, verdict)
}

/// Builds and runs a shape; build failures become `FuzzFailure::Build`.
pub fn run_shape(shape: &ZooSpec, cfg: &FuzzConfig) -> SpecVerdict {
    match shape.build() {
        Ok(spec) => run_spec(&spec, cfg),
        Err(e) => SpecVerdict::failed(&shape.name, FuzzFailure::Build(e.to_string())),
    }
}

/// Result of greedy shrinking.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The smallest still-failing shape found (the input itself when no
    /// candidate still fails — in particular, when the input *passes*,
    /// shrinking is a no-op with `steps == 0`).
    pub shape: ZooSpec,
    /// Verdict of the final shape.
    pub verdict: SpecVerdict,
    /// Number of accepted shrink steps.
    pub steps: usize,
}

/// Greedy shrink: repeatedly adopt the first strictly smaller candidate
/// that still fails the pipeline, until none does (or `max_steps` is hit).
/// Deterministic: candidate order is fixed by
/// [`ZooSpec::shrink_candidates`].
pub fn shrink_failing(shape: &ZooSpec, cfg: &FuzzConfig, max_steps: usize) -> ShrinkResult {
    let mut current = shape.clone();
    let mut verdict = run_shape(&current, cfg);
    let mut steps = 0;
    if verdict.passed() {
        return ShrinkResult { shape: current, verdict, steps };
    }
    'outer: while steps < max_steps {
        for cand in current.shrink_candidates() {
            if cand.build().is_err() {
                continue;
            }
            let v = run_shape(&cand, cfg);
            if !v.passed() {
                current = cand;
                verdict = v;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult { shape: current, verdict, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_smoke_on_first_specs() {
        let cfg = FuzzConfig { budget_states: 4_000, fault_budget: 0, ..FuzzConfig::default() };
        for i in 0..6 {
            let (shape, v) = fuzz_one(1, i, &cfg);
            assert!(v.passed(), "spec {i} failed: {:?}\nshape {shape:?}", v.failure);
        }
    }

    #[test]
    fn injection_is_detected_on_migratory_shape() {
        // A remote that sends-and-awaits: marking it fire-and-forget must
        // be caught by the pipeline as a soundness/runtime failure.
        let spec = ccr_core::text::parse_validated(
            &std::fs::read_to_string(concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../specs/migratory.ccp"
            ))
            .unwrap(),
        )
        .unwrap();
        let cfg = FuzzConfig { inject: true, fault_budget: 0, ..FuzzConfig::default() };
        let v = run_spec(&spec, &cfg);
        assert!(!v.passed(), "injected unsoundness went undetected: {v:?}");
    }
}
