//! Counterexample extraction: reachability with parent tracking.
//!
//! When an invariant fails or a deadlock is found, a bare verdict is far
//! less useful than the *path* that leads there — SPIN prints a trail, and
//! so do we. [`explore_traced`] runs the same breadth-first search as
//! [`crate::search::explore`] but keeps one parent pointer and transition
//! label per state, reconstructing the shortest event trace to the first
//! violation. [`export_trail`] replays that trail through the system while
//! narrating every step to a [`TraceSink`], producing a JSONL
//! counterexample that uses the exact event expansion of a live simulator
//! trace; [`replay_trail`] re-executes it without narration so tests (and
//! sceptical users) can confirm the final state really is the bad one.

use crate::report::Outcome;
use crate::search::{Budget, SearchObserver};
use ccr_runtime::observe::emit_label_events;
use ccr_runtime::{Label, TransitionSystem};
use ccr_trace::{NullSink, TraceEvent, TraceSink};

/// A reachability result carrying an optional counterexample trail.
#[derive(Debug, Clone, serde::Serialize)]
pub struct TracedReport {
    /// States visited.
    pub states: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// How the search ended.
    pub outcome: Outcome,
    /// For `InvariantViolated`/`Deadlock`: the labels along a shortest path
    /// from the initial state to the offending state, in firing order.
    pub trail: Option<Vec<Label>>,
}

impl TracedReport {
    /// Formats a trail as SPIN-like numbered lines (`actor rule`), or a
    /// note that none exists.
    pub fn trail_text(&self) -> String {
        match &self.trail {
            None => "(no counterexample)".to_string(),
            Some(labels) => labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let completes =
                        l.completes.map(|(a, m)| format!(" completes {a}:{m}")).unwrap_or_default();
                    format!("{:>4}: {} [{}]{}", i + 1, l.actor, l.rule, completes)
                })
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }

    /// Exports the counterexample as a replayed event stream on `sink`
    /// (see [`export_trail`]). Returns the replayed final state, or `None`
    /// when there is no trail or it does not replay.
    pub fn export<T: TransitionSystem>(
        &self,
        sys: &T,
        sink: &mut dyn TraceSink,
    ) -> Option<T::State> {
        export_trail(sys, self.trail.as_deref()?, &self.outcome, sink)
    }
}

/// Reconstructs the label trail from `idx` back to the root through the
/// parent-pointer array, in firing order.
pub(crate) fn trail_to(parents: &[Option<(u32, Label)>], idx: u32) -> Vec<Label> {
    let mut labels = Vec::new();
    let mut cur = idx;
    while let Some(Some((p, l))) = parents.get(cur as usize) {
        labels.push(l.clone());
        cur = *p;
    }
    labels.reverse();
    labels
}

/// Replays `trail` from the initial state of `sys`, returning the state it
/// ends in. Fails with a description when a label along the way is not
/// enabled — which would mean the trail is not a real execution.
pub fn replay_trail<T: TransitionSystem>(
    sys: &T,
    trail: &[Label],
) -> std::result::Result<T::State, String> {
    let mut state = sys.initial();
    let mut succs = Vec::new();
    for (i, want) in trail.iter().enumerate() {
        if let Err(e) = sys.successors(&state, &mut succs) {
            return Err(format!("step {i}: executor failed: {e}"));
        }
        match succs.drain(..).find(|(l, _)| l == want) {
            Some((_, next)) => state = next,
            None => return Err(format!("step {i}: {} [{}] is not enabled", want.actor, want.rule)),
        }
    }
    Ok(state)
}

/// Replays `trail` through `sys`, narrating every step to `sink` with the
/// same event expansion the live simulator uses ([`emit_label_events`]
/// plus home-buffer occupancy changes), then emits the terminal `outcome`
/// event and flushes. Returns the final (violating) state, or `None` when
/// the trail does not replay.
pub fn export_trail<T: TransitionSystem>(
    sys: &T,
    trail: &[Label],
    outcome: &Outcome,
    sink: &mut dyn TraceSink,
) -> Option<T::State> {
    let mut state = sys.initial();
    let mut succs = Vec::new();
    let mut last_buf = None;
    for (seq, want) in trail.iter().enumerate() {
        sys.successors(&state, &mut succs).ok()?;
        let (label, next) = succs.drain(..).find(|(l, _)| l == want)?;
        state = next;
        let seq = seq as u64;
        emit_label_events(sink, seq, &label, &|m| sys.msg_name(m), &|m| {
            sys.link_occupancy(&state, m.from, m.to)
        });
        if let Some((used, capacity)) = sys.home_buffer_occupancy(&state) {
            if last_buf != Some(used) {
                last_buf = Some(used);
                sink.emit(&TraceEvent::HomeBuffer { seq, used, capacity });
            }
        }
    }
    sink.emit(&TraceEvent::Outcome {
        outcome: outcome.name().to_string(),
        detail: outcome.detail(),
        steps: Some(trail.len() as u64),
    });
    sink.flush();
    Some(state)
}

/// Breadth-first exploration with parent tracking; returns the shortest
/// trail to the first invariant violation or deadlock.
pub fn explore_traced<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
) -> TracedReport {
    let mut null = NullSink;
    let mut obs = SearchObserver::new(&mut null);
    explore_traced_observed(sys, budget, invariant, check_deadlock, &mut obs)
}

/// [`explore_traced`] with live progress reporting: `obs` receives
/// periodic heartbeats while searching, and on a violation the full
/// counterexample is exported to the observer's sink as a replayed event
/// stream (followed by the terminal outcome event).
pub fn explore_traced_observed<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
    obs: &mut SearchObserver<'_>,
) -> TracedReport {
    let run = crate::search::drive(sys, budget, invariant, check_deadlock, false, true, obs, None);
    let report = TracedReport {
        states: run.store.len(),
        transitions: run.transitions,
        outcome: run.outcome,
        trail: run.trail,
    };
    conclude_with_trail(sys, &report.outcome, report.trail.as_deref(), obs);
    crate::search::record_search_run(
        obs.metrics(),
        report.states,
        run.transitions,
        run.peak_frontier,
        &run.store,
    );
    report
}

/// [`explore_traced_observed`] against a persistence context (see
/// [`crate::search::explore_observed_persist`]). On a *resumed* run the
/// recovered states carry no parent pointers, so a violating outcome
/// reports `trail: None` — counts and outcome are still byte-identical
/// to an uninterrupted run.
pub fn explore_traced_observed_persist<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
    obs: &mut SearchObserver<'_>,
    persist: &mut crate::search::SerialPersist,
) -> TracedReport {
    let mut run = crate::search::drive(
        sys,
        budget,
        invariant,
        check_deadlock,
        false,
        true,
        obs,
        Some(persist),
    );
    persist.conclude(&mut run, obs.metrics());
    let report = TracedReport {
        states: run.store.len(),
        transitions: run.transitions,
        outcome: run.outcome,
        trail: run.trail,
    };
    conclude_with_trail(sys, &report.outcome, report.trail.as_deref(), obs);
    crate::search::record_search_run(
        obs.metrics(),
        report.states,
        run.transitions,
        run.peak_frontier,
        &run.store,
    );
    report
}

/// Shared ending for trail-carrying searches (serial and parallel): when
/// the observer's sink is live, a violating run exports its
/// counterexample as a replayed event stream ending with the outcome,
/// and a trail-less run emits the bare outcome event.
pub(crate) fn conclude_with_trail<T: TransitionSystem>(
    sys: &T,
    outcome: &Outcome,
    trail: Option<&[Label]>,
    obs: &mut SearchObserver<'_>,
) {
    if !obs.sink().enabled() {
        return;
    }
    match trail {
        Some(trail) => {
            export_trail(sys, trail, outcome, obs.sink());
        }
        None => obs.finish(outcome, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_runtime::rendezvous::RendezvousSystem;
    use ccr_trace::RingSink;

    fn deadlocking_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        b.finish().unwrap()
    }

    #[test]
    fn deadlock_trail_is_shortest() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, true);
        assert_eq!(r.outcome, Outcome::Deadlock);
        assert!(r.trail_text().contains("rendezvous"));
        let trail = r.trail.expect("trail");
        // One rendezvous (m) leads straight to the stuck configuration.
        assert_eq!(trail.len(), 1);
    }

    #[test]
    fn violation_in_initial_state_has_empty_trail() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| Some("always".into()), false);
        assert!(matches!(r.outcome, Outcome::InvariantViolated(_)));
        assert_eq!(r.trail.as_deref(), Some(&[][..]));
        assert_eq!(r.trail_text(), "", "empty trail renders empty");
    }

    #[test]
    fn complete_run_has_no_trail() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, false);
        assert_eq!(r.outcome, Outcome::Complete);
        assert!(r.trail.is_none());
        assert_eq!(r.trail_text(), "(no counterexample)");
    }

    #[test]
    fn budget_yields_unfinished() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let r = explore_traced(&sys, &Budget::states(2), |_| None, false);
        assert_eq!(r.outcome, Outcome::Unfinished);
    }

    #[test]
    fn violation_trail_replays_to_the_violating_state() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r1 = spec.remote.state_by_name("R1").unwrap();
        // Claim (falsely) that remote 0 never reaches R1.
        let r = explore_traced(
            &sys,
            &Budget::default(),
            |s| {
                if s.remotes[0].state == r1 {
                    Some("remote 0 reached R1".into())
                } else {
                    None
                }
            },
            false,
        );
        assert!(matches!(r.outcome, Outcome::InvariantViolated(_)));
        let trail = r.trail.clone().expect("trail");
        assert!(!trail.is_empty());
        let end = replay_trail(&sys, &trail).expect("trail must replay");
        assert_eq!(end.remotes[0].state, r1, "replayed final state violates the invariant");
    }

    #[test]
    fn export_narrates_the_trail_and_ends_with_the_outcome() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, true);
        assert_eq!(r.outcome, Outcome::Deadlock);
        let mut sink = RingSink::new(64);
        let end = r.export(&sys, &mut sink).expect("trail replays");
        let mut succs = Vec::new();
        sys.successors(&end, &mut succs).unwrap();
        assert!(succs.is_empty(), "exported trail ends in the deadlocked state");
        let events = sink.into_events();
        assert!(events.len() >= 2, "at least one step event plus the outcome");
        assert!(matches!(&events[0], TraceEvent::Step { seq: 0, .. }));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::Outcome { outcome, steps: Some(1), .. }) if outcome == "Deadlock"
        ));
    }

    #[test]
    fn replay_rejects_a_corrupted_trail() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, true);
        let mut trail = r.trail.expect("trail");
        // Duplicate the only step: the second firing is not enabled.
        let dup = trail[0].clone();
        trail.push(dup);
        assert!(replay_trail(&sys, &trail).is_err());
    }
}
