//! Counterexample extraction: reachability with parent tracking.
//!
//! When an invariant fails or a deadlock is found, a bare verdict is far
//! less useful than the *path* that leads there — SPIN prints a trail, and
//! so do we. [`explore_traced`] runs the same breadth-first search as
//! [`crate::search::explore`] but keeps one parent pointer and transition
//! label per state, reconstructing the shortest event trace to the first
//! violation.

use crate::report::Outcome;
use crate::search::Budget;
use crate::store::StateStore;
use ccr_runtime::{Label, TransitionSystem};
use std::collections::VecDeque;
use std::time::Instant;

/// A reachability result carrying an optional counterexample trail.
#[derive(Debug, Clone)]
pub struct TracedReport {
    /// States visited.
    pub states: usize,
    /// How the search ended.
    pub outcome: Outcome,
    /// For `InvariantViolated`/`Deadlock`: the labels along a shortest path
    /// from the initial state to the offending state, in firing order.
    pub trail: Option<Vec<Label>>,
}

impl TracedReport {
    /// Formats a trail as SPIN-like numbered lines (`actor rule`), or a
    /// note that none exists.
    pub fn trail_text(&self) -> String {
        match &self.trail {
            None => "(no counterexample)".to_string(),
            Some(labels) => labels
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    let completes = l
                        .completes
                        .map(|(a, m)| format!(" completes {a}:{m}"))
                        .unwrap_or_default();
                    format!("{:>4}: {} [{}]{}", i + 1, l.actor, l.rule, completes)
                })
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }
}

/// Breadth-first exploration with parent tracking; returns the shortest
/// trail to the first invariant violation or deadlock.
pub fn explore_traced<T: TransitionSystem>(
    sys: &T,
    budget: &Budget,
    mut invariant: impl FnMut(&T::State) -> Option<String>,
    check_deadlock: bool,
) -> TracedReport {
    let started = Instant::now();
    let mut store = StateStore::new();
    let mut parents: Vec<Option<(u32, Label)>> = Vec::new();
    let mut frontier: VecDeque<(T::State, u32)> = VecDeque::new();
    let mut succs = Vec::new();
    let mut enc = Vec::new();

    let trail_to = |idx: u32, parents: &[Option<(u32, Label)>]| -> Vec<Label> {
        let mut labels = Vec::new();
        let mut cur = idx;
        while let Some(Some((p, l))) = parents.get(cur as usize) {
            labels.push(l.clone());
            cur = *p;
        }
        labels.reverse();
        labels
    };

    let init = sys.initial();
    sys.encode(&init, &mut enc);
    store.insert(&enc);
    parents.push(None);
    if let Some(d) = invariant(&init) {
        return TracedReport {
            states: 1,
            outcome: Outcome::InvariantViolated(d),
            trail: Some(Vec::new()),
        };
    }
    frontier.push_back((init, 0));

    while let Some((state, idx)) = frontier.pop_front() {
        if let Err(e) = sys.successors(&state, &mut succs) {
            return TracedReport {
                states: store.len(),
                outcome: Outcome::RuntimeFailure(e),
                trail: Some(trail_to(idx, &parents)),
            };
        }
        if check_deadlock && succs.is_empty() {
            return TracedReport {
                states: store.len(),
                outcome: Outcome::Deadlock,
                trail: Some(trail_to(idx, &parents)),
            };
        }
        for (label, next) in succs.drain(..) {
            sys.encode(&next, &mut enc);
            let (nidx, is_new) = store.insert(&enc);
            if !is_new {
                continue;
            }
            parents.push(Some((idx, label.clone())));
            if let Some(d) = invariant(&next) {
                return TracedReport {
                    states: store.len(),
                    outcome: Outcome::InvariantViolated(d),
                    trail: Some(trail_to(nidx, &parents)),
                };
            }
            if store.len() >= budget.max_states
                || store.approx_bytes() >= budget.max_bytes
                || budget.max_time.map(|t| started.elapsed() >= t).unwrap_or(false)
            {
                return TracedReport {
                    states: store.len(),
                    outcome: Outcome::Unfinished,
                    trail: None,
                };
            }
            frontier.push_back((next, nidx));
        }
    }
    TracedReport { states: store.len(), outcome: Outcome::Complete, trail: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::builder::ProtocolBuilder;
    use ccr_runtime::rendezvous::RendezvousSystem;

    fn deadlocking_spec() -> ccr_core::process::ProtocolSpec {
        let mut b = ProtocolBuilder::new("dead");
        let m = b.msg("m");
        let never = b.msg("never");
        let h = b.home_state("H");
        b.home(h).recv_any(m).goto(h);
        let r0 = b.remote_state("R0");
        let r1 = b.remote_state("R1");
        b.remote(r0).send(m).goto(r1);
        b.remote(r1).recv(never).goto(r0);
        b.finish().unwrap()
    }

    #[test]
    fn deadlock_trail_is_shortest() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, true);
        assert_eq!(r.outcome, Outcome::Deadlock);
        assert!(r.trail_text().contains("rendezvous"));
        let trail = r.trail.expect("trail");
        // One rendezvous (m) leads straight to the stuck configuration.
        assert_eq!(trail.len(), 1);
    }

    #[test]
    fn violation_in_initial_state_has_empty_trail() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| Some("always".into()), false);
        assert!(matches!(r.outcome, Outcome::InvariantViolated(_)));
        assert_eq!(r.trail.as_deref(), Some(&[][..]));
        assert_eq!(r.trail_text(), "", "empty trail renders empty");
    }

    #[test]
    fn complete_run_has_no_trail() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 1);
        let r = explore_traced(&sys, &Budget::default(), |_| None, false);
        assert_eq!(r.outcome, Outcome::Complete);
        assert!(r.trail.is_none());
        assert_eq!(r.trail_text(), "(no counterexample)");
    }

    #[test]
    fn budget_yields_unfinished() {
        let spec = deadlocking_spec();
        let sys = RendezvousSystem::new(&spec, 3);
        let r = explore_traced(&sys, &Budget::states(2), |_| None, false);
        assert_eq!(r.outcome, Outcome::Unfinished);
    }
}
