//! Property tests for the persistence layer's crash recovery
//! (`ccr_mc::persist`): a state log cut off at **any** byte offset —
//! the on-disk shape a kill -9 mid-append leaves behind — must either
//! recover the longest clean record prefix (manifest-less torn-tail
//! recovery) or report corruption (recovery against a manifest whose
//! committed region the cut invaded). It must never panic and never
//! return wrong counts or wrong payload bytes.
//!
//! Three properties:
//!
//! * **Exhaustive truncation** — for a fixed log, every single
//!   truncation offset from 0 to the full length behaves as specified
//!   (not sampled: the file is small enough to sweep).
//! * **Random logs, random cuts** — proptest-driven payload sets and
//!   truncation points agree with the boundary arithmetic computed
//!   from the record geometry.
//! * **Bit rot inside the committed region** — flipping a byte the
//!   manifest vouches for fails the open with a diagnostic instead of
//!   resurrecting damaged states.

use ccr_mc::persist::RecInfo;
use ccr_mc::LogTier;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ccr-prop-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Builds a synced log from `payloads` and returns its total byte
/// length plus the record geometry (recovered back, which also
/// round-trip-checks the happy path).
fn build_log(log: &Path, payloads: &[(u32, Vec<u8>)]) -> (u64, Vec<RecInfo>) {
    let mut tier = LogTier::create(log, 0).unwrap();
    for (depth, p) in payloads {
        tier.append(*depth, p);
    }
    let (bytes, records) = tier.sync();
    assert!(tier.take_err().is_none(), "test log must build cleanly");
    assert_eq!(records as usize, payloads.len());
    drop(tier);
    let mut recs = Vec::new();
    let missing_idx = log.with_extension("no-idx");
    LogTier::recover(log, &missing_idx, Some(bytes), 0, false, |rec, payload| {
        assert_eq!(payload, Some(&payloads[recs.len()].1[..]));
        recs.push(rec);
    })
    .unwrap();
    (bytes, recs)
}

/// How many records survive a cut at `t`: exactly those whose header
/// and payload lie fully below the cut. (`recs` ascends; record `i`
/// ends where record `i + 1` begins, the last at `full`.)
fn survivors(recs: &[RecInfo], full: u64, t: u64) -> usize {
    (0..recs.len()).take_while(|&i| recs.get(i + 1).map(|n| n.offset).unwrap_or(full) <= t).count()
}

/// The property body shared by the exhaustive and the random tests:
/// cut a copy of `log` to `t` bytes and recover it both without a
/// manifest (prefix recovery) and against one (corruption report).
fn check_cut(
    log: &Path,
    scratch: &Path,
    payloads: &[(u32, Vec<u8>)],
    full: u64,
    recs: &[RecInfo],
    t: u64,
) {
    std::fs::copy(log, scratch).unwrap();
    std::fs::OpenOptions::new().write(true).open(scratch).unwrap().set_len(t).unwrap();
    let header = recs.first().map(|r| r.offset).expect("logs under test hold records");
    let missing_idx = scratch.with_extension("no-idx");

    // Manifest-less recovery: the longest clean prefix, bit-exact.
    let mut seen = 0usize;
    let recovered = LogTier::recover(scratch, &missing_idx, None, 0, false, |rec, payload| {
        assert_eq!(payload, Some(&payloads[seen].1[..]), "cut at {t}: payload {seen} differs");
        assert_eq!(rec.depth, payloads[seen].0, "cut at {t}: depth {seen} differs");
        seen += 1;
    });
    if t < header {
        assert!(recovered.is_err(), "a cut inside the header ({t} bytes) must fail the open");
    } else {
        let mut tier =
            recovered.unwrap_or_else(|e| panic!("cut at {t} must recover a prefix: {e}"));
        let want = survivors(recs, full, t);
        assert_eq!(tier.records(), want, "cut at {t}: wrong record count");
        assert_eq!(seen, want);
        // Recovery is read-only: the file still holds all `t` bytes and
        // the slice past the live prefix is reported as dead…
        let live_end = recs.get(want).map(|r| r.offset).unwrap_or(full);
        assert_eq!(std::fs::metadata(scratch).unwrap().len(), t, "cut at {t}: open must not write");
        assert_eq!(tier.dead_bytes(), t - live_end, "cut at {t}: wrong dead-byte count");
        // …until the next checkpoint's sync compacts it away.
        let (committed, _) = tier.sync();
        assert_eq!(committed, live_end);
        assert_eq!(
            std::fs::metadata(scratch).unwrap().len(),
            live_end,
            "cut at {t}: dead bytes must be compacted at the checkpoint"
        );
        assert_eq!(tier.stats().compacted_bytes, t - live_end, "cut at {t}: metric disagrees");
        assert!(tier.take_err().is_none());
    }

    // Recovery against a manifest committing the full log: any cut
    // below it is corruption and must be reported, not repaired.
    std::fs::copy(log, scratch).unwrap();
    std::fs::OpenOptions::new().write(true).open(scratch).unwrap().set_len(t).unwrap();
    let against_manifest = LogTier::recover(scratch, &missing_idx, Some(full), 0, false, |_, _| {});
    if t < full {
        let err = against_manifest
            .err()
            .unwrap_or_else(|| panic!("cut at {t} below committed {full} must fail the open"));
        let msg = err.to_string();
        assert!(
            msg.contains("truncated below") || msg.contains("shorter than its header"),
            "cut at {t}: undiagnostic error: {msg}"
        );
    } else {
        assert_eq!(against_manifest.unwrap().records(), payloads.len());
    }
}

#[test]
fn every_truncation_offset_recovers_cleanly_or_reports() {
    let dir = tmp("sweep");
    let log = dir.join("log");
    let scratch = dir.join("cut");
    let payloads: Vec<(u32, Vec<u8>)> =
        (0..12u32).map(|i| (i / 3, (0..(i * 5) as u8).collect())).collect();
    let (full, recs) = build_log(&log, &payloads);
    for t in 0..=full {
        check_cut(&log, &scratch, &payloads, full, &recs, t);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]

    #[test]
    fn random_logs_random_cuts(
        payloads in prop::collection::vec(
            (0u32..64, prop::collection::vec(any::<u8>(), 0..48)),
            1..24,
        ),
        cut in any::<u64>(),
    ) {
        let dir = tmp("random");
        let log = dir.join("log");
        let scratch = dir.join("cut");
        let (full, recs) = build_log(&log, &payloads);
        let t = cut % (full + 1);
        check_cut(&log, &scratch, &payloads, full, &recs, t);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_rot_in_the_committed_region_is_reported(
        payloads in prop::collection::vec(
            (0u32..64, prop::collection::vec(any::<u8>(), 1..32)),
            1..16,
        ),
        at in any::<u64>(),
        flip in 1u8..=255,
    ) {
        use std::io::{Read, Seek, SeekFrom, Write};
        let dir = tmp("rot");
        let log = dir.join("log");
        let (full, recs) = build_log(&log, &payloads);
        let header = recs[0].offset;
        // Flip one byte somewhere in the record region (header bytes are
        // covered by their own magic/version checks).
        let off = header + at % (full - header);
        let mut f = std::fs::OpenOptions::new().read(true).write(true).open(&log).unwrap();
        f.seek(SeekFrom::Start(off)).unwrap();
        let mut b = [0u8; 1];
        f.read_exact(&mut b).unwrap();
        f.seek(SeekFrom::Start(off)).unwrap();
        f.write_all(&[b[0] ^ flip]).unwrap();
        drop(f);
        let missing_idx = log.with_extension("no-idx");
        let res = LogTier::recover(&log, &missing_idx, Some(full), 0, false, |_, _| {});
        let err = res.expect_err("bit rot inside the committed region must fail the open");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
