//! Property tests for the canonicalization behind the symmetry reduction
//! (`crate::symmetry`), on random reachable states of the shipped
//! migratory protocol at both levels:
//!
//! * **Idempotence** — canonicalizing a canonical state is the identity;
//! * **Permutation invariance** — the canonical encoding is constant on
//!   each orbit, the property the [`ccr_mc::Reduced`] wrapper's soundness
//!   rests on;
//! * **Group action** — `permute` composes: π then σ equals σ∘π;
//! * **Predicate preservation** — the `ccr_mc::props` safety predicates
//!   (`rv_at_most` / `async_at_most` count remotes in a control-state
//!   set, so they are orbit-invariant) give the same verdict on a state
//!   and its canonical representative, for *random* state-sets and
//!   bounds, not just the shipped coherence invariants.
//!
//! States are drawn by random successor walks from the initial state, so
//! every tested state is reachable; permutations are random swap
//! sequences over the remote indices.

use ccr_core::ids::StateId;
use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::parse_validated;
use ccr_mc::props::{async_at_most, rv_at_most};
use ccr_mc::{apply_perm, canonical_encode, canonicalize};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use ccr_runtime::TransitionSystem;
use proptest::prelude::*;
use std::collections::HashSet;
use std::path::Path;

const N: u32 = 3;

fn migratory() -> ccr_core::process::ProtocolSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/migratory.ccp");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    parse_validated(&text).expect("migratory.ccp parses")
}

/// Follows `steps` through the successor relation from the initial state,
/// indexing each level's successor list modulo its length (stopping early
/// at a deadlock), so the resulting state is reachable by construction.
fn walk<T: TransitionSystem>(sys: &T, steps: &[u16]) -> T::State {
    let mut s = sys.initial();
    let mut succs = Vec::new();
    for &k in steps {
        succs.clear();
        sys.successors(&s, &mut succs).expect("walked state executes");
        match succs.get(k as usize % succs.len().max(1)) {
            Some((_, next)) => s = next.clone(),
            None => break,
        }
    }
    s
}

/// Builds a permutation of `0..n` from a random swap sequence (each word
/// encodes the two positions to swap), starting from the identity.
fn perm_from(swaps: &[u16], n: usize) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for &w in swaps {
        p.swap(w as usize % n, (w as usize / n) % n);
    }
    p
}

/// A set of remote control states picked by the low bits of `bits`.
fn state_set(bits: u8, spec: &ccr_core::process::ProtocolSpec) -> HashSet<StateId> {
    (0..spec.remote.states.len())
        .filter(|i| bits >> (i % 8) & 1 == 1)
        .map(|i| StateId(i as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rv_canonical_encoding_is_constant_on_the_orbit(
        steps in proptest::collection::vec(any::<u16>(), 0..40),
        swaps in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let spec = migratory();
        let sys = RendezvousSystem::new(&spec, N);
        let s = walk(&sys, &steps);
        let sibling = apply_perm(&sys, &s, &perm_from(&swaps, N as usize));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        canonical_encode(&sys, &s, &mut a);
        canonical_encode(&sys, &sibling, &mut b);
        prop_assert_eq!(a, b, "canonical bytes must not depend on remote naming");
    }

    #[test]
    fn async_canonical_encoding_is_constant_on_the_orbit(
        steps in proptest::collection::vec(any::<u16>(), 0..30),
        swaps in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let spec = migratory();
        let refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");
        let sys = AsyncSystem::new(&refined, N, AsyncConfig::default());
        let s = walk(&sys, &steps);
        let sibling = apply_perm(&sys, &s, &perm_from(&swaps, N as usize));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        canonical_encode(&sys, &s, &mut a);
        canonical_encode(&sys, &sibling, &mut b);
        prop_assert_eq!(a, b, "canonical bytes must not depend on remote naming");
    }

    #[test]
    fn canonicalization_is_idempotent_and_matches_its_encoding(
        steps in proptest::collection::vec(any::<u16>(), 0..30),
    ) {
        let spec = migratory();
        let refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");

        let rv = RendezvousSystem::new(&spec, N);
        let s = walk(&rv, &steps);
        let c = canonicalize(&rv, &s);
        prop_assert_eq!(rv.encoded(&c), rv.encoded(&canonicalize(&rv, &c)), "rv idempotence");
        let mut enc = Vec::new();
        canonical_encode(&rv, &s, &mut enc);
        prop_assert_eq!(rv.encoded(&c), enc, "rv canonicalize matches canonical_encode");

        let asys = AsyncSystem::new(&refined, N, AsyncConfig::default());
        let s = walk(&asys, &steps);
        let c = canonicalize(&asys, &s);
        prop_assert_eq!(
            asys.encoded(&c),
            asys.encoded(&canonicalize(&asys, &c)),
            "async idempotence"
        );
        let mut enc = Vec::new();
        canonical_encode(&asys, &s, &mut enc);
        prop_assert_eq!(asys.encoded(&c), enc, "async canonicalize matches canonical_encode");
    }

    #[test]
    fn permute_is_a_group_action(
        steps in proptest::collection::vec(any::<u16>(), 0..30),
        first in proptest::collection::vec(any::<u16>(), 0..8),
        second in proptest::collection::vec(any::<u16>(), 0..8),
    ) {
        let spec = migratory();
        let refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");
        let sys = AsyncSystem::new(&refined, N, AsyncConfig::default());
        let s = walk(&sys, &steps);
        let pi = perm_from(&first, N as usize);
        let sigma = perm_from(&second, N as usize);
        // perm[i] is old index i's new slot, so "π then σ" composes to
        // comp[i] = σ[π[i]].
        let comp: Vec<usize> = pi.iter().map(|&i| sigma[i]).collect();
        let stepwise = apply_perm(&sys, &apply_perm(&sys, &s, &pi), &sigma);
        let direct = apply_perm(&sys, &s, &comp);
        prop_assert_eq!(sys.encoded(&stepwise), sys.encoded(&direct), "σ∘π composition");
    }

    #[test]
    fn props_predicates_are_orbit_invariant(
        steps in proptest::collection::vec(any::<u16>(), 0..30),
        bits in any::<u8>(),
        max in 0usize..3,
        count_transients in any::<bool>(),
    ) {
        let spec = migratory();
        let refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");
        let states = state_set(bits, &spec);

        let rv = RendezvousSystem::new(&spec, N);
        let s = walk(&rv, &steps);
        let c = canonicalize(&rv, &s);
        let mut pred = rv_at_most(states.clone(), max, "prop");
        prop_assert_eq!(
            pred(&s).is_some(),
            pred(&c).is_some(),
            "rv_at_most verdict must survive canonicalization"
        );

        let asys = AsyncSystem::new(&refined, N, AsyncConfig::default());
        let s = walk(&asys, &steps);
        let c = canonicalize(&asys, &s);
        let mut pred = async_at_most(states, max, count_transients, "prop");
        prop_assert_eq!(
            pred(&s).is_some(),
            pred(&c).is_some(),
            "async_at_most verdict must survive canonicalization"
        );
    }
}
