//! Synthetic workloads: when do CPUs access, write and evict?
//!
//! A workload answers, per remote and per autonomous decision (`tau` branch
//! tag), whether the decision should be enabled *now*. The machine harness
//! filters the enabled transition set through the workload before the
//! scheduler picks, so coherence traffic follows the intended sharing
//! pattern. All workloads are seeded and reproducible.

use ccr_core::ids::RemoteId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A workload policy over autonomous decisions.
pub trait Workload {
    /// Whether remote `r` should take the autonomous decision `tag`
    /// (`"access"`, `"read"`, `"write"`, `"evict"`, ...) right now.
    fn enable(&mut self, r: RemoteId, tag: &str) -> bool;
}

/// Migratory sharing: every node keeps contending for the line and holds it
/// briefly (the access pattern the migratory protocol is designed for).
#[derive(Debug)]
pub struct Migrating {
    rng: StdRng,
    /// Probability an idle CPU starts an access when given the chance.
    pub access_prob: f64,
    /// Probability a holder evicts when given the chance.
    pub evict_prob: f64,
}

impl Migrating {
    /// Creates the workload with the given probabilities.
    pub fn new(seed: u64, access_prob: f64, evict_prob: f64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), access_prob, evict_prob }
    }
}

impl Workload for Migrating {
    fn enable(&mut self, _r: RemoteId, tag: &str) -> bool {
        match tag {
            "access" | "read" | "write" => self.rng.random_bool(self.access_prob),
            "evict" => self.rng.random_bool(self.evict_prob),
            _ => true,
        }
    }
}

/// Producer/consumer: one producer writes, everyone else only reads.
/// Meaningful for the invalidate protocol (readers share copies).
#[derive(Debug)]
pub struct ProducerConsumer {
    rng: StdRng,
    /// The writing node.
    pub producer: RemoteId,
    /// Probability of starting an access.
    pub access_prob: f64,
    /// Probability of evicting a held copy.
    pub evict_prob: f64,
}

impl ProducerConsumer {
    /// Creates the workload.
    pub fn new(seed: u64, producer: RemoteId, access_prob: f64, evict_prob: f64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), producer, access_prob, evict_prob }
    }
}

impl Workload for ProducerConsumer {
    fn enable(&mut self, r: RemoteId, tag: &str) -> bool {
        match tag {
            "write" if r != self.producer => false,
            "read" if r == self.producer => false,
            "access" | "read" | "write" => self.rng.random_bool(self.access_prob),
            "evict" => self.rng.random_bool(self.evict_prob),
            _ => true,
        }
    }
}

/// Read-mostly: everyone reads; a configurable fraction of accesses are
/// writes. The regime where the invalidate protocol beats migratory.
#[derive(Debug)]
pub struct ReadMostly {
    rng: StdRng,
    /// Fraction of accesses that are writes (0.0–1.0).
    pub write_ratio: f64,
    /// Probability of starting an access.
    pub access_prob: f64,
    /// Probability of evicting.
    pub evict_prob: f64,
}

impl ReadMostly {
    /// Creates the workload.
    pub fn new(seed: u64, write_ratio: f64, access_prob: f64, evict_prob: f64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), write_ratio, access_prob, evict_prob }
    }
}

impl Workload for ReadMostly {
    fn enable(&mut self, _r: RemoteId, tag: &str) -> bool {
        match tag {
            "read" | "access" => self.rng.random_bool(self.access_prob * (1.0 - self.write_ratio)),
            "write" => self.rng.random_bool(self.access_prob * self.write_ratio),
            "evict" => self.rng.random_bool(self.evict_prob),
            _ => true,
        }
    }
}

/// Hot-spot: one node hammers the line; the others touch it rarely. The
/// §6 starvation scenario — under an adversarial scheduler the cold nodes
/// can be nacked forever.
#[derive(Debug)]
pub struct HotSpot {
    rng: StdRng,
    /// The hot node.
    pub hot: RemoteId,
    /// Access probability of the hot node.
    pub hot_prob: f64,
    /// Access probability of every other node.
    pub cold_prob: f64,
}

impl HotSpot {
    /// Creates the workload.
    pub fn new(seed: u64, hot: RemoteId, hot_prob: f64, cold_prob: f64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), hot, hot_prob, cold_prob }
    }
}

impl Workload for HotSpot {
    fn enable(&mut self, r: RemoteId, tag: &str) -> bool {
        let p = if r == self.hot { self.hot_prob } else { self.cold_prob };
        match tag {
            "access" | "read" | "write" => self.rng.random_bool(p),
            "evict" => self.rng.random_bool(0.5),
            _ => true,
        }
    }
}

/// Enables everything — the unconstrained workload used by stress tests.
#[derive(Debug, Default)]
pub struct Always;

impl Workload for Always {
    fn enable(&mut self, _r: RemoteId, _tag: &str) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_consumer_roles_are_enforced() {
        let mut w = ProducerConsumer::new(1, RemoteId(0), 1.0, 0.5);
        assert!(w.enable(RemoteId(0), "write"));
        assert!(!w.enable(RemoteId(1), "write"));
        assert!(!w.enable(RemoteId(0), "read"));
        assert!(w.enable(RemoteId(1), "read"));
        assert!(w.enable(RemoteId(1), "untagged-internal"));
    }

    #[test]
    fn migrating_is_reproducible() {
        let mut a = Migrating::new(7, 0.5, 0.5);
        let mut b = Migrating::new(7, 0.5, 0.5);
        for i in 0..100 {
            let r = RemoteId(i % 4);
            assert_eq!(a.enable(r, "access"), b.enable(r, "access"));
        }
    }

    #[test]
    fn read_mostly_rarely_writes() {
        let mut w = ReadMostly::new(3, 0.1, 1.0, 0.1);
        let writes = (0..1000).filter(|_| w.enable(RemoteId(0), "write")).count();
        let reads = (0..1000).filter(|_| w.enable(RemoteId(0), "read")).count();
        assert!(writes < reads, "writes={writes} reads={reads}");
    }

    #[test]
    fn hot_spot_biases_access() {
        let mut w = HotSpot::new(9, RemoteId(0), 0.9, 0.01);
        let hot = (0..1000).filter(|_| w.enable(RemoteId(0), "access")).count();
        let cold = (0..1000).filter(|_| w.enable(RemoteId(1), "access")).count();
        assert!(hot > 10 * cold.max(1), "hot={hot} cold={cold}");
    }

    #[test]
    fn always_enables_everything() {
        let mut w = Always;
        assert!(w.enable(RemoteId(3), "anything"));
    }
}
