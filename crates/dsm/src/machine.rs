//! The discrete-event DSM machine.
//!
//! One home node, `N` caching nodes, one cache line (the paper derives
//! protocols per line, §2 footnote), a reliable in-order network and a
//! coherence engine executing a refined protocol. The machine is the
//! verified [`ccr_runtime::asynch::AsyncSystem`] driven by a scheduler,
//! with autonomous CPU decisions (`tau` branches tagged `"access"`,
//! `"write"`, `"evict"`, ...) gated by a [`Workload`].

use crate::metrics::MachineReport;
use crate::workload::Workload;
use ccr_core::ids::{MsgType, ProcessId};
use ccr_core::refine::RefinedProtocol;
use ccr_runtime::asynch::{AsyncConfig, AsyncState, AsyncSystem};
use ccr_runtime::error::Result;
use ccr_runtime::sched::Scheduler;
use ccr_runtime::sim::Simulator;
use ccr_runtime::system::{LabelKind, TransitionSystem};
use ccr_trace::{NullSink, TraceEvent, TraceSink};
use std::time::Instant;

/// Machine parameters.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Number of caching nodes.
    pub n: u32,
    /// Executor configuration (home buffer size, link capacity, ...).
    pub asynch: AsyncConfig,
    /// Message types counted as completed *operations* (line acquisitions):
    /// e.g. `req` for migratory, `rreq`/`wreq` for invalidate.
    pub ops: Vec<MsgType>,
    /// Maximum steps per run.
    pub max_steps: u64,
}

impl MachineConfig {
    /// Standard configuration: derive the op set from well-known request
    /// names present in the spec (`req`, `rreq`, `wreq`).
    pub fn standard(refined: &RefinedProtocol, n: u32, max_steps: u64) -> Self {
        let ops = ["req", "rreq", "wreq"]
            .iter()
            .filter_map(|name| refined.spec.msg_by_name(name))
            .collect();
        Self { n, asynch: AsyncConfig::default(), ops, max_steps }
    }
}

/// The machine harness.
pub struct Machine<'a> {
    refined: &'a RefinedProtocol,
    config: MachineConfig,
}

impl<'a> Machine<'a> {
    /// Creates a machine over a refined protocol.
    pub fn new(refined: &'a RefinedProtocol, config: MachineConfig) -> Self {
        Self { refined, config }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs the machine to completion of the step budget, returning a
    /// report labelled with `variant`.
    pub fn run(
        &self,
        variant: &str,
        workload: &mut dyn Workload,
        sched: &mut dyn Scheduler,
    ) -> Result<MachineReport> {
        self.run_observed(variant, workload, sched, &mut NullSink)
    }

    /// [`Machine::run`] narrating every fired transition to `sink`; the
    /// terminal [`TraceEvent::Outcome`] is emitted and the sink flushed
    /// before returning. With a [`NullSink`] this is `run` exactly.
    pub fn run_observed(
        &self,
        variant: &str,
        workload: &mut dyn Workload,
        sched: &mut dyn Scheduler,
        sink: &mut dyn TraceSink,
    ) -> Result<MachineReport> {
        let started = Instant::now();
        let sys = AsyncSystem::new(self.refined, self.config.n, self.config.asynch.clone());
        let mut sim = Simulator::new(&sys);
        let mut steps = 0u64;
        let mut idle = false;
        let mut ops = 0u64;
        let mut deadlocked = false;
        while steps < self.config.max_steps {
            let fired = sim.step_observed(
                sched,
                |label| {
                    if label.kind != LabelKind::Tau {
                        return true;
                    }
                    match (&label.tag, label.actor) {
                        (Some(tag), ProcessId::Remote(r)) => workload.enable(r, tag),
                        _ => true,
                    }
                },
                sink,
            )?;
            match fired {
                Some(label) => {
                    steps += 1;
                    if let Some((_, msg)) = label.completes {
                        if self.config.ops.contains(&msg) {
                            ops += 1;
                        }
                    }
                }
                None => {
                    // Nothing enabled under this workload right now. The
                    // protocol machinery is quiescent; only the workload can
                    // wake it. Count as an idle poll and keep going so that
                    // probabilistic workloads get more chances.
                    steps += 1;
                    idle = true;
                    // Distinguish true deadlock (no transitions at all, even
                    // unfiltered) from workload-imposed quiescence.
                    let mut probe = Vec::new();
                    sys.successors(sim.state(), &mut probe)?;
                    if probe.is_empty() {
                        deadlocked = true;
                        break;
                    }
                }
            }
        }
        let _ = idle;
        if sink.enabled() {
            sink.emit(&TraceEvent::Outcome {
                outcome: if deadlocked { "Deadlock".into() } else { "Complete".into() },
                detail: None,
                steps: Some(steps),
            });
            sink.flush();
        }
        Ok(MachineReport::from_stats(
            &self.refined.spec.name,
            variant,
            self.config.n,
            steps,
            deadlocked,
            ops,
            sim.stats(),
            started.elapsed(),
        ))
    }

    /// [`Machine::run_observed`] through a fault harness: `harness`
    /// injects its plan's wire faults during the run and recovers dropped
    /// messages by timeout and retransmission. The report carries the
    /// harness's [`ccr_faults::FaultStats`].
    ///
    /// With an inactive plan this produces the same transitions, trace
    /// bytes and counters as [`Machine::run_observed`] — fault handling is
    /// zero-cost when off.
    pub fn run_faulted(
        &self,
        variant: &str,
        workload: &mut dyn Workload,
        sched: &mut dyn Scheduler,
        harness: &mut ccr_runtime::FaultHarness,
        sink: &mut dyn TraceSink,
    ) -> Result<MachineReport> {
        let started = Instant::now();
        let sys = AsyncSystem::new(self.refined, self.config.n, self.config.asynch.clone());
        let mut sim = Simulator::new(&sys);
        let mut steps = 0u64;
        let mut ops = 0u64;
        let mut deadlocked = false;
        while steps < self.config.max_steps {
            let fired = harness.step(
                &mut sim,
                sched,
                |label| {
                    if label.kind != LabelKind::Tau {
                        return true;
                    }
                    match (&label.tag, label.actor) {
                        (Some(tag), ProcessId::Remote(r)) => workload.enable(r, tag),
                        _ => true,
                    }
                },
                sink,
            )?;
            match fired {
                Some(label) => {
                    steps += 1;
                    if let Some((_, msg)) = label.completes {
                        if self.config.ops.contains(&msg) {
                            ops += 1;
                        }
                    }
                }
                None => {
                    steps += 1;
                    if harness.pending_recoveries() > 0 {
                        // A quiet network that still owes retransmissions
                        // is recovering, not stuck.
                        continue;
                    }
                    let mut probe = Vec::new();
                    sys.successors(sim.state(), &mut probe)?;
                    if probe.is_empty() {
                        deadlocked = true;
                        break;
                    }
                }
            }
        }
        if sink.enabled() {
            sink.emit(&TraceEvent::Outcome {
                outcome: if deadlocked { "Deadlock".into() } else { "Complete".into() },
                detail: None,
                steps: Some(steps),
            });
            sink.flush();
        }
        Ok(MachineReport::from_stats(
            &self.refined.spec.name,
            variant,
            self.config.n,
            steps,
            deadlocked,
            ops,
            sim.stats(),
            started.elapsed(),
        )
        .with_faults(*harness.stats()))
    }

    /// Runs and returns the final asynchronous state alongside the report
    /// (used by tests that inspect the end configuration).
    pub fn run_with_state(
        &self,
        variant: &str,
        workload: &mut dyn Workload,
        sched: &mut dyn Scheduler,
    ) -> Result<(MachineReport, AsyncState)> {
        let started = Instant::now();
        let sys = AsyncSystem::new(self.refined, self.config.n, self.config.asynch.clone());
        let mut sim = Simulator::new(&sys);
        let mut steps = 0u64;
        let mut ops = 0u64;
        while steps < self.config.max_steps {
            let fired = sim.step_filtered(sched, |label| {
                if label.kind != LabelKind::Tau {
                    return true;
                }
                match (&label.tag, label.actor) {
                    (Some(tag), ProcessId::Remote(r)) => workload.enable(r, tag),
                    _ => true,
                }
            })?;
            steps += 1;
            if let Some(label) = fired {
                if let Some((_, msg)) = label.completes {
                    if self.config.ops.contains(&msg) {
                        ops += 1;
                    }
                }
            }
        }
        let report = MachineReport::from_stats(
            &self.refined.spec.name,
            variant,
            self.config.n,
            steps,
            false,
            ops,
            sim.stats(),
            started.elapsed(),
        );
        Ok((report, sim.state().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Always, Migrating, ProducerConsumer};
    use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
    use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
    use ccr_runtime::sched::RandomSched;

    #[test]
    fn migratory_machine_makes_progress() {
        let refined = migratory_refined(&MigratoryOptions::default());
        let config = MachineConfig::standard(&refined, 4, 20_000);
        let machine = Machine::new(&refined, config);
        let mut wl = Migrating::new(11, 0.8, 0.5);
        let mut sched = RandomSched::new(12);
        let report = machine.run("derived", &mut wl, &mut sched).unwrap();
        assert!(!report.deadlocked);
        assert!(report.ops > 100, "ops={}", report.ops);
        assert!(report.msgs_per_op.unwrap() < 8.0);
    }

    #[test]
    fn invalidate_machine_runs_producer_consumer() {
        let refined = invalidate_refined(&InvalidateOptions::default());
        let config = MachineConfig::standard(&refined, 4, 30_000);
        let machine = Machine::new(&refined, config);
        let mut wl = ProducerConsumer::new(21, ccr_core::ids::RemoteId(0), 0.7, 0.3);
        let mut sched = RandomSched::new(22);
        let report = machine.run("derived", &mut wl, &mut sched).unwrap();
        assert!(!report.deadlocked);
        assert!(report.ops > 50, "ops={}", report.ops);
    }

    #[test]
    fn unconstrained_workload_still_safe() {
        let refined = migratory_refined(&MigratoryOptions { data_domain: Some(4), cpu_gate: true });
        let config = MachineConfig::standard(&refined, 3, 10_000);
        let machine = Machine::new(&refined, config);
        let mut wl = Always;
        let mut sched = RandomSched::new(5);
        let report = machine.run("derived", &mut wl, &mut sched).unwrap();
        assert!(!report.deadlocked);
        assert!(report.ops > 0);
    }

    #[test]
    fn observed_run_narrates_steps_and_outcome() {
        use ccr_trace::RingSink;
        let refined = migratory_refined(&MigratoryOptions::default());
        let config = MachineConfig::standard(&refined, 2, 500);
        let machine = Machine::new(&refined, config);
        let mut wl = Always;
        let mut sched = RandomSched::new(7);
        let mut sink = RingSink::new(4096);
        let report = machine.run_observed("derived", &mut wl, &mut sched, &mut sink).unwrap();
        assert!(report.elapsed > std::time::Duration::ZERO);
        let events = sink.into_events();
        assert!(
            events.iter().filter(|e| matches!(e, TraceEvent::Step { .. })).count() > 0,
            "steps are narrated"
        );
        assert!(matches!(
            events.last(),
            Some(TraceEvent::Outcome { steps: Some(s), .. }) if *s == report.steps
        ));
    }

    #[test]
    fn faulted_migratory_run_completes_and_recovers() {
        use ccr_faults::{FaultPlan, FaultRates, FaultSpec};
        use ccr_runtime::FaultHarness;
        let refined = migratory_refined(&MigratoryOptions::default());
        let config = MachineConfig::standard(&refined, 4, 30_000);
        let machine = Machine::new(&refined, config);
        let mut wl = Migrating::new(11, 0.8, 0.5);
        let mut sched = RandomSched::new(12);
        let plan = FaultPlan::new(
            FaultSpec::with_rates(FaultRates { drop: 0.05, dup: 0.02, ..FaultRates::default() }),
            7,
        );
        let mut harness = FaultHarness::new(plan);
        let report = machine
            .run_faulted("derived", &mut wl, &mut sched, &mut harness, &mut ccr_trace::NullSink)
            .unwrap();
        assert!(!report.deadlocked, "faults must not wedge the machine");
        assert!(report.ops > 100, "ops={}", report.ops);
        let faults = report.faults.expect("faulted run reports counters");
        assert!(faults.drops > 0 && faults.recovered > 0, "{faults:?}");
    }

    #[test]
    fn inactive_fault_harness_reproduces_plain_run() {
        use ccr_faults::FaultPlan;
        use ccr_runtime::FaultHarness;
        use ccr_trace::RingSink;
        let refined = migratory_refined(&MigratoryOptions::default());
        let run = |faulted: bool| -> (MachineReport, Vec<TraceEvent>) {
            let config = MachineConfig::standard(&refined, 3, 4_000);
            let machine = Machine::new(&refined, config);
            let mut wl = Migrating::new(5, 0.8, 0.5);
            let mut sched = RandomSched::new(6);
            let mut sink = RingSink::new(1 << 16);
            let report = if faulted {
                let mut harness = FaultHarness::new(FaultPlan::inactive());
                machine
                    .run_faulted("derived", &mut wl, &mut sched, &mut harness, &mut sink)
                    .unwrap()
            } else {
                machine.run_observed("derived", &mut wl, &mut sched, &mut sink).unwrap()
            };
            (report, sink.into_events())
        };
        let (plain, plain_events) = run(false);
        let (faulted, faulted_events) = run(true);
        assert_eq!(plain_events, faulted_events, "traces must match byte for byte");
        assert_eq!(plain.steps, faulted.steps);
        assert_eq!(plain.ops, faulted.ops);
        assert_eq!(plain.messages, faulted.messages);
        assert_eq!(plain.msgs_per_op, faulted.msgs_per_op);
        assert_eq!(faulted.faults, Some(ccr_faults::FaultStats::default()));
    }

    #[test]
    fn op_counting_matches_request_names() {
        let refined = invalidate_refined(&InvalidateOptions::default());
        let config = MachineConfig::standard(&refined, 2, 1);
        assert_eq!(config.ops.len(), 2, "rreq and wreq");
        let mig = migratory_refined(&MigratoryOptions::default());
        let config = MachineConfig::standard(&mig, 2, 1);
        assert_eq!(config.ops.len(), 1, "req only");
    }
}
