//! Machine-level result reporting.

use ccr_faults::FaultStats;
use ccr_metrics::Registry;
use ccr_runtime::stats::MsgStats;
use serde::Serialize;
use std::time::Duration;

/// Outcome of a machine run, serializable for the experiment harness.
/// The fault fields are *omitted* — not `null` — when absent, so
/// plain-run reports stay byte-identical to their pre-fault form.
#[derive(Debug, Clone, Serialize)]
pub struct MachineReport {
    /// Protocol name.
    pub protocol: String,
    /// Variant label (e.g. `"derived"`, `"derived-noopt"`, `"hand"`).
    pub variant: String,
    /// Number of remote nodes.
    pub n: u32,
    /// Steps executed.
    pub steps: u64,
    /// True if the machine wedged (no enabled transition).
    pub deadlocked: bool,
    /// Completed line acquisitions (the operations of interest).
    pub ops: u64,
    /// Total wire messages.
    pub messages: u64,
    /// Acks sent.
    pub acks: u64,
    /// Nacks sent (each implies a retransmission).
    pub nacks: u64,
    /// Messages per completed acquisition.
    pub msgs_per_op: Option<f64>,
    /// Jain fairness index over per-remote acquisitions.
    pub fairness: Option<f64>,
    /// Remotes that completed nothing.
    pub starved: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Highest post-enqueue occupancy observed on any link — the margin
    /// against the bounded-buffer (`LinkOverflow`) assumption.
    pub max_link_occupancy: u32,
    /// Fault-injection counters when the run went through the fault
    /// harness (`None` for plain runs, keeping their reports unchanged).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultStats>,
    /// `msgs_per_op` of this run divided by the same ratio of a clean
    /// baseline run — how much the faults cost per completed acquisition.
    /// Set by [`MachineReport::with_degradation_vs`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub degradation: Option<f64>,
}

impl MachineReport {
    /// Builds a report from raw counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_stats(
        protocol: &str,
        variant: &str,
        n: u32,
        steps: u64,
        deadlocked: bool,
        ops: u64,
        stats: &MsgStats,
        elapsed: Duration,
    ) -> Self {
        Self {
            protocol: protocol.to_owned(),
            variant: variant.to_owned(),
            n,
            steps,
            deadlocked,
            ops,
            messages: stats.total_messages(),
            acks: stats.acks,
            nacks: stats.nacks,
            msgs_per_op: if ops == 0 {
                None
            } else {
                Some(stats.total_messages() as f64 / ops as f64)
            },
            fairness: stats.jain_fairness(n as usize),
            starved: stats.starved(n as usize),
            elapsed,
            max_link_occupancy: stats.max_link_occupancy(),
            faults: None,
            degradation: None,
        }
    }

    /// Attaches fault-injection counters (builder style).
    pub fn with_faults(mut self, faults: FaultStats) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The ratio of this run's messages-per-operation to `baseline`'s,
    /// when both are measurable: 1.0 means the faults were free, 1.3 means
    /// each acquisition cost 30% more messages.
    pub fn degradation_vs(&self, baseline: &MachineReport) -> Option<f64> {
        match (self.msgs_per_op, baseline.msgs_per_op) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// Records [`MachineReport::degradation_vs`] `baseline` on the report.
    pub fn with_degradation_vs(mut self, baseline: &MachineReport) -> Self {
        self.degradation = self.degradation_vs(baseline);
        self
    }

    /// Folds this report's counters into the shared metrics registry
    /// (the `dsm_*` family), so machine runs land in the same snapshot
    /// as the model checker's `mc_*` series. Counters accumulate across
    /// runs; the link high-water gauge keeps its maximum. A no-op on a
    /// null registry.
    pub fn publish(&self, reg: &Registry) {
        if !reg.enabled() {
            return;
        }
        reg.counter("dsm_runs_total", "Machine runs folded into this registry").inc();
        reg.counter("dsm_steps_total", "Scheduler steps executed").add(self.steps);
        reg.counter("dsm_ops_total", "Completed line acquisitions").add(self.ops);
        reg.counter("dsm_messages_total", "Wire messages sent").add(self.messages);
        reg.counter("dsm_acks_total", "Acks sent").add(self.acks);
        reg.counter("dsm_nacks_total", "Nacks sent").add(self.nacks);
        reg.gauge("dsm_max_link_occupancy", "Highest post-enqueue link occupancy seen")
            .record_max(u64::from(self.max_link_occupancy));
        if self.deadlocked {
            reg.counter("dsm_deadlocks_total", "Runs that wedged with no enabled transition").inc();
        }
        if let Some(f) = &self.faults {
            reg.counter("dsm_fault_drops_total", "Messages dropped by the fault plan").add(f.drops);
            reg.counter("dsm_fault_dups_total", "Messages duplicated by the fault plan")
                .add(f.dups);
            reg.counter("dsm_fault_reorders_total", "Adjacent-pair reorders performed")
                .add(f.reorders);
            reg.counter("dsm_fault_delays_total", "Per-step delivery delays imposed").add(f.delays);
            reg.counter(
                "dsm_retransmits_total",
                "Retransmissions attempted by the recovery harness",
            )
            .add(f.retransmits);
            reg.counter("dsm_recovered_total", "Dropped messages restored to their link")
                .add(f.recovered);
            reg.counter("dsm_absorbed_total", "Duplicate copies absorbed by receiver-side dedup")
                .add(f.absorbed);
        }
    }

    /// Steps executed per wall-clock second, when measurable.
    pub fn steps_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            Some(self.steps as f64 / secs)
        } else {
            None
        }
    }

    /// One-line human-readable summary. Fault counters are appended only
    /// when present, so plain runs print exactly as before.
    pub fn summary(&self) -> String {
        let mut line = self.base_summary();
        if let Some(f) = &self.faults {
            line.push_str(&format!(
                " | faults: drop={} dup={} reorder={} delay={} rexmit={} recovered={} absorbed={}",
                f.drops, f.dups, f.reorders, f.delays, f.retransmits, f.recovered, f.absorbed
            ));
        }
        if let Some(d) = self.degradation {
            line.push_str(&format!(" degr={d:.2}x"));
        }
        line
    }

    fn base_summary(&self) -> String {
        format!(
            "{:<12} {:<14} n={:<3} ops={:<7} msgs={:<8} acks={:<6} nacks={:<6} msgs/op={} fair={} starved={} linkhw={} secs={:.3} steps/s={}",
            self.protocol,
            self.variant,
            self.n,
            self.ops,
            self.messages,
            self.acks,
            self.nacks,
            self.msgs_per_op.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            self.fairness.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into()),
            self.starved,
            self.max_link_occupancy,
            self.elapsed.as_secs_f64(),
            self.steps_per_sec().map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_empty_stats() {
        let r = MachineReport::from_stats(
            "migratory",
            "derived",
            4,
            100,
            false,
            0,
            &MsgStats::new(),
            Duration::from_millis(50),
        );
        assert_eq!(r.msgs_per_op, None);
        assert_eq!(r.starved, 4);
        assert!(r.summary().contains("migratory"));
        assert!(r.summary().contains("secs=0.050"), "{}", r.summary());
        assert_eq!(r.steps_per_sec(), Some(2000.0));
    }

    #[test]
    fn report_computes_ratios() {
        let mut stats = MsgStats::new();
        stats.acks = 10;
        stats.nacks = 2;
        let r =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        assert_eq!(r.messages, 12);
        assert_eq!(r.msgs_per_op, Some(2.0));
        assert_eq!(r.steps_per_sec(), None, "zero elapsed is unmeasurable");
    }

    #[test]
    fn fault_counters_and_degradation_are_opt_in() {
        let mut stats = MsgStats::new();
        stats.acks = 12;
        let clean =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        assert!(clean.faults.is_none());
        assert!(!clean.summary().contains("faults:"), "{}", clean.summary());

        let mut stats = MsgStats::new();
        stats.acks = 18;
        let faulted =
            MachineReport::from_stats("token", "derived", 2, 70, false, 6, &stats, Duration::ZERO)
                .with_faults(FaultStats { drops: 3, recovered: 3, ..FaultStats::default() })
                .with_degradation_vs(&clean);
        assert_eq!(faulted.degradation, Some(1.5));
        let line = faulted.summary();
        assert!(line.contains("drop=3") && line.contains("degr=1.50x"), "{line}");

        let ser = |r: &MachineReport| serde::json::to_string(r);
        assert!(
            !ser(&clean).contains("faults"),
            "plain reports must serialize without fault fields: {}",
            ser(&clean)
        );
        assert!(ser(&faulted).contains("\"recovered\":3"), "{}", ser(&faulted));
    }

    /// The hand-written serializer the derive replaced, kept verbatim as
    /// a golden reference: the derived output must match byte for byte,
    /// including omitting (not nulling) the absent fault fields.
    fn hand_serialize(r: &MachineReport) -> String {
        let mut s = serde::Serializer::new();
        let mut m = s.begin_map();
        m.entry("protocol", r.protocol.as_str());
        m.entry("variant", r.variant.as_str());
        m.entry("n", &r.n);
        m.entry("steps", &r.steps);
        m.entry("deadlocked", &r.deadlocked);
        m.entry("ops", &r.ops);
        m.entry("messages", &r.messages);
        m.entry("acks", &r.acks);
        m.entry("nacks", &r.nacks);
        m.entry("msgs_per_op", &r.msgs_per_op);
        m.entry("fairness", &r.fairness);
        m.entry("starved", &r.starved);
        m.entry("elapsed", &r.elapsed);
        m.entry("max_link_occupancy", &r.max_link_occupancy);
        if let Some(f) = &r.faults {
            m.entry("faults", f);
        }
        if let Some(d) = r.degradation {
            m.entry("degradation", &d);
        }
        m.end();
        s.into_string()
    }

    #[test]
    fn derived_serializer_is_byte_compatible_with_hand_written() {
        let mut stats = MsgStats::new();
        stats.acks = 12;
        let clean =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        // Omitted-field case: no faults, no degradation.
        assert_eq!(serde::json::to_string(&clean), hand_serialize(&clean));
        assert!(!serde::json::to_string(&clean).contains("faults"));

        // Faults present, degradation absent.
        let faulted = clean.clone().with_faults(FaultStats {
            drops: 3,
            recovered: 3,
            ..FaultStats::default()
        });
        assert_eq!(serde::json::to_string(&faulted), hand_serialize(&faulted));

        // Both present (and an unmeasurable ratio staying null).
        let degraded = faulted.clone().with_degradation_vs(&clean);
        assert_eq!(serde::json::to_string(&degraded), hand_serialize(&degraded));

        // Degradation present without faults.
        let mut odd = clean.clone();
        odd.degradation = Some(1.25);
        assert_eq!(serde::json::to_string(&odd), hand_serialize(&odd));
        assert!(!serde::json::to_string(&odd).contains("faults"));
        assert!(serde::json::to_string(&odd).contains("\"degradation\":1.25"));
    }

    #[test]
    fn publish_folds_counters_into_registry() {
        let reg = ccr_metrics::Registry::new();
        let mut stats = MsgStats::new();
        stats.acks = 10;
        stats.nacks = 2;
        let report =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO)
                .with_faults(FaultStats { drops: 3, retransmits: 4, ..FaultStats::default() });
        report.publish(&reg);
        report.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dsm_runs_total"], 2);
        assert_eq!(snap.counters["dsm_steps_total"], 100);
        assert_eq!(snap.counters["dsm_messages_total"], 24);
        assert_eq!(snap.counters["dsm_fault_drops_total"], 6);
        assert_eq!(snap.counters["dsm_retransmits_total"], 8);
        // A null registry stays empty.
        let null = ccr_metrics::Registry::disabled();
        report.publish(&null);
        assert!(null.snapshot().counters.is_empty());
    }

    #[test]
    fn report_surfaces_link_high_water() {
        use ccr_core::ids::{ProcessId, RemoteId};
        let mut stats = MsgStats::new();
        stats.record_occupancy(ProcessId::Remote(RemoteId(0)), ProcessId::Home, 3);
        stats.record_occupancy(ProcessId::Home, ProcessId::Remote(RemoteId(1)), 1);
        let r = MachineReport::from_stats(
            "token",
            "derived",
            2,
            50,
            false,
            6,
            &stats,
            Duration::from_secs(1),
        );
        assert_eq!(r.max_link_occupancy, 3);
        assert!(r.summary().contains("linkhw=3"), "{}", r.summary());
    }
}
