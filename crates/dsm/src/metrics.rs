//! Machine-level result reporting.

use ccr_faults::FaultStats;
use ccr_runtime::stats::MsgStats;
use serde::{Serialize, Serializer};
use std::time::Duration;

/// Outcome of a machine run, serializable for the experiment harness.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Protocol name.
    pub protocol: String,
    /// Variant label (e.g. `"derived"`, `"derived-noopt"`, `"hand"`).
    pub variant: String,
    /// Number of remote nodes.
    pub n: u32,
    /// Steps executed.
    pub steps: u64,
    /// True if the machine wedged (no enabled transition).
    pub deadlocked: bool,
    /// Completed line acquisitions (the operations of interest).
    pub ops: u64,
    /// Total wire messages.
    pub messages: u64,
    /// Acks sent.
    pub acks: u64,
    /// Nacks sent (each implies a retransmission).
    pub nacks: u64,
    /// Messages per completed acquisition.
    pub msgs_per_op: Option<f64>,
    /// Jain fairness index over per-remote acquisitions.
    pub fairness: Option<f64>,
    /// Remotes that completed nothing.
    pub starved: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Highest post-enqueue occupancy observed on any link — the margin
    /// against the bounded-buffer (`LinkOverflow`) assumption.
    pub max_link_occupancy: u32,
    /// Fault-injection counters when the run went through the fault
    /// harness (`None` for plain runs, keeping their reports unchanged).
    pub faults: Option<FaultStats>,
    /// `msgs_per_op` of this run divided by the same ratio of a clean
    /// baseline run — how much the faults cost per completed acquisition.
    /// Set by [`MachineReport::with_degradation_vs`].
    pub degradation: Option<f64>,
}

// Hand-written so the fault fields are *omitted* — not `null` — when
// absent: plain-run reports stay byte-identical to their pre-fault form.
impl Serialize for MachineReport {
    fn serialize(&self, s: &mut Serializer) {
        let mut m = s.begin_map();
        m.entry("protocol", self.protocol.as_str());
        m.entry("variant", self.variant.as_str());
        m.entry("n", &self.n);
        m.entry("steps", &self.steps);
        m.entry("deadlocked", &self.deadlocked);
        m.entry("ops", &self.ops);
        m.entry("messages", &self.messages);
        m.entry("acks", &self.acks);
        m.entry("nacks", &self.nacks);
        m.entry("msgs_per_op", &self.msgs_per_op);
        m.entry("fairness", &self.fairness);
        m.entry("starved", &self.starved);
        m.entry("elapsed", &self.elapsed);
        m.entry("max_link_occupancy", &self.max_link_occupancy);
        if let Some(f) = &self.faults {
            m.entry("faults", f);
        }
        if let Some(d) = self.degradation {
            m.entry("degradation", &d);
        }
        m.end();
    }
}

impl MachineReport {
    /// Builds a report from raw counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_stats(
        protocol: &str,
        variant: &str,
        n: u32,
        steps: u64,
        deadlocked: bool,
        ops: u64,
        stats: &MsgStats,
        elapsed: Duration,
    ) -> Self {
        Self {
            protocol: protocol.to_owned(),
            variant: variant.to_owned(),
            n,
            steps,
            deadlocked,
            ops,
            messages: stats.total_messages(),
            acks: stats.acks,
            nacks: stats.nacks,
            msgs_per_op: if ops == 0 {
                None
            } else {
                Some(stats.total_messages() as f64 / ops as f64)
            },
            fairness: stats.jain_fairness(n as usize),
            starved: stats.starved(n as usize),
            elapsed,
            max_link_occupancy: stats.max_link_occupancy(),
            faults: None,
            degradation: None,
        }
    }

    /// Attaches fault-injection counters (builder style).
    pub fn with_faults(mut self, faults: FaultStats) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The ratio of this run's messages-per-operation to `baseline`'s,
    /// when both are measurable: 1.0 means the faults were free, 1.3 means
    /// each acquisition cost 30% more messages.
    pub fn degradation_vs(&self, baseline: &MachineReport) -> Option<f64> {
        match (self.msgs_per_op, baseline.msgs_per_op) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        }
    }

    /// Records [`MachineReport::degradation_vs`] `baseline` on the report.
    pub fn with_degradation_vs(mut self, baseline: &MachineReport) -> Self {
        self.degradation = self.degradation_vs(baseline);
        self
    }

    /// Steps executed per wall-clock second, when measurable.
    pub fn steps_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            Some(self.steps as f64 / secs)
        } else {
            None
        }
    }

    /// One-line human-readable summary. Fault counters are appended only
    /// when present, so plain runs print exactly as before.
    pub fn summary(&self) -> String {
        let mut line = self.base_summary();
        if let Some(f) = &self.faults {
            line.push_str(&format!(
                " | faults: drop={} dup={} reorder={} delay={} rexmit={} recovered={} absorbed={}",
                f.drops, f.dups, f.reorders, f.delays, f.retransmits, f.recovered, f.absorbed
            ));
        }
        if let Some(d) = self.degradation {
            line.push_str(&format!(" degr={d:.2}x"));
        }
        line
    }

    fn base_summary(&self) -> String {
        format!(
            "{:<12} {:<14} n={:<3} ops={:<7} msgs={:<8} acks={:<6} nacks={:<6} msgs/op={} fair={} starved={} linkhw={} secs={:.3} steps/s={}",
            self.protocol,
            self.variant,
            self.n,
            self.ops,
            self.messages,
            self.acks,
            self.nacks,
            self.msgs_per_op.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            self.fairness.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into()),
            self.starved,
            self.max_link_occupancy,
            self.elapsed.as_secs_f64(),
            self.steps_per_sec().map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_empty_stats() {
        let r = MachineReport::from_stats(
            "migratory",
            "derived",
            4,
            100,
            false,
            0,
            &MsgStats::new(),
            Duration::from_millis(50),
        );
        assert_eq!(r.msgs_per_op, None);
        assert_eq!(r.starved, 4);
        assert!(r.summary().contains("migratory"));
        assert!(r.summary().contains("secs=0.050"), "{}", r.summary());
        assert_eq!(r.steps_per_sec(), Some(2000.0));
    }

    #[test]
    fn report_computes_ratios() {
        let mut stats = MsgStats::new();
        stats.acks = 10;
        stats.nacks = 2;
        let r =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        assert_eq!(r.messages, 12);
        assert_eq!(r.msgs_per_op, Some(2.0));
        assert_eq!(r.steps_per_sec(), None, "zero elapsed is unmeasurable");
    }

    #[test]
    fn fault_counters_and_degradation_are_opt_in() {
        let mut stats = MsgStats::new();
        stats.acks = 12;
        let clean =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        assert!(clean.faults.is_none());
        assert!(!clean.summary().contains("faults:"), "{}", clean.summary());

        let mut stats = MsgStats::new();
        stats.acks = 18;
        let faulted =
            MachineReport::from_stats("token", "derived", 2, 70, false, 6, &stats, Duration::ZERO)
                .with_faults(FaultStats { drops: 3, recovered: 3, ..FaultStats::default() })
                .with_degradation_vs(&clean);
        assert_eq!(faulted.degradation, Some(1.5));
        let line = faulted.summary();
        assert!(line.contains("drop=3") && line.contains("degr=1.50x"), "{line}");

        let ser = |r: &MachineReport| {
            let mut s = Serializer::new();
            r.serialize(&mut s);
            s.into_string()
        };
        assert!(
            !ser(&clean).contains("faults"),
            "plain reports must serialize without fault fields: {}",
            ser(&clean)
        );
        assert!(ser(&faulted).contains("\"recovered\":3"), "{}", ser(&faulted));
    }

    #[test]
    fn report_surfaces_link_high_water() {
        use ccr_core::ids::{ProcessId, RemoteId};
        let mut stats = MsgStats::new();
        stats.record_occupancy(ProcessId::Remote(RemoteId(0)), ProcessId::Home, 3);
        stats.record_occupancy(ProcessId::Home, ProcessId::Remote(RemoteId(1)), 1);
        let r = MachineReport::from_stats(
            "token",
            "derived",
            2,
            50,
            false,
            6,
            &stats,
            Duration::from_secs(1),
        );
        assert_eq!(r.max_link_occupancy, 3);
        assert!(r.summary().contains("linkhw=3"), "{}", r.summary());
    }
}
