//! Machine-level result reporting.

use ccr_runtime::stats::MsgStats;
use serde::Serialize;
use std::time::Duration;

/// Outcome of a machine run, serializable for the experiment harness.
#[derive(Debug, Clone, Serialize)]
pub struct MachineReport {
    /// Protocol name.
    pub protocol: String,
    /// Variant label (e.g. `"derived"`, `"derived-noopt"`, `"hand"`).
    pub variant: String,
    /// Number of remote nodes.
    pub n: u32,
    /// Steps executed.
    pub steps: u64,
    /// True if the machine wedged (no enabled transition).
    pub deadlocked: bool,
    /// Completed line acquisitions (the operations of interest).
    pub ops: u64,
    /// Total wire messages.
    pub messages: u64,
    /// Acks sent.
    pub acks: u64,
    /// Nacks sent (each implies a retransmission).
    pub nacks: u64,
    /// Messages per completed acquisition.
    pub msgs_per_op: Option<f64>,
    /// Jain fairness index over per-remote acquisitions.
    pub fairness: Option<f64>,
    /// Remotes that completed nothing.
    pub starved: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Highest post-enqueue occupancy observed on any link — the margin
    /// against the bounded-buffer (`LinkOverflow`) assumption.
    pub max_link_occupancy: u32,
}

impl MachineReport {
    /// Builds a report from raw counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_stats(
        protocol: &str,
        variant: &str,
        n: u32,
        steps: u64,
        deadlocked: bool,
        ops: u64,
        stats: &MsgStats,
        elapsed: Duration,
    ) -> Self {
        Self {
            protocol: protocol.to_owned(),
            variant: variant.to_owned(),
            n,
            steps,
            deadlocked,
            ops,
            messages: stats.total_messages(),
            acks: stats.acks,
            nacks: stats.nacks,
            msgs_per_op: if ops == 0 {
                None
            } else {
                Some(stats.total_messages() as f64 / ops as f64)
            },
            fairness: stats.jain_fairness(n as usize),
            starved: stats.starved(n as usize),
            elapsed,
            max_link_occupancy: stats.max_link_occupancy(),
        }
    }

    /// Steps executed per wall-clock second, when measurable.
    pub fn steps_per_sec(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            Some(self.steps as f64 / secs)
        } else {
            None
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} {:<14} n={:<3} ops={:<7} msgs={:<8} acks={:<6} nacks={:<6} msgs/op={} fair={} starved={} linkhw={} secs={:.3} steps/s={}",
            self.protocol,
            self.variant,
            self.n,
            self.ops,
            self.messages,
            self.acks,
            self.nacks,
            self.msgs_per_op.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            self.fairness.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into()),
            self.starved,
            self.max_link_occupancy,
            self.elapsed.as_secs_f64(),
            self.steps_per_sec().map(|x| format!("{x:.0}")).unwrap_or_else(|| "-".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_empty_stats() {
        let r = MachineReport::from_stats(
            "migratory",
            "derived",
            4,
            100,
            false,
            0,
            &MsgStats::new(),
            Duration::from_millis(50),
        );
        assert_eq!(r.msgs_per_op, None);
        assert_eq!(r.starved, 4);
        assert!(r.summary().contains("migratory"));
        assert!(r.summary().contains("secs=0.050"), "{}", r.summary());
        assert_eq!(r.steps_per_sec(), Some(2000.0));
    }

    #[test]
    fn report_computes_ratios() {
        let mut stats = MsgStats::new();
        stats.acks = 10;
        stats.nacks = 2;
        let r =
            MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats, Duration::ZERO);
        assert_eq!(r.messages, 12);
        assert_eq!(r.msgs_per_op, Some(2.0));
        assert_eq!(r.steps_per_sec(), None, "zero elapsed is unmeasurable");
    }

    #[test]
    fn report_surfaces_link_high_water() {
        use ccr_core::ids::{ProcessId, RemoteId};
        let mut stats = MsgStats::new();
        stats.record_occupancy(ProcessId::Remote(RemoteId(0)), ProcessId::Home, 3);
        stats.record_occupancy(ProcessId::Home, ProcessId::Remote(RemoteId(1)), 1);
        let r = MachineReport::from_stats(
            "token",
            "derived",
            2,
            50,
            false,
            6,
            &stats,
            Duration::from_secs(1),
        );
        assert_eq!(r.max_link_occupancy, 3);
        assert!(r.summary().contains("linkhw=3"), "{}", r.summary());
    }
}
