//! Machine-level result reporting.

use ccr_runtime::stats::MsgStats;
use serde::Serialize;

/// Outcome of a machine run, serializable for the experiment harness.
#[derive(Debug, Clone, Serialize)]
pub struct MachineReport {
    /// Protocol name.
    pub protocol: String,
    /// Variant label (e.g. `"derived"`, `"derived-noopt"`, `"hand"`).
    pub variant: String,
    /// Number of remote nodes.
    pub n: u32,
    /// Steps executed.
    pub steps: u64,
    /// True if the machine wedged (no enabled transition).
    pub deadlocked: bool,
    /// Completed line acquisitions (the operations of interest).
    pub ops: u64,
    /// Total wire messages.
    pub messages: u64,
    /// Acks sent.
    pub acks: u64,
    /// Nacks sent (each implies a retransmission).
    pub nacks: u64,
    /// Messages per completed acquisition.
    pub msgs_per_op: Option<f64>,
    /// Jain fairness index over per-remote acquisitions.
    pub fairness: Option<f64>,
    /// Remotes that completed nothing.
    pub starved: usize,
}

impl MachineReport {
    /// Builds a report from raw counters.
    pub fn from_stats(
        protocol: &str,
        variant: &str,
        n: u32,
        steps: u64,
        deadlocked: bool,
        ops: u64,
        stats: &MsgStats,
    ) -> Self {
        Self {
            protocol: protocol.to_owned(),
            variant: variant.to_owned(),
            n,
            steps,
            deadlocked,
            ops,
            messages: stats.total_messages(),
            acks: stats.acks,
            nacks: stats.nacks,
            msgs_per_op: if ops == 0 {
                None
            } else {
                Some(stats.total_messages() as f64 / ops as f64)
            },
            fairness: stats.jain_fairness(n as usize),
            starved: stats.starved(n as usize),
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} {:<14} n={:<3} ops={:<7} msgs={:<8} acks={:<6} nacks={:<6} msgs/op={} fair={} starved={}",
            self.protocol,
            self.variant,
            self.n,
            self.ops,
            self.messages,
            self.acks,
            self.nacks,
            self.msgs_per_op.map(|x| format!("{x:.2}")).unwrap_or_else(|| "-".into()),
            self.fairness.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into()),
            self.starved,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_empty_stats() {
        let r = MachineReport::from_stats("migratory", "derived", 4, 100, false, 0, &MsgStats::new());
        assert_eq!(r.msgs_per_op, None);
        assert_eq!(r.starved, 4);
        assert!(r.summary().contains("migratory"));
    }

    #[test]
    fn report_computes_ratios() {
        let mut stats = MsgStats::new();
        stats.acks = 10;
        stats.nacks = 2;
        let r = MachineReport::from_stats("token", "derived", 2, 50, false, 6, &stats);
        assert_eq!(r.messages, 12);
        assert_eq!(r.msgs_per_op, Some(2.0));
    }
}
