//! # ccr-dsm — a distributed shared memory machine simulator
//!
//! The paper's protocols ran inside the Avalanche DSM multiprocessor. This
//! crate is our stand-in machine: `N` CPU nodes sharing one cache line
//! (the paper derives protocols per line) under a coherence engine
//! executing a *derived* asynchronous protocol.
//!
//! Two execution styles are provided:
//!
//! * [`machine::Machine`] — a deterministic discrete-event harness built on
//!   the verified executable semantics of `ccr-runtime`, driven by a
//!   [`workload::Workload`] that decides when CPUs access, write and evict.
//!   All message accounting (the paper's efficiency criterion) comes from
//!   here.
//! * [`threaded`] — a deployment-style runner: one OS thread per node,
//!   communicating over crossbeam channels through per-role protocol
//!   engines ([`engine::HomeEngine`], [`engine::RemoteEngine`]) that
//!   implement Tables 1 and 2 directly, the way a microcoded protocol
//!   processor would.
//!
//! The workloads mirror the sharing patterns DSM papers motivate:
//! migratory access, producer/consumer, read-mostly and hot-spot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod machine;
pub mod metrics;
pub mod threaded;
pub mod workload;

pub use machine::{Machine, MachineConfig};
pub use metrics::MachineReport;
pub use workload::{HotSpot, Migrating, ProducerConsumer, ReadMostly, Workload};
