//! Per-role protocol engines: Tables 1 and 2 in deployment form.
//!
//! `ccr-runtime`'s `AsyncSystem` is the *verification* semantics: it
//! enumerates every interleaving of a global configuration. A real DSM
//! node, by contrast, runs just its own side of the protocol — "directly,
//! for example in microcode" as the paper puts it (§2.3). These engines are
//! that per-node implementation: each owns only its local control state,
//! environment and buffer, consumes incoming wire messages, and emits
//! outgoing ones. The threaded runner wires them together over channels.
//!
//! The engines implement the same rule tables as the global executor; the
//! integration suite cross-checks the two by comparing message/operation
//! statistics over long runs.

use ccr_core::expr::EvalCtx;
use ccr_core::ids::{MsgType, ProcessId, RemoteId, StateId};
use ccr_core::process::{Branch, CommAction, Peer, StateKind};
use ccr_core::refine::RefinedProtocol;
use ccr_core::value::{Env, Value};
use ccr_runtime::asynch::BufEntry;
use ccr_runtime::error::{Result, RuntimeError};
use ccr_runtime::wire::Wire;
use std::collections::HashMap;

fn apply_assigns(
    br: &Branch,
    env: &mut Env,
    self_id: Option<RemoteId>,
    who: ProcessId,
) -> Result<()> {
    for (v, e) in &br.assigns {
        let val = e
            .eval(EvalCtx { env, self_id })
            .map_err(|source| RuntimeError::Eval { who, source })?;
        env.set(v.index(), val);
    }
    Ok(())
}

fn guard_ok(br: &Branch, ctx: EvalCtx<'_>, who: ProcessId) -> Result<bool> {
    match &br.guard {
        None => Ok(true),
        Some(g) => g.eval_bool(ctx).map_err(|source| RuntimeError::Eval { who, source }),
    }
}

/// Shared completion accounting.
#[derive(Debug, Default, Clone)]
pub struct Completions {
    counts: HashMap<MsgType, u64>,
}

impl Completions {
    fn bump(&mut self, m: MsgType) {
        *self.counts.entry(m).or_insert(0) += 1;
    }

    /// Completions of a given message type.
    pub fn of(&self, m: MsgType) -> u64 {
        self.counts.get(&m).copied().unwrap_or(0)
    }

    /// Total completions.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// Control phase of a per-role engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// At a spec state.
    At(StateId),
    /// In the transient state of an output branch.
    Awaiting {
        /// Origin state.
        state: StateId,
        /// Output branch.
        branch: u32,
        /// Awaited peer (only meaningful in the home engine).
        target: RemoteId,
    },
}

// ---------------------------------------------------------------------------
// Remote engine (Table 1)
// ---------------------------------------------------------------------------

/// The remote node's side of the refined protocol.
#[derive(Debug, Clone)]
pub struct RemoteEngine<'a> {
    refined: &'a RefinedProtocol,
    id: RemoteId,
    phase: Phase,
    env: Env,
    buf: Option<(MsgType, Option<Value>)>,
    /// Completed rendezvous in which this remote was the active party.
    pub completions: Completions,
}

impl<'a> RemoteEngine<'a> {
    /// Creates the engine in the protocol's initial state.
    pub fn new(refined: &'a RefinedProtocol, id: RemoteId) -> Self {
        Self {
            refined,
            id,
            phase: Phase::At(refined.spec.remote.initial),
            env: refined.spec.remote.initial_env(),
            buf: None,
            completions: Completions::default(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    fn who(&self) -> ProcessId {
        ProcessId::Remote(self.id)
    }

    fn branch(&self, state: StateId, branch: u32) -> Result<&'a Branch> {
        self.refined
            .spec
            .remote
            .state(state)
            .and_then(|s| s.branches.get(branch as usize))
            .ok_or(RuntimeError::BadState { who: self.who() })
    }

    /// Consumes one message from home; outgoing messages go to `out`.
    pub fn handle(&mut self, w: Wire, out: &mut Vec<Wire>) -> Result<()> {
        match w {
            Wire::Ack => match self.phase {
                Phase::Awaiting { state, branch, .. } => {
                    let br = self.branch(state, branch)?;
                    let msg = br.action.msg().ok_or(RuntimeError::BadState { who: self.who() })?;
                    let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                    apply_assigns(br, &mut env, Some(self.id), self.who())?;
                    self.env = env;
                    self.phase = Phase::At(br.target);
                    self.completions.bump(msg);
                    Ok(())
                }
                _ => Err(RuntimeError::UnexpectedResponse { who: self.who(), what: "ack" }),
            },
            Wire::Nack => match self.phase {
                Phase::Awaiting { state, .. } => {
                    self.phase = Phase::At(state);
                    Ok(())
                }
                _ => Err(RuntimeError::UnexpectedResponse { who: self.who(), what: "nack" }),
            },
            Wire::Req { msg, val } => {
                match self.phase {
                    Phase::Awaiting { state, branch, .. } => {
                        if self.refined.remote_reply.get(&(state, branch)) == Some(&msg) {
                            // Optimized reply completes both halves.
                            let br = self.branch(state, branch)?;
                            let reqmsg = br
                                .action
                                .msg()
                                .ok_or(RuntimeError::BadState { who: self.who() })?;
                            let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                            apply_assigns(br, &mut env, Some(self.id), self.who())?;
                            let mid = self
                                .refined
                                .spec
                                .remote
                                .state(br.target)
                                .ok_or(RuntimeError::BadState { who: self.who() })?;
                            let fb = mid
                                .branches
                                .iter()
                                .find(|b| {
                                    matches!(&b.action, CommAction::Recv { from: Peer::Home, msg: m, .. } if *m == msg)
                                })
                                .ok_or(RuntimeError::ReplyNotAwaited { who: self.who() })?;
                            if let CommAction::Recv { bind: Some(v), .. } = &fb.action {
                                if let Some(value) = val {
                                    env.set(v.index(), value);
                                }
                            }
                            apply_assigns(fb, &mut env, Some(self.id), self.who())?;
                            self.env = env;
                            self.phase = Phase::At(fb.target);
                            self.completions.bump(reqmsg);
                        }
                        // else: Table 1 row T3 — ignore.
                        Ok(())
                    }
                    Phase::At(_) => {
                        if self.buf.is_none() {
                            self.buf = Some((msg, val));
                        } else {
                            // One-slot buffer full: per the refinement this
                            // cannot happen (home serializes its requests);
                            // drop defensively matching T3 semantics.
                        }
                        let _ = out;
                        Ok(())
                    }
                }
            }
        }
    }

    /// Takes at most one autonomous step: serve the buffered home request
    /// (C3), issue our own request when a `Send` state is reached (C1/C2),
    /// or fire an enabled tau decision. `decide` gates tagged tau branches.
    /// Returns `true` if the engine changed state or emitted something.
    pub fn poll(
        &mut self,
        decide: &mut dyn FnMut(&str) -> bool,
        out: &mut Vec<Wire>,
    ) -> Result<bool> {
        let st_id = match self.phase {
            Phase::At(st) => st,
            Phase::Awaiting { .. } => return Ok(false),
        };
        let st = self
            .refined
            .spec
            .remote
            .state(st_id)
            .ok_or(RuntimeError::BadState { who: self.who() })?;
        let ctx = EvalCtx { env: &self.env, self_id: Some(self.id) };

        // Active state: send our request (C1/C2, deleting any buffered home
        // request).
        if st.kind == StateKind::Communication {
            if let Some((bidx, br)) = st.sends().next() {
                if guard_ok(br, ctx, self.who())? {
                    let (msg, payload) = match &br.action {
                        CommAction::Send { msg, payload, .. } => (*msg, payload),
                        _ => unreachable!(),
                    };
                    let val = match payload {
                        Some(e) => Some(
                            e.eval(ctx)
                                .map_err(|source| RuntimeError::Eval { who: self.who(), source })?,
                        ),
                        None => None,
                    };
                    self.buf = None;
                    out.push(Wire::Req { msg, val });
                    if self.refined.remote_fire_forget.contains(&(st_id, bidx)) {
                        let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                        apply_assigns(br, &mut env, Some(self.id), self.who())?;
                        self.env = env;
                        self.phase = Phase::At(br.target);
                        self.completions.bump(msg);
                    } else {
                        self.phase =
                            Phase::Awaiting { state: st_id, branch: bidx, target: RemoteId(0) };
                    }
                    return Ok(true);
                }
                return Ok(false);
            }
        }

        // Passive state: serve the buffered request (C3).
        if st.kind == StateKind::Communication {
            if let Some((msg, val)) = self.buf {
                for (_, rb) in st.recvs() {
                    let ok = matches!(&rb.action, CommAction::Recv { from: Peer::Home, msg: m, .. } if *m == msg)
                        && guard_ok(rb, ctx, self.who())?;
                    if !ok {
                        continue;
                    }
                    self.buf = None;
                    if !self.refined.remote_noack.contains(&msg) {
                        out.push(Wire::Ack);
                    }
                    let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                    if let CommAction::Recv { bind: Some(v), .. } = &rb.action {
                        if let Some(value) = val {
                            env.set(v.index(), value);
                        }
                    }
                    apply_assigns(rb, &mut env, Some(self.id), self.who())?;
                    self.env = env;
                    self.phase = Phase::At(rb.target);
                    return Ok(true);
                }
                // No guard matched: nack so the home can move on (C3).
                self.buf = None;
                out.push(Wire::Nack);
                return Ok(true);
            }
        }

        // Tau decisions (autonomous or internal).
        for br in &st.branches {
            if !br.action.is_tau() || !guard_ok(br, ctx, self.who())? {
                continue;
            }
            let enabled = match &br.tag {
                Some(tag) => decide(tag),
                None => true,
            };
            if enabled {
                let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                apply_assigns(br, &mut env, Some(self.id), self.who())?;
                self.env = env;
                self.phase = Phase::At(br.target);
                return Ok(true);
            }
        }
        Ok(false)
    }
}

// ---------------------------------------------------------------------------
// Home engine (Table 2)
// ---------------------------------------------------------------------------

/// The home node's side of the refined protocol.
#[derive(Debug, Clone)]
pub struct HomeEngine<'a> {
    refined: &'a RefinedProtocol,
    n: u32,
    home_buffer: usize,
    unacked_allowance: usize,
    phase: Phase,
    env: Env,
    buf: Vec<BufEntry>,
    cursor: u32,
    /// Completed rendezvous, keyed by message type (active party counted).
    pub completions: Completions,
    /// Completions attributed to each remote as active party.
    pub per_remote: HashMap<u32, u64>,
}

impl<'a> HomeEngine<'a> {
    /// Creates the engine. `home_buffer` is the paper's `k >= 2`.
    pub fn new(
        refined: &'a RefinedProtocol,
        n: u32,
        home_buffer: usize,
        unacked_allowance: usize,
    ) -> Self {
        assert!(home_buffer >= 2, "k >= 2 (§3.2)");
        Self {
            refined,
            n,
            home_buffer,
            unacked_allowance,
            phase: Phase::At(refined.spec.home.initial),
            env: refined.spec.home.initial_env(),
            buf: Vec::new(),
            cursor: 0,
            completions: Completions::default(),
            per_remote: HashMap::new(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Current environment.
    pub fn env(&self) -> &Env {
        &self.env
    }

    fn branch(&self, state: StateId, branch: u32) -> Result<&'a Branch> {
        self.refined
            .spec
            .home
            .state(state)
            .and_then(|s| s.branches.get(branch as usize))
            .ok_or(RuntimeError::BadState { who: ProcessId::Home })
    }

    fn recv_matches(&self, hb: &Branch, from: RemoteId, msg: MsgType) -> Result<bool> {
        let ctx = EvalCtx { env: &self.env, self_id: None };
        let (peer, m) = match &hb.action {
            CommAction::Recv { from: p, msg: m, .. } => (p, *m),
            _ => return Ok(false),
        };
        if m != msg || !guard_ok(hb, ctx, ProcessId::Home)? {
            return Ok(false);
        }
        match peer {
            Peer::AnyRemote { .. } => Ok(true),
            Peer::Remote(e) => Ok(e
                .eval_node(ctx)
                .map_err(|source| RuntimeError::Eval { who: ProcessId::Home, source })?
                == from),
            Peer::Home => Ok(false),
        }
    }

    fn request_satisfies(&self, state: StateId, from: RemoteId, msg: MsgType) -> Result<bool> {
        let st = match self.refined.spec.home.state(state) {
            Some(st) if st.kind == StateKind::Communication => st,
            _ => return Ok(false),
        };
        for (_, hb) in st.recvs() {
            if self.recv_matches(hb, from, msg)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Consumes one message from `from`; outgoing `(dest, wire)` pairs go
    /// to `out`.
    pub fn handle(
        &mut self,
        from: RemoteId,
        w: Wire,
        out: &mut Vec<(RemoteId, Wire)>,
    ) -> Result<()> {
        let who = ProcessId::Home;
        match w {
            Wire::Ack => match self.phase {
                Phase::Awaiting { state, branch, target } if target == from => {
                    let br = self.branch(state, branch)?;
                    let msg = br.action.msg().ok_or(RuntimeError::BadState { who })?;
                    let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                    apply_assigns(br, &mut env, None, who)?;
                    self.env = env;
                    self.phase = Phase::At(br.target);
                    self.cursor = 0;
                    self.completions.bump(msg);
                    Ok(())
                }
                _ => Err(RuntimeError::UnexpectedResponse { who, what: "ack" }),
            },
            Wire::Nack => match self.phase {
                Phase::Awaiting { state, branch, target } if target == from => {
                    self.phase = Phase::At(state);
                    self.cursor = branch + 1;
                    Ok(())
                }
                _ => Err(RuntimeError::UnexpectedResponse { who, what: "nack" }),
            },
            Wire::Req { msg, val } => {
                if let Phase::Awaiting { state, branch, target } = self.phase {
                    if target == from {
                        if self.refined.home_reply.get(&(state, branch)) == Some(&msg) {
                            let br = self.branch(state, branch)?;
                            let reqmsg = br.action.msg().ok_or(RuntimeError::BadState { who })?;
                            let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                            apply_assigns(br, &mut env, None, who)?;
                            self.env = env;
                            let mid_st = self
                                .refined
                                .spec
                                .home
                                .state(br.target)
                                .ok_or(RuntimeError::BadState { who })?;
                            let mut landed = false;
                            // Temporarily settle at the intermediate state
                            // so recv_matches evaluates peers in the updated
                            // environment.
                            for (_, rb) in mid_st.recvs() {
                                if self.recv_matches(rb, from, msg)? {
                                    let mut env =
                                        std::mem::replace(&mut self.env, Env::new(vec![]));
                                    if let CommAction::Recv { from: p, bind, .. } = &rb.action {
                                        if let Peer::AnyRemote { bind: Some(v) } = p {
                                            env.set(v.index(), Value::Node(from));
                                        }
                                        if let (Some(v), Some(value)) = (bind, val) {
                                            env.set(v.index(), value);
                                        }
                                    }
                                    apply_assigns(rb, &mut env, None, who)?;
                                    self.env = env;
                                    self.phase = Phase::At(rb.target);
                                    self.cursor = 0;
                                    landed = true;
                                    break;
                                }
                            }
                            if !landed {
                                return Err(RuntimeError::ReplyNotAwaited { who });
                            }
                            self.completions.bump(reqmsg);
                            return Ok(());
                        }
                        // Implicit nack (T3).
                        if self.buf.len() >= self.home_buffer + self.unacked_allowance {
                            return Err(RuntimeError::HomeBufferOverflow);
                        }
                        self.buf.push(BufEntry { from, msg, val });
                        self.phase = Phase::At(state);
                        self.cursor = branch + 1;
                        return Ok(());
                    }
                }
                // Admission (T4/T5/T6).
                if self.refined.unacked.contains(&msg) {
                    if self.buf.len() >= self.home_buffer + self.unacked_allowance {
                        return Err(RuntimeError::UnackedFlood);
                    }
                    self.buf.push(BufEntry { from, msg, val });
                    return Ok(());
                }
                let (comm_state, reserved) = match self.phase {
                    Phase::At(st) => (st, 0usize),
                    Phase::Awaiting { state, .. } => (state, 1usize),
                };
                let free = self.home_buffer.saturating_sub(self.buf.len() + reserved);
                if free >= 2 || (free == 1 && self.request_satisfies(comm_state, from, msg)?) {
                    self.buf.push(BufEntry { from, msg, val });
                } else {
                    out.push((from, Wire::Nack));
                }
                Ok(())
            }
        }
    }

    /// Takes at most one spontaneous step (Table 2 rows C1/C2 or an
    /// internal tau). Returns `true` on progress.
    pub fn poll(&mut self, out: &mut Vec<(RemoteId, Wire)>) -> Result<bool> {
        let who = ProcessId::Home;
        let st_id = match self.phase {
            Phase::At(st) => st,
            Phase::Awaiting { .. } => return Ok(false),
        };
        let st = self.refined.spec.home.state(st_id).ok_or(RuntimeError::BadState { who })?;

        if st.kind == StateKind::Internal {
            let ctx = EvalCtx { env: &self.env, self_id: None };
            for br in &st.branches {
                if br.action.is_tau() && guard_ok(br, ctx, who)? {
                    let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                    apply_assigns(br, &mut env, None, who)?;
                    self.env = env;
                    self.phase = Phase::At(br.target);
                    self.cursor = 0;
                    return Ok(true);
                }
            }
            return Ok(false);
        }

        // C1: serve the first matching buffered request.
        for idx in 0..self.buf.len() {
            let entry = self.buf[idx];
            for bi in 0..st.branches.len() {
                let hb = &st.branches[bi];
                if !self.recv_matches(hb, entry.from, entry.msg)? {
                    continue;
                }
                let hb = hb.clone();
                self.buf.remove(idx);
                if !self.refined.home_noack.contains(&entry.msg) {
                    out.push((entry.from, Wire::Ack));
                }
                let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                if let CommAction::Recv { from: p, bind, .. } = &hb.action {
                    if let Peer::AnyRemote { bind: Some(v) } = p {
                        env.set(v.index(), Value::Node(entry.from));
                    }
                    if let (Some(v), Some(value)) = (bind, entry.val) {
                        env.set(v.index(), value);
                    }
                }
                apply_assigns(&hb, &mut env, None, who)?;
                self.env = env;
                self.phase = Phase::At(hb.target);
                self.cursor = 0;
                self.completions.bump(entry.msg);
                *self.per_remote.entry(entry.from.0).or_insert(0) += 1;
                return Ok(true);
            }
        }

        // C2: issue a request via an output guard, cycling from the cursor.
        let ctx = EvalCtx { env: &self.env, self_id: None };
        let nb = st.branches.len();
        for off in 0..nb {
            let idx = (self.cursor as usize + off) % nb;
            let br = &st.branches[idx];
            let (peer, msg, payload) = match &br.action {
                CommAction::Send { to: Peer::Remote(e), msg, payload } => (e, *msg, payload),
                _ => continue,
            };
            if !guard_ok(br, ctx, who)? {
                continue;
            }
            let t = peer.eval_node(ctx).map_err(|source| RuntimeError::Eval { who, source })?;
            if t.0 >= self.n {
                return Err(RuntimeError::BadState { who });
            }
            let val = match payload {
                Some(e) => Some(e.eval(ctx).map_err(|source| RuntimeError::Eval { who, source })?),
                None => None,
            };
            let key = (st_id, idx as u32);
            if self.refined.home_fire_forget.contains(&key) {
                let br = br.clone();
                out.push((t, Wire::Req { msg, val }));
                let mut env = std::mem::replace(&mut self.env, Env::new(vec![]));
                apply_assigns(&br, &mut env, None, who)?;
                self.env = env;
                self.phase = Phase::At(br.target);
                self.cursor = 0;
                self.completions.bump(msg);
                return Ok(true);
            }
            let ordinary = |e: &BufEntry| !self.refined.unacked.contains(&e.msg);
            if self.buf.iter().any(|e| e.from == t && ordinary(e)) {
                continue; // condition (c)
            }
            if self.buf.iter().filter(|e| ordinary(e)).count() >= self.home_buffer {
                if let Some(victim_idx) = self.buf.iter().position(ordinary) {
                    let victim = self.buf.remove(victim_idx);
                    out.push((victim.from, Wire::Nack));
                }
            }
            out.push((t, Wire::Req { msg, val }));
            self.phase = Phase::Awaiting { state: st_id, branch: idx as u32, target: t };
            return Ok(true);
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
    use ccr_protocols::token::token;

    #[test]
    fn token_engines_complete_a_cycle() {
        let refined = refine(&token(), &RefineOptions::default()).unwrap();
        let mut home = HomeEngine::new(&refined, 1, 2, 0);
        let mut r0 = RemoteEngine::new(&refined, RemoteId(0));
        let req = refined.spec.msg_by_name("req").unwrap();
        let rel = refined.spec.msg_by_name("rel").unwrap();

        let mut rout = Vec::new();
        let mut hout = Vec::new();
        let mut always = |_: &str| true;

        // Remote decides to acquire, then sends req.
        assert!(r0.poll(&mut always, &mut rout).unwrap()); // tau acquire
        assert!(r0.poll(&mut always, &mut rout).unwrap()); // send req
        assert_eq!(rout.len(), 1);
        // Home consumes the req (optimized: no ack) and replies gr.
        home.handle(RemoteId(0), rout.remove(0), &mut hout).unwrap();
        assert!(home.poll(&mut hout).unwrap()); // C1 consume req
        assert!(home.poll(&mut hout).unwrap()); // C2/reply gr
        assert_eq!(hout.len(), 1);
        assert_eq!(home.completions.of(req), 1);
        // Remote receives gr: in V now.
        let (to, wire) = hout.remove(0);
        assert_eq!(to, RemoteId(0));
        r0.handle(wire, &mut rout).unwrap();
        let v = refined.spec.remote.state_by_name("V").unwrap();
        assert_eq!(r0.phase(), Phase::At(v));
        assert_eq!(r0.completions.of(req), 1);
        // Remote releases; home acks.
        assert!(r0.poll(&mut always, &mut rout).unwrap()); // send rel
        home.handle(RemoteId(0), rout.remove(0), &mut hout).unwrap();
        assert!(home.poll(&mut hout).unwrap()); // C1 consume rel + ack
        assert_eq!(hout.len(), 1);
        assert!(matches!(hout[0].1, Wire::Ack));
        r0.handle(hout.remove(0).1, &mut rout).unwrap();
        let i = refined.spec.remote.state_by_name("I").unwrap();
        assert_eq!(r0.phase(), Phase::At(i));
        assert_eq!(home.completions.of(rel), 1);
    }

    #[test]
    fn home_engine_nacks_when_full() {
        let refined = migratory_refined(&MigratoryOptions::default());
        let mut home = HomeEngine::new(&refined, 3, 2, 0);
        let req = refined.spec.msg_by_name("req").unwrap();
        let mut out = Vec::new();
        // First request is consumed through C1 path eventually; park three
        // requests without polling: the third must be nacked (k=2 and the
        // second slot is the progress buffer).
        home.handle(RemoteId(0), Wire::Req { msg: req, val: None }, &mut out).unwrap();
        assert!(out.is_empty());
        home.handle(RemoteId(1), Wire::Req { msg: req, val: None }, &mut out).unwrap();
        home.handle(RemoteId(2), Wire::Req { msg: req, val: None }, &mut out).unwrap();
        assert_eq!(out.iter().filter(|(_, w)| matches!(w, Wire::Nack)).count(), 1);
    }

    #[test]
    fn remote_engine_ignores_requests_while_awaiting() {
        let refined = refine(&token(), &RefineOptions::default()).unwrap();
        let mut r0 = RemoteEngine::new(&refined, RemoteId(0));
        let mut out = Vec::new();
        let mut always = |_: &str| true;
        r0.poll(&mut always, &mut out).unwrap(); // acquire
        r0.poll(&mut always, &mut out).unwrap(); // send req -> awaiting
        out.clear();
        // A bogus request from home is ignored, not nacked (Table 1 T3).
        let rel = refined.spec.msg_by_name("rel").unwrap();
        r0.handle(Wire::Req { msg: rel, val: None }, &mut out).unwrap();
        assert!(out.is_empty());
        assert!(matches!(r0.phase(), Phase::Awaiting { .. }));
    }
}
