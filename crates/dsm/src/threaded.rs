//! Deployment-style execution: one OS thread per node over channels.
//!
//! The home engine and each remote engine run on their own threads,
//! exchanging [`Wire`] messages over crossbeam channels — one channel per
//! directed link, preserving the paper's reliable in-order point-to-point
//! network assumption (§2.2); unbounded channels play the role of the
//! paper's infinitely-buffered network. CPU decisions are sampled from a
//! per-remote seeded RNG, approximating the migratory workload.
//!
//! This runner demonstrates that the *derived* protocol is directly
//! implementable per node ("for example in microcode", §2.3), and the
//! integration suite cross-validates its behaviour against the verified
//! global semantics by comparing operation and message counts.

use crate::engine::{HomeEngine, RemoteEngine};
use ccr_core::ids::RemoteId;
use ccr_core::refine::RefinedProtocol;
use ccr_runtime::error::RuntimeError;
use ccr_runtime::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters for a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Number of remote nodes (threads).
    pub n: u32,
    /// Home buffer capacity `k`.
    pub home_buffer: usize,
    /// Stop after this many completed operations at the home.
    pub target_ops: u64,
    /// Probability an idle CPU starts an access per poll.
    pub access_prob: f64,
    /// Probability a holder evicts per poll.
    pub evict_prob: f64,
    /// RNG seed.
    pub seed: u64,
    /// Hard wall-clock limit.
    pub time_limit: Duration,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        Self {
            n: 4,
            home_buffer: 2,
            target_ops: 1_000,
            access_prob: 0.5,
            evict_prob: 0.5,
            seed: 42,
            time_limit: Duration::from_secs(20),
        }
    }
}

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Operations (acquisition rendezvous) completed at the home.
    pub ops: u64,
    /// Total wire messages observed by the home (in + out).
    pub home_messages: u64,
    /// Wall time.
    pub elapsed: Duration,
    /// True if the ops target was reached before the time limit.
    pub reached_target: bool,
    /// Per-remote completions as counted by the home (C1 consumptions).
    pub per_remote: Vec<u64>,
    /// First runtime error observed on any thread, if any.
    pub error: Option<RuntimeError>,
}

/// Runs the refined protocol on real threads until `target_ops` operations
/// complete (or the time limit expires).
pub fn run_threaded(refined: &RefinedProtocol, config: &ThreadedConfig) -> ThreadedReport {
    let n = config.n;
    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    // Channels: remote i -> home (tagged), home -> remote i.
    type HomeChannel = (Sender<(RemoteId, Wire)>, Receiver<(RemoteId, Wire)>);
    let (to_home_tx, to_home_rx): HomeChannel = unbounded();
    let mut to_remote_tx: Vec<Sender<Wire>> = Vec::new();
    let mut to_remote_rx: Vec<Option<Receiver<Wire>>> = Vec::new();
    for _ in 0..n {
        let (tx, rx) = unbounded();
        to_remote_tx.push(tx);
        to_remote_rx.push(Some(rx));
    }

    // The op set: well-known acquisition requests present in the spec.
    let op_msgs: Vec<_> =
        ["req", "rreq", "wreq"].iter().filter_map(|m| refined.spec.msg_by_name(m)).collect();

    let report = std::thread::scope(|scope| {
        // Remote threads.
        let mut handles = Vec::new();
        for i in 0..n {
            let rx = to_remote_rx[i as usize].take().expect("rx taken once");
            let tx = to_home_tx.clone();
            let stop = Arc::clone(&stop);
            let seed = config.seed.wrapping_add(i as u64 + 1);
            let access_prob = config.access_prob;
            let evict_prob = config.evict_prob;
            handles.push(scope.spawn(move || -> Result<(), RuntimeError> {
                let mut engine = RemoteEngine::new(refined, RemoteId(i));
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out: Vec<Wire> = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Drain incoming messages.
                    loop {
                        match rx.try_recv() {
                            Ok(w) => engine.handle(w, &mut out)?,
                            Err(TryRecvError::Empty) => break,
                            Err(TryRecvError::Disconnected) => return Ok(()),
                        }
                    }
                    // One autonomous step.
                    let mut decide = |tag: &str| match tag {
                        "access" | "read" | "write" => rng.random_bool(access_prob),
                        "evict" => rng.random_bool(evict_prob),
                        _ => true,
                    };
                    let progressed = engine.poll(&mut decide, &mut out)?;
                    for w in out.drain(..) {
                        if tx.send((RemoteId(i), w)).is_err() {
                            return Ok(());
                        }
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
                Ok(())
            }));
        }
        drop(to_home_tx);

        // Home runs on this thread.
        let mut home = HomeEngine::new(refined, n, config.home_buffer, 0);
        let mut out: Vec<(RemoteId, Wire)> = Vec::new();
        let mut home_messages = 0u64;
        let mut error = None;
        loop {
            if started.elapsed() > config.time_limit {
                break;
            }
            let ops: u64 = op_msgs.iter().map(|m| home.completions.of(*m)).sum();
            if ops >= config.target_ops {
                break;
            }
            // Drain a batch of incoming messages, then poll.
            let mut worked = false;
            for _ in 0..64 {
                match to_home_rx.try_recv() {
                    Ok((from, w)) => {
                        home_messages += 1;
                        if let Err(e) = home.handle(from, w, &mut out) {
                            error = Some(e);
                        }
                        worked = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            match home.poll(&mut out) {
                Ok(p) => worked |= p,
                Err(e) => error = Some(e),
            }
            for (to, w) in out.drain(..) {
                home_messages += 1;
                let _ = to_remote_tx[to.index()].send(w);
            }
            if error.is_some() {
                break;
            }
            if !worked {
                std::thread::yield_now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        drop(to_remote_tx);
        for h in handles {
            if let Ok(Err(e)) = h.join().map_err(|_| ()) {
                error.get_or_insert(e);
            }
        }
        let ops: u64 = op_msgs.iter().map(|m| home.completions.of(*m)).sum();
        let per_remote = (0..n).map(|i| home.per_remote.get(&i).copied().unwrap_or(0)).collect();
        ThreadedReport {
            ops,
            home_messages,
            elapsed: started.elapsed(),
            reached_target: ops >= config.target_ops,
            per_remote,
            error,
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::{refine, RefineOptions};
    use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
    use ccr_protocols::token::token;

    #[test]
    fn threaded_token_reaches_target() {
        let refined = refine(&token(), &RefineOptions::default()).unwrap();
        let config = ThreadedConfig { n: 2, target_ops: 200, ..Default::default() };
        let report = run_threaded(&refined, &config);
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.reached_target, "{report:?}");
        assert!(report.ops >= 200);
    }

    #[test]
    fn threaded_migratory_reaches_target() {
        let refined = migratory_refined(&MigratoryOptions { data_domain: Some(8), cpu_gate: true });
        let config = ThreadedConfig { n: 4, target_ops: 500, ..Default::default() };
        let report = run_threaded(&refined, &config);
        assert!(report.error.is_none(), "{:?}", report.error);
        assert!(report.reached_target, "{report:?}");
        // Every remote should have completed something under the fair-ish
        // random workload.
        assert!(report.per_remote.iter().filter(|&&c| c > 0).count() >= 3);
    }
}
