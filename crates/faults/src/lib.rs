//! # ccr-faults — seeded, deterministic wire-fault plans
//!
//! The paper assumes reliable in-order point-to-point links (§2.2). This
//! crate describes the *adversities* we inject to probe that assumption:
//! dropping, duplicating, reordering and delaying individual wire messages.
//!
//! A [`FaultPlan`] is a pure function of `(seed, step, link, salt)` — it
//! holds no mutable RNG state, so the same plan asked the same question
//! twice gives the same answer, draws for different links never interfere,
//! and a run is reproducible from `(spec, schedule seed, fault seed)` alone.
//! The draw is a `splitmix64`-style bit mix, not a stateful generator.
//!
//! The plan only *decides*; the mechanics of applying a fault to a link
//! queue (and of recovering from it by timeout and retransmission) live in
//! `ccr-runtime`'s fault harness, which also keeps the [`FaultStats`]
//! ledger defined here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use ccr_core::ids::ProcessId;
use serde::Serialize;

/// The kinds of wire fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultKind {
    /// The message vanishes from the link (recovered by retransmission).
    Drop,
    /// A second copy of the message is appended to the link.
    Duplicate,
    /// The message overtakes its immediate predecessor in the queue.
    Reorder,
    /// Delivery from the link is suppressed for one scheduling step.
    Delay,
}

impl FaultKind {
    /// Lower-case name used in trace events and CLI specs.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
        }
    }
}

/// Per-kind fault probabilities, each in `[0, 1]`.
///
/// `drop`, `dup` and `reorder` are per-*message* rates drawn once when a
/// message is placed on a link; `delay` is a per-*step*, per-link rate
/// suppressing delivery from that link for the step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FaultRates {
    /// Probability a freshly sent message is dropped.
    pub drop: f64,
    /// Probability a freshly sent message is duplicated.
    pub dup: f64,
    /// Probability a freshly sent message overtakes its predecessor.
    pub reorder: f64,
    /// Per-step probability that delivery from a link is held back.
    pub delay: f64,
}

impl FaultRates {
    /// True when every rate is zero.
    pub fn is_zero(&self) -> bool {
        self.drop == 0.0 && self.dup == 0.0 && self.reorder == 0.0 && self.delay == 0.0
    }
}

/// A fault scripted to hit a specific link at a specific step,
/// deterministically and regardless of the probabilistic rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedFault {
    /// The harness step at which the fault fires.
    pub step: u64,
    /// Sender side of the targeted link.
    pub from: ProcessId,
    /// Receiver side of the targeted link.
    pub to: ProcessId,
    /// What to do to the link.
    pub kind: FaultKind,
}

/// A per-link override of the global [`FaultRates`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRates {
    /// Sender side of the link the override applies to.
    pub from: ProcessId,
    /// Receiver side of the link the override applies to.
    pub to: ProcessId,
    /// The rates used for this link instead of the global ones.
    pub rates: FaultRates,
}

/// The full description of which faults a run should suffer: global rates,
/// per-link overrides, and explicitly scripted faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Rates applied to every link without an override.
    pub rates: FaultRates,
    /// Per-link rate overrides.
    pub per_link: Vec<LinkRates>,
    /// Faults that fire unconditionally at their step.
    pub scripted: Vec<ScriptedFault>,
}

impl FaultSpec {
    /// A spec with the given global rates and nothing else.
    pub fn with_rates(rates: FaultRates) -> Self {
        Self { rates, ..Self::default() }
    }

    /// True when the spec can never produce a fault.
    pub fn is_inert(&self) -> bool {
        self.rates.is_zero()
            && self.per_link.iter().all(|l| l.rates.is_zero())
            && self.scripted.is_empty()
    }
}

/// Parses a CLI fault spec of the form `drop=0.05,dup=0.02,reorder=0.01,delay=0.1`.
///
/// Keys may appear in any order; missing keys default to zero. Values must
/// parse as floats in `[0, 1]`.
pub fn parse_fault_spec(s: &str) -> Result<FaultRates, String> {
    let mut rates = FaultRates::default();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec entry '{part}' is not of the form kind=rate"))?;
        let v: f64 =
            value.trim().parse().map_err(|_| format!("fault rate '{value}' is not a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("fault rate '{value}' is outside [0, 1]"));
        }
        match key.trim() {
            "drop" => rates.drop = v,
            "dup" => rates.dup = v,
            "reorder" => rates.reorder = v,
            "delay" => rates.delay = v,
            other => {
                return Err(format!(
                    "unknown fault kind '{other}' (expected drop, dup, reorder or delay)"
                ))
            }
        }
    }
    Ok(rates)
}

/// Counters kept by the fault harness: what was injected, and how much of
/// it was recovered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    /// Messages dropped from a link (including re-dropped retransmissions).
    pub drops: u64,
    /// Messages duplicated onto a link.
    pub dups: u64,
    /// Adjacent-pair reorders performed.
    pub reorders: u64,
    /// Per-step delivery delays imposed.
    pub delays: u64,
    /// Faults that fired from the scripted list rather than the rates.
    pub scripted: u64,
    /// Retransmissions attempted (successful or dropped again).
    pub retransmits: u64,
    /// Dropped messages successfully restored to their link.
    pub recovered: u64,
    /// Duplicate copies absorbed by receiver-side dedup before delivery.
    pub absorbed: u64,
}

impl FaultStats {
    /// Total faults injected (drops + dups + reorders + delays).
    pub fn injected(&self) -> u64 {
        self.drops + self.dups + self.reorders + self.delays
    }

    /// Adds `other`'s counters into `self` (aggregating across runs).
    pub fn merge(&mut self, other: &FaultStats) {
        self.drops += other.drops;
        self.dups += other.dups;
        self.reorders += other.reorders;
        self.delays += other.delays;
        self.scripted += other.scripted;
        self.retransmits += other.retransmits;
        self.recovered += other.recovered;
        self.absorbed += other.absorbed;
    }
}

/// A seeded, deterministic fault plan: the [`FaultSpec`] plus the seed that
/// makes its probabilistic clauses concrete.
///
/// All decision methods are pure — the plan can be shared freely and asked
/// in any order without perturbing the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

/// Salts separating the independent draw families.
const SALT_SEND: u64 = 0x01;
const SALT_DELAY: u64 = 0x02;
const SALT_RETRANSMIT: u64 = 0x100;

impl FaultPlan {
    /// Builds a plan from a spec and a seed.
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        Self { spec, seed }
    }

    /// A plan that never injects anything (rates zero, no script).
    pub fn inactive() -> Self {
        Self::new(FaultSpec::default(), 0)
    }

    /// The seed the plan draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The underlying spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// True when the plan can produce at least one fault.
    pub fn is_active(&self) -> bool {
        !self.spec.is_inert()
    }

    /// Adds a scripted fault to the plan.
    pub fn script(&mut self, fault: ScriptedFault) {
        self.spec.scripted.push(fault);
    }

    /// Sets a per-link rate override.
    pub fn set_link_rates(&mut self, from: ProcessId, to: ProcessId, rates: FaultRates) {
        if let Some(l) = self.spec.per_link.iter_mut().find(|l| l.from == from && l.to == to) {
            l.rates = rates;
        } else {
            self.spec.per_link.push(LinkRates { from, to, rates });
        }
    }

    /// The rates in force for the link `from → to`.
    pub fn rates_for(&self, from: ProcessId, to: ProcessId) -> FaultRates {
        self.spec
            .per_link
            .iter()
            .find(|l| l.from == from && l.to == to)
            .map(|l| l.rates)
            .unwrap_or(self.spec.rates)
    }

    /// Decides the fate of a message just sent on `from → to` at `step`:
    /// dropped, duplicated, reordered, or (`None`) untouched. A single
    /// uniform draw partitions `[0, 1)` so the kinds are mutually
    /// exclusive per message.
    pub fn decide_send(&self, step: u64, from: ProcessId, to: ProcessId) -> Option<FaultKind> {
        let r = self.rates_for(from, to);
        if r.drop == 0.0 && r.dup == 0.0 && r.reorder == 0.0 {
            return None;
        }
        let u = self.unit(step, from, to, SALT_SEND);
        if u < r.drop {
            Some(FaultKind::Drop)
        } else if u < r.drop + r.dup {
            Some(FaultKind::Duplicate)
        } else if u < r.drop + r.dup + r.reorder {
            Some(FaultKind::Reorder)
        } else {
            None
        }
    }

    /// Whether delivery from `from → to` is held back for this step.
    pub fn delayed(&self, step: u64, from: ProcessId, to: ProcessId) -> bool {
        let r = self.rates_for(from, to);
        r.delay > 0.0 && self.unit(step, from, to, SALT_DELAY) < r.delay
    }

    /// Whether the `attempt`-th retransmission on `from → to` at `step` is
    /// itself lost. Uses the link's drop rate with an independent salt, so
    /// retransmissions face the same weather as first transmissions.
    pub fn drops_retransmit(
        &self,
        step: u64,
        from: ProcessId,
        to: ProcessId,
        attempt: u32,
    ) -> bool {
        let r = self.rates_for(from, to);
        r.drop > 0.0 && self.unit(step, from, to, SALT_RETRANSMIT + attempt as u64) < r.drop
    }

    /// Scripted faults that fire at `step`.
    pub fn scripted_at(&self, step: u64) -> impl Iterator<Item = &ScriptedFault> {
        self.spec.scripted.iter().filter(move |f| f.step == step)
    }

    fn unit(&self, step: u64, from: ProcessId, to: ProcessId, salt: u64) -> f64 {
        let x = mix(self.seed, step, pid_code(from), pid_code(to), salt);
        // 53 high bits → uniform double in [0, 1).
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn pid_code(p: ProcessId) -> u64 {
    match p {
        ProcessId::Home => 0,
        ProcessId::Remote(r) => 1 + r.0 as u64,
    }
}

/// `splitmix64` finalizer over a keyed combination of the draw coordinates.
fn mix(seed: u64, step: u64, from: u64, to: u64, salt: u64) -> u64 {
    let mut z = seed
        ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ from.wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ to.wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::ids::RemoteId;

    const H: ProcessId = ProcessId::Home;
    const R0: ProcessId = ProcessId::Remote(RemoteId(0));
    const R1: ProcessId = ProcessId::Remote(RemoteId(1));

    #[test]
    fn parse_accepts_all_keys_in_any_order() {
        let r = parse_fault_spec("dup=0.02, drop=0.05,reorder=0.01,delay=0.5").unwrap();
        assert_eq!(r, FaultRates { drop: 0.05, dup: 0.02, reorder: 0.01, delay: 0.5 });
        assert!(parse_fault_spec("").unwrap().is_zero());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_fault_spec("drop").is_err());
        assert!(parse_fault_spec("drop=two").is_err());
        assert!(parse_fault_spec("drop=1.5").is_err());
        assert!(parse_fault_spec("lose=0.1").is_err());
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let spec = FaultSpec::with_rates(FaultRates { drop: 0.5, ..FaultRates::default() });
        let a = FaultPlan::new(spec.clone(), 7);
        let b = FaultPlan::new(spec.clone(), 7);
        let c = FaultPlan::new(spec, 8);
        let seq = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..64).map(|s| p.decide_send(s, R0, H)).collect()
        };
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c), "different seeds give different weather");
        assert!(seq(&a).iter().any(|f| f.is_some()));
        assert!(seq(&a).iter().any(|f| f.is_none()));
    }

    #[test]
    fn links_draw_independently() {
        let spec = FaultSpec::with_rates(FaultRates { drop: 0.5, ..FaultRates::default() });
        let p = FaultPlan::new(spec, 42);
        let on = |from, to| -> Vec<bool> {
            (0..64).map(|s| p.decide_send(s, from, to).is_some()).collect()
        };
        assert_ne!(on(R0, H), on(R1, H));
        assert_ne!(on(R0, H), on(H, R0));
    }

    #[test]
    fn inactive_plan_never_fires() {
        let p = FaultPlan::inactive();
        assert!(!p.is_active());
        for s in 0..256 {
            assert_eq!(p.decide_send(s, R0, H), None);
            assert!(!p.delayed(s, H, R0));
            assert!(!p.drops_retransmit(s, R0, H, 0));
        }
    }

    #[test]
    fn per_link_overrides_win() {
        let spec = FaultSpec::with_rates(FaultRates { drop: 1.0, ..FaultRates::default() });
        let mut p = FaultPlan::new(spec, 3);
        p.set_link_rates(R0, H, FaultRates::default());
        assert_eq!(p.decide_send(0, R0, H), None, "override silences the link");
        assert_eq!(p.decide_send(0, R1, H), Some(FaultKind::Drop));
        assert!(p.is_active());
    }

    #[test]
    fn scripted_faults_fire_at_their_step() {
        let mut p = FaultPlan::inactive();
        p.script(ScriptedFault { step: 5, from: H, to: R0, kind: FaultKind::Drop });
        assert!(p.is_active());
        assert_eq!(p.scripted_at(4).count(), 0);
        let at5: Vec<_> = p.scripted_at(5).collect();
        assert_eq!(at5.len(), 1);
        assert_eq!(at5[0].kind, FaultKind::Drop);
    }

    #[test]
    fn rates_partition_is_exclusive_and_roughly_proportional() {
        let spec =
            FaultSpec::with_rates(FaultRates { drop: 0.2, dup: 0.2, reorder: 0.2, delay: 0.0 });
        let p = FaultPlan::new(spec, 99);
        let mut counts = [0u32; 4];
        for s in 0..4096 {
            match p.decide_send(s, R0, H) {
                Some(FaultKind::Drop) => counts[0] += 1,
                Some(FaultKind::Duplicate) => counts[1] += 1,
                Some(FaultKind::Reorder) => counts[2] += 1,
                _ => counts[3] += 1,
            }
        }
        // 20% each ± generous slack; none can be empty at these rates.
        for c in &counts[..3] {
            assert!((400..1300).contains(c), "counts skewed: {counts:?}");
        }
        assert!(counts[3] > 1000);
    }
}
