//! The bundled protocols round-trip exactly through the textual front end,
//! and the parsed spec refines to the same asynchronous protocol.

use ccr_core::refine::{refine, RefineOptions};
use ccr_core::text::{parse, parse_validated, to_text};
use ccr_protocols::invalidate::{invalidate, InvalidateOptions};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_protocols::update::{update, UpdateOptions as UpdOptions};

#[test]
fn token_round_trips() {
    let spec = token();
    let text = to_text(&spec);
    let parsed = parse_validated(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    assert_eq!(parsed, spec);
}

#[test]
fn migratory_round_trips_all_variants() {
    for opts in [
        MigratoryOptions::default(),
        MigratoryOptions::checking(),
        MigratoryOptions::checking_with_data(4),
        MigratoryOptions { data_domain: Some(2), cpu_gate: true },
    ] {
        let spec = migratory(&opts);
        let text = to_text(&spec);
        let parsed = parse_validated(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, spec, "\n{text}");
    }
}

#[test]
fn invalidate_round_trips() {
    for opts in [InvalidateOptions::default(), InvalidateOptions { data_domain: Some(2) }] {
        let spec = invalidate(&opts);
        let text = to_text(&spec);
        let parsed = parse_validated(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, spec, "\n{text}");
    }
}

#[test]
fn parsed_spec_refines_identically() {
    let spec = migratory(&MigratoryOptions::checking());
    let parsed = parse(&to_text(&spec)).unwrap();
    let a = refine(&spec, &RefineOptions::default()).unwrap();
    let b = refine(&parsed, &RefineOptions::default()).unwrap();
    assert_eq!(a.pairs, b.pairs);
    assert_eq!(a.home, b.home);
    assert_eq!(a.remote, b.remote);
    assert_eq!(a.home_noack, b.home_noack);
    assert_eq!(a.remote_reply, b.remote_reply);
}

#[test]
fn update_round_trips() {
    for opts in [UpdOptions::default(), UpdOptions { data_domain: Some(2) }] {
        let spec = update(&opts);
        let text = to_text(&spec);
        let parsed = parse_validated(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, spec, "\n{text}");
    }
}

#[test]
fn text_is_idempotent() {
    let spec = invalidate(&InvalidateOptions { data_domain: Some(2) });
    let t1 = to_text(&spec);
    let t2 = to_text(&parse(&t1).unwrap());
    assert_eq!(t1, t2);
}
