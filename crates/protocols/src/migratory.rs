//! The migratory protocol of Avalanche — paper Figures 2 and 3.
//!
//! One cache line migrates between remotes with combined read/write
//! permission. The home node (Figure 2) starts **F**ree; a `req` grants the
//! line (`gr`) and records the owner in `o`, moving to **E**xclusive. A
//! competing `req` makes the home revoke the line — either by `inv`/`ID`
//! or by racing with the owner's voluntary relinquish `LR` — before
//! granting again. The remote (Figure 3) is **I**nvalid until a CPU access
//! (`rw`) makes it request; once **V**alid it serves reads and writes
//! locally until it evicts (`LR`) or is invalidated (`inv`/`ID`).
//!
//! Refining this spec with the default options detects exactly the two
//! request/reply pairs the paper derives by hand: `req/gr` and `inv/ID`
//! (§5), producing the automata of Figures 4 and 5.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::RemoteId;
use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol};
use ccr_core::value::Value;

/// Construction options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigratoryOptions {
    /// `Some(d)` tracks line data as an integer written modulo `d` by the
    /// owner (enables data-integrity checking at the cost of state-space
    /// size); `None` models data abstractly (payload-free messages).
    pub data_domain: Option<i64>,
    /// When set, the remote idles in `I` until an autonomous `access`
    /// decision fires (used by the DSM workload harness to gate CPU
    /// activity). When clear, remotes contend for the line continuously —
    /// the standard model-checking configuration, matching the paper's
    /// Table 3 models, and substantially smaller (no independent idle/want
    /// bit per remote).
    pub cpu_gate: bool,
}

impl Default for MigratoryOptions {
    fn default() -> Self {
        Self { data_domain: None, cpu_gate: true }
    }
}

impl MigratoryOptions {
    /// The Table 3 configuration: continuous contention, abstract data.
    pub fn checking() -> Self {
        Self { data_domain: None, cpu_gate: false }
    }

    /// Checking configuration with data tracked modulo `d`.
    pub fn checking_with_data(d: i64) -> Self {
        Self { data_domain: Some(d), cpu_gate: false }
    }
}

/// Builds the rendezvous migratory specification (Figures 2 and 3).
pub fn migratory(opts: &MigratoryOptions) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("migratory");
    let req = b.msg("req");
    let gr = b.msg("gr");
    let lr = b.msg("LR");
    let inv = b.msg("inv");
    let id = b.msg("ID");

    let track = opts.data_domain;

    // ---- Home node (Figure 2) ---------------------------------------------
    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let j = b.home_var("j", Value::Node(RemoteId(0)));
    let d = track.map(|_| b.home_var("d", Value::Int(0)));

    let f = b.home_state("F");
    let g1 = b.home_state("G1");
    let e = b.home_state("E");
    let i1 = b.home_state("I1");
    let i2 = b.home_state("I2");
    let i3 = b.home_state("I3");

    // F: r(i)?req -> grant
    b.home(f).recv_any(req).bind_sender(j).goto(g1);
    // G1: r(j)!gr(d); o := j -> E
    {
        let br = b.home(g1).send_to(Expr::Var(j), gr);
        let br = match d {
            Some(dv) => br.payload(Expr::Var(dv)),
            None => br,
        };
        br.assign(o, Expr::Var(j)).goto(e);
    }
    // E: new requester, or owner relinquishes.
    b.home(e).recv_any(req).bind_sender(j).goto(i1);
    {
        let br = b.home(e).recv_exact(lr, Expr::Var(o));
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(f);
    }
    // I1: revoke the owner, or accept its racing LR.
    b.home(i1).send_to(Expr::Var(o), inv).goto(i2);
    {
        let br = b.home(i1).recv_exact(lr, Expr::Var(o));
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(i3);
    }
    // I2: wait for the owner's ID (or its racing LR).
    {
        let br = b.home(i2).recv_exact(id, Expr::Var(o));
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(i3);
    }
    {
        let br = b.home(i2).recv_exact(lr, Expr::Var(o));
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(i3);
    }
    // I3: grant to the recorded requester.
    {
        let br = b.home(i3).send_to(Expr::Var(j), gr);
        let br = match d {
            Some(dv) => br.payload(Expr::Var(dv)),
            None => br,
        };
        br.assign(o, Expr::Var(j)).goto(e);
    }

    // ---- Remote node (Figure 3) --------------------------------------------
    let data = track.map(|_| b.remote_var("data", Value::Int(0)));

    let (i, rq) = if opts.cpu_gate {
        let i = b.remote_state("I");
        let rq = b.remote_state("RQ");
        (Some(i), rq)
    } else {
        (None, b.remote_state("RQ"))
    };
    let w = b.remote_state("W");
    let v = b.remote_state("V");
    let id_s = b.remote_state("IDS");
    let lr_s = b.remote_state("LRS");
    // When gated, `I` idles until the CPU decides to access the line; when
    // ungated, the remote re-requests as soon as it is invalid.
    let invalid = i.unwrap_or(rq);

    if let Some(i) = i {
        b.remote(i).tau().tag("access").goto(rq);
    }
    // RQ: h!req -> wait for grant.
    b.remote(rq).send(req).goto(w);
    // W: h?gr(data) -> Valid.
    {
        let br = b.remote(w).recv(gr);
        let br = match data {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(v);
    }
    // V: CPU reads/writes locally; eviction and invalidation compete.
    if let (Some(dv), Some(dom)) = (data, track) {
        b.remote(v)
            .tau()
            .tag("write")
            .assign(dv, Expr::add_mod(Expr::Var(dv), Expr::int(1), dom))
            .goto(v);
    }
    b.remote(v).recv(inv).goto(id_s);
    b.remote(v).tau().tag("evict").goto(lr_s);
    // IDS: h!ID(data) -> I. The payload is evaluated before the reset
    // assignment runs; clearing `data` keeps invalid lines from carrying
    // stale values (and keeps the rendezvous state space compact).
    {
        let br = b.remote(id_s).send(id);
        let br = match data {
            Some(dv) => br.payload(Expr::Var(dv)).assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(invalid);
    }
    // LRS: h!LR(data) -> I.
    {
        let br = b.remote(lr_s).send(lr);
        let br = match data {
            Some(dv) => br.payload(Expr::Var(dv)).assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(invalid);
    }

    b.finish().expect("the migratory spec satisfies the §2.4 restrictions")
}

/// Builds and refines the migratory protocol with automatic request/reply
/// detection — the derived asynchronous protocol of Figures 4 and 5.
pub fn migratory_refined(opts: &MigratoryOptions) -> RefinedProtocol {
    refine(&migratory(opts), &RefineOptions::default())
        .expect("migratory refines under the default options")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::PairDirection;
    use ccr_core::validate::validate;

    #[test]
    fn spec_is_valid_both_variants() {
        validate(&migratory(&MigratoryOptions::default())).unwrap();
        validate(&migratory(&MigratoryOptions { data_domain: Some(2), cpu_gate: true })).unwrap();
    }

    #[test]
    fn detects_exactly_the_papers_two_pairs() {
        for opts in
            [MigratoryOptions::default(), MigratoryOptions { data_domain: Some(2), cpu_gate: true }]
        {
            let refined = migratory_refined(&opts);
            let spec = &refined.spec;
            assert_eq!(refined.pairs.len(), 2, "req/gr and inv/ID");
            let names: Vec<(String, String, PairDirection)> = refined
                .pairs
                .iter()
                .map(|p| {
                    (
                        spec.msg_name(p.req).to_string(),
                        spec.msg_name(p.repl).to_string(),
                        p.direction,
                    )
                })
                .collect();
            assert!(names.contains(&("req".into(), "gr".into(), PairDirection::RemoteRequests)));
            assert!(names.contains(&("inv".into(), "ID".into(), PairDirection::HomeRequests)));
        }
    }

    #[test]
    fn lr_is_a_plain_rendezvous_in_the_derived_protocol() {
        let refined = migratory_refined(&MigratoryOptions::default());
        let lr = refined.spec.msg_by_name("LR").unwrap();
        assert_eq!(refined.message_cost(lr), 2, "LR costs req+ack when derived");
        assert!(refined.unacked.is_empty());
    }

    #[test]
    fn figure_counts_match_the_paper_shape() {
        // Figure 5 shows two transient states on the remote (for req and
        // LR); ID is fire-and-forget so it gets none.
        let refined = migratory_refined(&MigratoryOptions::default());
        assert_eq!(refined.remote.transient_count(), 2);
        // Figure 4 shows one transient on the home (for inv); gr sends are
        // fire-and-forget replies.
        assert_eq!(refined.home.transient_count(), 1);
    }

    #[test]
    fn home_state_names_match_figure_2() {
        let spec = migratory(&MigratoryOptions::default());
        for name in ["F", "G1", "E", "I1", "I2", "I3"] {
            assert!(spec.home.state_by_name(name).is_some(), "missing {name}");
        }
        for name in ["I", "RQ", "W", "V", "IDS", "LRS"] {
            assert!(spec.remote.state_by_name(name).is_some(), "missing {name}");
        }
        let checking = migratory(&MigratoryOptions::checking());
        assert!(checking.remote.state_by_name("I").is_none(), "no idle state when ungated");
        assert!(checking.remote.state_by_name("RQ").is_some());
    }

    #[test]
    fn static_cost_with_and_without_optimization() {
        let spec = migratory(&MigratoryOptions::default());
        let derived = migratory_refined(&MigratoryOptions::default());
        let unopt =
            refine(&spec, &RefineOptions { reqrep: ccr_core::refine::ReqRepMode::Off }).unwrap();
        // 5 distinct sent messages: req, gr, LR, inv, ID.
        // Optimized: req(1)+gr(1)+LR(2)+inv(1)+ID(1) = 6.
        // Unoptimized: 5 * 2 = 10.
        assert_eq!(derived.total_static_cost(), 6);
        assert_eq!(unopt.total_static_cost(), 10);
    }
}
