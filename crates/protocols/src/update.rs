//! A write-update protocol — an extension beyond the paper's two subjects.
//!
//! The paper's framework claims to cover "large classes of DSM protocols";
//! invalidation-based designs are only one family. This protocol keeps all
//! read copies *live* on writes: a writer (which must hold a copy) sends
//! the new value to the home (`upd`) and immediately resumes reading; the
//! home pushes the value to every other sharer one at a time (`push`).
//! Update protocols shine when sharers re-read hot data frequently — the
//! complementary regime to write-invalidate.
//!
//! A design note that *demonstrates the paper's methodology*: the first
//! version of this protocol made writers block until the home confirmed
//! the update round. The rendezvous-level model checker found the deadlock
//! immediately (two simultaneous writers: the home cannot push to a blocked
//! writer, and the writer cannot unblock until pushed) — in a handful of
//! states, before any asynchronous machinery existed. The fix is the
//! classic update-protocol one: writes never block, and the home's `PUSH`
//! state *absorbs* competing `upd`s by restarting the round with the newest
//! value (last-writer-wins within a round).
//!
//! Refinement finds the `rreq/gr` request/reply pair; `upd`, `push` and
//! `rel` stay plain request/ack rendezvous. The mid-push races (a sharer
//! evicting or writing while a push is in flight) are absorbed by exactly
//! the same transient-state machinery as migratory's `inv`/`LR` crossing.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::RemoteId;
use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol};
use ccr_core::value::Value;

/// Construction options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateOptions {
    /// `Some(d)` tracks line data modulo `d`; `None` is abstract. Unlike
    /// the other protocols, data tracking is the whole point here — the
    /// coherence property is that sharers agree on the pushed value.
    pub data_domain: Option<i64>,
}

/// Builds the rendezvous write-update specification.
pub fn update(opts: &UpdateOptions) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("update");
    let rreq = b.msg("rreq");
    let gr = b.msg("gr");
    let upd = b.msg("upd");
    let push = b.msg("push");
    let rel = b.msg("rel");

    let track = opts.data_domain;

    // ---- Home node ----------------------------------------------------------
    let s = b.home_var("s", Value::Mask(0));
    let t = b.home_var("t", Value::Mask(0));
    let j = b.home_var("j", Value::Node(RemoteId(0)));
    let k = b.home_var("k", Value::Node(RemoteId(0)));
    let w = b.home_var("w", Value::Node(RemoteId(0)));
    let d = track.map(|_| b.home_var("d", Value::Int(0)));

    let f = b.home_state("F");
    let grs = b.home_state("GR");
    let st_s = b.home_state("S");
    let schk = b.home_internal("SCHK");
    let push_st = b.home_state("PUSH");
    let pushc = b.home_internal("PUSHC");

    let not_empty = |v| Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(v)))));
    let is_empty = |v| Expr::MaskIsEmpty(Box::new(Expr::Var(v)));

    // F: no copies.
    b.home(f).recv_any(rreq).bind_sender(j).goto(grs);
    // GR: grant a read copy.
    {
        let br = b.home(grs).send_to(Expr::Var(j), gr);
        let br = match d {
            Some(dv) => br.payload(Expr::Var(dv)),
            None => br,
        };
        br.assign(s, Expr::MaskAdd(Box::new(Expr::Var(s)), Box::new(Expr::Var(j)))).goto(st_s);
    }
    // S: shared. Readers join, sharers leave, a sharer may write.
    b.home(st_s).recv_any(rreq).bind_sender(j).goto(grs);
    b.home(st_s)
        .recv_any(rel)
        .bind_sender(k)
        .assign(s, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(k))))
        .goto(schk);
    {
        // upd carries the new value; schedule pushes to everyone else.
        let br = b.home(st_s).recv_any(upd).bind_sender(w);
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.assign(t, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(w)))).goto(pushc);
    }
    b.home(schk).when(is_empty(s)).tau().goto(f);
    b.home(schk).when(not_empty(s)).tau().goto(st_s);
    // PUSH: propagate the value to the next sharer; racing evictions shrink
    // both the sharer set and the push set.
    {
        let br = b
            .home(push_st)
            .when(not_empty(t))
            .send_to(Expr::MaskFirst(Box::new(Expr::Var(t))), push);
        let br = match d {
            Some(dv) => br.payload(Expr::Var(dv)),
            None => br,
        };
        br.assign(
            t,
            Expr::MaskDel(
                Box::new(Expr::Var(t)),
                Box::new(Expr::MaskFirst(Box::new(Expr::Var(t)))),
            ),
        )
        .goto(pushc);
    }
    b.home(push_st)
        .recv_any(rel)
        .bind_sender(k)
        .assign(s, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(k))))
        .assign(t, Expr::MaskDel(Box::new(Expr::Var(t)), Box::new(Expr::Var(k))))
        .goto(pushc);
    b.home(pushc).when(is_empty(t)).tau().goto(st_s);
    b.home(pushc).when(not_empty(t)).tau().goto(push_st);
    // PUSH also absorbs competing writes: restart the round with the newer
    // value (without this guard the two-writer deadlock above reappears).
    {
        let br = b.home(push_st).recv_any(upd).bind_sender(w);
        let br = match d {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.assign(t, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(w)))).goto(pushc);
    }

    // ---- Remote node ----------------------------------------------------------
    let data = track.map(|_| b.remote_var("data", Value::Int(0)));

    let i = b.remote_state("I");
    let rrq = b.remote_state("RRQ");
    let wr = b.remote_state("WR");
    let sh = b.remote_state("Sh");
    let upds = b.remote_state("UPDS");
    let rels = b.remote_state("RELS");

    b.remote(i).tau().tag("read").goto(rrq);
    b.remote(rrq).send(rreq).goto(wr);
    {
        let br = b.remote(wr).recv(gr);
        let br = match data {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(sh);
    }
    // Sh: live read copy; absorbs pushes, may write or evict.
    {
        let br = b.remote(sh).recv(push);
        let br = match data {
            Some(dv) => br.bind(dv),
            None => br,
        };
        br.goto(sh);
    }
    b.remote(sh).tau().tag("write").goto(upds);
    b.remote(sh).tau().tag("evict").goto(rels);
    // UPDS: send the new value and resume reading at once (non-blocking
    // writes — see the deadlock note in the module docs).
    {
        let br = b.remote(upds).send(upd);
        let br = match (data, track) {
            (Some(dv), Some(dom)) => br
                .payload(Expr::add_mod(Expr::Var(dv), Expr::int(1), dom))
                .assign(dv, Expr::add_mod(Expr::Var(dv), Expr::int(1), dom)),
            _ => br,
        };
        br.goto(sh);
    }
    {
        let br = b.remote(rels).send(rel);
        let br = match data {
            Some(dv) => br.assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(i);
    }

    b.finish().expect("the update spec satisfies the §2.4 restrictions")
}

/// Builds and refines the update protocol.
pub fn update_refined(opts: &UpdateOptions) -> RefinedProtocol {
    refine(&update(opts), &RefineOptions::default())
        .expect("update refines under the default options")
}

/// Rendezvous-level coherence invariant: whenever the home is quiescent
/// (`F` or `S`), every sharer agrees with the home's data value, and the
/// sharer mask covers every remote holding a copy.
pub fn update_rv_invariant(
    spec: &ProtocolSpec,
) -> impl FnMut(&ccr_runtime::rendezvous::RvState) -> Option<String> {
    let sh = spec.remote.state_by_name("Sh").expect("remote Sh");
    let f = spec.home.state_by_name("F").expect("home F");
    let s_state = spec.home.state_by_name("S").expect("home S");
    let s_var = spec.home.vars.iter().position(|v| v.name == "s").expect("mask");
    let d_var = spec.home.vars.iter().position(|v| v.name == "d");
    let data_var = spec.remote.vars.iter().position(|v| v.name == "data");
    move |st: &ccr_runtime::rendezvous::RvState| {
        let quiescent = st.home.state == f || st.home.state == s_state;
        let sharers: Vec<usize> =
            st.remotes.iter().enumerate().filter(|(_, r)| r.state == sh).map(|(i, _)| i).collect();
        if let Some(Value::Mask(mask)) = st.home.env.get(s_var) {
            for &i in &sharers {
                if mask & (1 << i) == 0 {
                    return Some(format!("r{i} holds a copy outside the sharer mask"));
                }
            }
            if st.home.state == f && mask != 0 {
                return Some("home Free with a non-empty sharer mask".into());
            }
        }
        if quiescent {
            if let (Some(dv), Some(rv)) = (d_var, data_var) {
                if let Some(home_d) = st.home.env.get(dv) {
                    for &i in &sharers {
                        if st.remotes[i].env.get(rv) != Some(home_d) {
                            return Some(format!("sharer r{i} disagrees with the committed value"));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::PairDirection;
    use ccr_core::validate::validate;

    #[test]
    fn spec_is_valid() {
        validate(&update(&UpdateOptions::default())).unwrap();
        validate(&update(&UpdateOptions { data_domain: Some(2) })).unwrap();
    }

    #[test]
    fn detects_rreq_gr_pair() {
        let refined = update_refined(&UpdateOptions { data_domain: Some(2) });
        let spec = &refined.spec;
        let mut names: Vec<(String, String, PairDirection)> = refined
            .pairs
            .iter()
            .map(|p| {
                (spec.msg_name(p.req).to_string(), spec.msg_name(p.repl).to_string(), p.direction)
            })
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![("rreq".to_string(), "gr".to_string(), PairDirection::RemoteRequests)]
        );
        // upd, push and rel stay plain.
        for m in ["upd", "push", "rel"] {
            let mt = spec.msg_by_name(m).unwrap();
            assert_eq!(refined.message_cost(mt), 2, "{m}");
        }
    }
}
