//! The invalidate protocol — a write-invalidate directory.
//!
//! The paper's second Table 3 subject is Avalanche's *invalidate* protocol.
//! Its defining feature (and the reason its state space dwarfs migratory's)
//! is the home-side **sharer set**: multiple remotes may hold read copies
//! simultaneously, and a write request makes the home invalidate each
//! sharer in turn before granting exclusive ownership. We reconstruct it
//! in the paper's specification style:
//!
//! * home states: `F`ree → shared (`S`, sharer set `s`) or exclusive
//!   (`E`, owner `o`); `INV` loops invalidating sharers one at a time for a
//!   waiting writer; `RVS`/`RVX` revoke an exclusive owner for a new
//!   reader/writer;
//! * remote states: `I` → read (`Sh`) or write (`M`) copies, with voluntary
//!   evictions (`rel` for sharers, `wb` write-back for owners) racing
//!   against home-initiated invalidations (`invs` to sharers, `inv`/`ID`
//!   to owners).
//!
//! Refinement detects three request/reply pairs — `rreq/gr`, `wreq/grx`,
//! `inv/ID` — while `invs`, `rel` and `wb` remain plain request/ack
//! rendezvous.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::RemoteId;
use ccr_core::process::ProtocolSpec;
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol};
use ccr_core::value::Value;

/// Construction options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvalidateOptions {
    /// `Some(d)` tracks line data modulo `d`; `None` is abstract.
    pub data_domain: Option<i64>,
}

/// Builds the rendezvous invalidate specification.
pub fn invalidate(opts: &InvalidateOptions) -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("invalidate");
    let rreq = b.msg("rreq");
    let wreq = b.msg("wreq");
    let gr = b.msg("gr");
    let grx = b.msg("grx");
    let invs = b.msg("invs");
    let inv = b.msg("inv");
    let id = b.msg("ID");
    let rel = b.msg("rel");
    let wb = b.msg("wb");

    let track = opts.data_domain;

    // ---- Home node ----------------------------------------------------------
    let s = b.home_var("s", Value::Mask(0));
    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let j = b.home_var("j", Value::Node(RemoteId(0)));
    let k = b.home_var("k", Value::Node(RemoteId(0)));
    let d = track.map(|_| b.home_var("d", Value::Int(0)));

    let f = b.home_state("F");
    let gs = b.home_state("GS");
    let gx = b.home_state("GX");
    let st_s = b.home_state("S");
    let schk = b.home_internal("SCHK");
    let inv_st = b.home_state("INV");
    let invc = b.home_internal("INVC");
    let e = b.home_state("E");
    let rvs = b.home_state("RVS");
    let rvs2 = b.home_state("RVS2");
    let rvx = b.home_state("RVX");
    let rvx2 = b.home_state("RVX2");

    fn opt_payload(
        br: ccr_core::builder::BranchBuilder<'_>,
        d: Option<ccr_core::ids::VarId>,
    ) -> ccr_core::builder::BranchBuilder<'_> {
        match d {
            Some(dv) => br.payload(Expr::Var(dv)),
            None => br,
        }
    }
    fn opt_bind(
        br: ccr_core::builder::BranchBuilder<'_>,
        d: Option<ccr_core::ids::VarId>,
    ) -> ccr_core::builder::BranchBuilder<'_> {
        match d {
            Some(dv) => br.bind(dv),
            None => br,
        }
    }

    // F: no copies anywhere.
    b.home(f).recv_any(rreq).bind_sender(j).goto(gs);
    b.home(f).recv_any(wreq).bind_sender(j).goto(gx);
    // GS: grant a read copy.
    opt_payload(b.home(gs).send_to(Expr::Var(j), gr), d)
        .assign(s, Expr::MaskAdd(Box::new(Expr::Var(s)), Box::new(Expr::Var(j))))
        .goto(st_s);
    // GX: grant exclusive ownership.
    opt_payload(b.home(gx).send_to(Expr::Var(j), grx), d).assign(o, Expr::Var(j)).goto(e);
    // S: read-shared; sharers come and go, writers trigger invalidation.
    b.home(st_s).recv_any(rreq).bind_sender(j).goto(gs);
    b.home(st_s).recv_any(wreq).bind_sender(j).goto(inv_st);
    b.home(st_s)
        .recv_any(rel)
        .bind_sender(k)
        .assign(s, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(k))))
        .goto(schk);
    // SCHK: did the last sharer leave?
    b.home(schk).when(Expr::MaskIsEmpty(Box::new(Expr::Var(s)))).tau().goto(f);
    b.home(schk)
        .when(Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(s))))))
        .tau()
        .goto(st_s);
    // INV: invalidate sharers one at a time for the waiting writer `j`.
    b.home(inv_st)
        .when(Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(s))))))
        .send_to(Expr::MaskFirst(Box::new(Expr::Var(s))), invs)
        .assign(
            s,
            Expr::MaskDel(
                Box::new(Expr::Var(s)),
                Box::new(Expr::MaskFirst(Box::new(Expr::Var(s)))),
            ),
        )
        .goto(invc);
    b.home(inv_st)
        .recv_any(rel)
        .bind_sender(k)
        .assign(s, Expr::MaskDel(Box::new(Expr::Var(s)), Box::new(Expr::Var(k))))
        .goto(invc);
    // INVC: all sharers gone?
    b.home(invc).when(Expr::MaskIsEmpty(Box::new(Expr::Var(s)))).tau().goto(gx);
    b.home(invc)
        .when(Expr::Not(Box::new(Expr::MaskIsEmpty(Box::new(Expr::Var(s))))))
        .tau()
        .goto(inv_st);
    // E: exclusive owner `o`.
    b.home(e).recv_any(rreq).bind_sender(j).goto(rvs);
    b.home(e).recv_any(wreq).bind_sender(j).goto(rvx);
    opt_bind(b.home(e).recv_exact(wb, Expr::Var(o)), d).goto(f);
    // RVS: revoke the owner for a reader.
    b.home(rvs).send_to(Expr::Var(o), inv).goto(rvs2);
    opt_bind(b.home(rvs).recv_exact(wb, Expr::Var(o)), d).goto(gs);
    opt_bind(b.home(rvs2).recv_exact(id, Expr::Var(o)), d).goto(gs);
    opt_bind(b.home(rvs2).recv_exact(wb, Expr::Var(o)), d).goto(gs);
    // RVX: revoke the owner for a writer.
    b.home(rvx).send_to(Expr::Var(o), inv).goto(rvx2);
    opt_bind(b.home(rvx).recv_exact(wb, Expr::Var(o)), d).goto(gx);
    opt_bind(b.home(rvx2).recv_exact(id, Expr::Var(o)), d).goto(gx);
    opt_bind(b.home(rvx2).recv_exact(wb, Expr::Var(o)), d).goto(gx);

    // ---- Remote node ----------------------------------------------------------
    let data = track.map(|_| b.remote_var("data", Value::Int(0)));

    let i = b.remote_state("I");
    let rrq = b.remote_state("RRQ");
    let wr = b.remote_state("WR");
    let wrq = b.remote_state("WRQ");
    let ww = b.remote_state("WW");
    let sh = b.remote_state("Sh");
    let rels = b.remote_state("RELS");
    let m = b.remote_state("M");
    let ids = b.remote_state("IDS");
    let wbs = b.remote_state("WBS");

    b.remote(i).tau().tag("read").goto(rrq);
    b.remote(i).tau().tag("write").goto(wrq);
    b.remote(rrq).send(rreq).goto(wr);
    opt_bind(b.remote(wr).recv(gr), data).goto(sh);
    b.remote(wrq).send(wreq).goto(ww);
    opt_bind(b.remote(ww).recv(grx), data).goto(m);
    // Sh: read copy. Invalid lines carry no data: reset on leaving.
    {
        let br = b.remote(sh).recv(invs);
        let br = match data {
            Some(dv) => br.assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(i);
    }
    b.remote(sh).tau().tag("evict").goto(rels);
    {
        let br = b.remote(rels).send(rel);
        let br = match data {
            Some(dv) => br.assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(i);
    }
    // M: writable copy.
    if let (Some(dv), Some(dom)) = (data, track) {
        b.remote(m)
            .tau()
            .tag("write")
            .assign(dv, Expr::add_mod(Expr::Var(dv), Expr::int(1), dom))
            .goto(m);
    }
    b.remote(m).recv(inv).goto(ids);
    b.remote(m).tau().tag("evict").goto(wbs);
    {
        let br = opt_payload(b.remote(ids).send(id), data);
        let br = match data {
            Some(dv) => br.assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(i);
    }
    {
        let br = opt_payload(b.remote(wbs).send(wb), data);
        let br = match data {
            Some(dv) => br.assign(dv, Expr::int(0)),
            None => br,
        };
        br.goto(i);
    }

    b.finish().expect("the invalidate spec satisfies the §2.4 restrictions")
}

/// Builds and refines the invalidate protocol with automatic request/reply
/// detection.
pub fn invalidate_refined(opts: &InvalidateOptions) -> RefinedProtocol {
    refine(&invalidate(opts), &RefineOptions::default())
        .expect("invalidate refines under the default options")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::PairDirection;
    use ccr_core::validate::validate;

    #[test]
    fn spec_is_valid_both_variants() {
        validate(&invalidate(&InvalidateOptions::default())).unwrap();
        validate(&invalidate(&InvalidateOptions { data_domain: Some(2) })).unwrap();
    }

    #[test]
    fn detects_three_pairs() {
        let refined = invalidate_refined(&InvalidateOptions::default());
        let spec = &refined.spec;
        let mut names: Vec<(String, String, PairDirection)> = refined
            .pairs
            .iter()
            .map(|p| {
                (spec.msg_name(p.req).to_string(), spec.msg_name(p.repl).to_string(), p.direction)
            })
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                ("inv".to_string(), "ID".to_string(), PairDirection::HomeRequests),
                ("rreq".to_string(), "gr".to_string(), PairDirection::RemoteRequests),
                ("wreq".to_string(), "grx".to_string(), PairDirection::RemoteRequests),
            ]
        );
    }

    #[test]
    fn plain_messages_cost_two() {
        let refined = invalidate_refined(&InvalidateOptions::default());
        for name in ["invs", "rel", "wb"] {
            let m = refined.spec.msg_by_name(name).unwrap();
            assert_eq!(refined.message_cost(m), 2, "{name} should be unoptimized");
        }
    }

    #[test]
    fn state_inventory() {
        let spec = invalidate(&InvalidateOptions::default());
        assert_eq!(spec.home.states.len(), 12);
        assert_eq!(spec.remote.states.len(), 10);
    }
}
