//! Specs contributed by derivation fuzzing (`ccr fuzz`).
//!
//! * [`zoo_unsound_pair`] is a shrunk counterexample the zoo found against
//!   the request/reply detector: the remote emits `m0` *spontaneously*
//!   from its initial state and never receives `m1`, yet the detector used
//!   to classify `(m1, m0)` as a home-requested pair (the remote-side
//!   condition was vacuously true), mark the `m0` send fire-and-forget,
//!   and the derived executor trapped on the home's ack of an unsolicited
//!   `m0`. The detector now rejects the pair (remote reply sends must be
//!   dominated by a request receive), so refinement falls back to the
//!   plain ack protocol — this spec pins that behavior.
//! * [`zoo_chain`] is a curated zoo member exercising a path no
//!   hand-written spec hits: after one optimized request/reply hop, the
//!   home pushes a *3-message passive chain* (`a`, `b`, `c`) through the
//!   owner before returning to idle. Fully permutable, fully enumerable.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::RemoteId;
use ccr_core::process::ProtocolSpec;
use ccr_core::value::Value;

/// The shrunk fuzzing counterexample (seed 7, index 34) that exposed the
/// missing remote-side reply-domination check in the §3.3 pair detector.
pub fn zoo_unsound_pair() -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("zoo_unsound_pair");
    let m0 = b.msg("m0");
    let m1 = b.msg("m1");

    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let h0 = b.home_state("H0");
    let h1 = b.home_state("H1");
    b.home(h0).recv_exact(m0, Expr::Var(o)).goto(h1);
    b.home(h1).send_to(Expr::Var(o), m1).goto(h0);

    let r0 = b.remote_state("R0");
    b.remote(r0).send(m0).goto(r0);

    b.finish().expect("the counterexample satisfies the §2.4 restrictions")
}

/// A 3-message passive chain: the remote requests, then passively consumes
/// `a`, `b`, `c` pushed by the home in order.
pub fn zoo_chain() -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("zoo_chain");
    let req = b.msg("req");
    let a = b.msg("a");
    let bb = b.msg("b");
    let c = b.msg("c");

    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let h0 = b.home_state("H0");
    let h1 = b.home_state("H1");
    let h2 = b.home_state("H2");
    let h3 = b.home_state("H3");
    b.home(h0).recv_any(req).bind_sender(o).goto(h1);
    b.home(h1).send_to(Expr::Var(o), a).goto(h2);
    b.home(h2).send_to(Expr::Var(o), bb).goto(h3);
    b.home(h3).send_to(Expr::Var(o), c).goto(h0);

    let r0 = b.remote_state("R0");
    let r1 = b.remote_state("R1");
    let r2 = b.remote_state("R2");
    let r3 = b.remote_state("R3");
    b.remote(r0).send(req).goto(r1);
    b.remote(r1).recv(a).goto(r2);
    b.remote(r2).recv(bb).goto(r3);
    b.remote(r3).recv(c).goto(r0);

    b.finish().expect("the chain satisfies the §2.4 restrictions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::{refine, RefineOptions};

    /// The regression: Auto mode must find *no* pairs here (it used to
    /// find the unsound `(m1, m0)` one).
    #[test]
    fn unsound_pair_is_rejected_by_the_detector() {
        let spec = zoo_unsound_pair();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        assert!(
            refined.pairs.is_empty(),
            "detector re-accepted an unsound pair: {:?}",
            refined.pairs
        );
        assert!(refined.remote_fire_forget.is_empty());
    }

    /// The chain's first hop is an ordinary remote-requested pair; the
    /// rest of the chain stays plain rendezvous.
    #[test]
    fn chain_optimizes_only_the_request_hop() {
        let spec = zoo_chain();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        assert_eq!(refined.pairs.len(), 1);
        assert_eq!(spec.msg_name(refined.pairs[0].req), "req");
        assert_eq!(spec.msg_name(refined.pairs[0].repl), "a");
    }
}
