//! # ccr-protocols — concrete DSM cache-coherence protocols
//!
//! Rendezvous specifications of the protocols the paper studies, plus the
//! baselines its evaluation compares against:
//!
//! * [`mod@migratory`] — the Avalanche *migratory* protocol of paper Figures 2
//!   and 3: a single line migrates between remotes; the home records the
//!   owner and revokes with `inv`, owners relinquish with `LR`.
//! * [`mod@invalidate`] — the Avalanche *invalidate* protocol (reconstructed):
//!   a write-invalidate directory with a sharer set, read/write grants, and
//!   per-sharer invalidations. This is the second subject of Table 3.
//! * [`mod@token`] — a minimal single-token protocol used by documentation,
//!   examples and as a smoke-test subject.
//! * [`mod@update`] — a *write-update* protocol (extension): writes push
//!   the new value to all sharers instead of invalidating them, exercising
//!   the framework on a second protocol family.
//! * [`hand`] — the hand-designed asynchronous migratory baseline: the
//!   derived protocol with the `LR` ack elided (the paper's "dotted line"
//!   difference in §5), used by the message-efficiency comparison.
//! * [`props`] — the coherence safety invariants of each protocol, checked
//!   by `ccr-mc` at both semantic levels.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hand;
pub mod invalidate;
pub mod migratory;
pub mod props;
pub mod token;
pub mod update;
pub mod zoo;

pub use hand::migratory_hand;
pub use invalidate::{invalidate, InvalidateOptions};
pub use migratory::{migratory, MigratoryOptions};
pub use token::token;
pub use update::{update, UpdateOptions};
