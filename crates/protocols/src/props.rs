//! Coherence safety invariants for the bundled protocols.
//!
//! Each helper takes the protocol's spec (to resolve state names to ids)
//! and returns a closure suitable for `ccr_mc::search::explore`. The
//! rendezvous-level invariants are the strong ones; the asynchronous-level
//! invariants restrict attention to settled (`At`) control states, since
//! transient windows are exactly what the abstraction function accounts
//! for — full asynchronous safety follows from the rendezvous invariant
//! plus the Equation 1 check.

use ccr_core::ids::StateId;
use ccr_core::process::ProtocolSpec;
use ccr_core::value::Value;
use ccr_runtime::asynch::{AsyncState, RemotePhase};
use ccr_runtime::rendezvous::RvState;

fn remote_states(spec: &ProtocolSpec, names: &[&str]) -> Vec<StateId> {
    names
        .iter()
        .map(|n| spec.remote.state_by_name(n).unwrap_or_else(|| panic!("missing remote state {n}")))
        .collect()
}

/// Migratory, rendezvous level: at most one remote holds the line (`V`,
/// `IDS` or `LRS`), and while the home is Free (`F`) nobody holds it.
pub fn migratory_rv_invariant(spec: &ProtocolSpec) -> impl FnMut(&RvState) -> Option<String> {
    let holders = remote_states(spec, &["V", "IDS", "LRS"]);
    let f = spec.home.state_by_name("F").expect("home F");
    move |s: &RvState| {
        let holding: Vec<usize> = s
            .remotes
            .iter()
            .enumerate()
            .filter(|(_, r)| holders.contains(&r.state))
            .map(|(i, _)| i)
            .collect();
        if holding.len() > 1 {
            return Some(format!("{} remotes hold the migratory line", holding.len()));
        }
        if s.home.state == f && !holding.is_empty() {
            return Some("home is Free while a remote holds the line".into());
        }
        None
    }
}

/// Migratory, asynchronous level: at most one remote is settled in a
/// holder state.
pub fn migratory_async_invariant(spec: &ProtocolSpec) -> impl FnMut(&AsyncState) -> Option<String> {
    let holders = remote_states(spec, &["V", "IDS", "LRS"]);
    move |s: &AsyncState| {
        let count = s
            .remotes
            .iter()
            .filter(|r| matches!(r.phase, RemotePhase::At(st) if holders.contains(&st)))
            .count();
        if count > 1 {
            Some(format!("{count} remotes settled in migratory holder states"))
        } else {
            None
        }
    }
}

/// Invalidate, rendezvous level:
/// * at most one remote in `M` (or the write-back/flush states);
/// * no remote in `M` while any remote is in `Sh`;
/// * every remote in `Sh` agrees with the home's data value (only when the
///   spec tracks data);
/// * the home-side sharer mask covers every remote in `Sh`.
pub fn invalidate_rv_invariant(spec: &ProtocolSpec) -> impl FnMut(&RvState) -> Option<String> {
    let writers = remote_states(spec, &["M", "IDS", "WBS"]);
    let sh = spec.remote.state_by_name("Sh").expect("remote Sh");
    let s_var = spec.home.vars.iter().position(|v| v.name == "s").expect("home sharer mask");
    let d_var = spec.home.vars.iter().position(|v| v.name == "d");
    let data_var = spec.remote.vars.iter().position(|v| v.name == "data");
    move |s: &RvState| {
        let m_count = s.remotes.iter().filter(|r| writers.contains(&r.state)).count();
        if m_count > 1 {
            return Some(format!("{m_count} writers"));
        }
        let sharers: Vec<usize> =
            s.remotes.iter().enumerate().filter(|(_, r)| r.state == sh).map(|(i, _)| i).collect();
        if m_count > 0 && !sharers.is_empty() {
            return Some("a writer coexists with read sharers".into());
        }
        if let Some(Value::Mask(mask)) = s.home.env.get(s_var) {
            for &i in &sharers {
                if mask & (1 << i) == 0 {
                    return Some(format!("remote r{i} is in Sh but not in the sharer mask"));
                }
            }
        }
        if let (Some(dv), Some(rv)) = (d_var, data_var) {
            if let Some(home_d) = s.home.env.get(dv) {
                for &i in &sharers {
                    if s.remotes[i].env.get(rv) != Some(home_d) {
                        return Some(format!(
                            "sharer r{i} disagrees with home data ({:?} vs {home_d})",
                            s.remotes[i].env.get(rv)
                        ));
                    }
                }
            }
        }
        None
    }
}

/// Invalidate, asynchronous level: at most one settled writer, and settled
/// writers exclude settled sharers.
pub fn invalidate_async_invariant(
    spec: &ProtocolSpec,
) -> impl FnMut(&AsyncState) -> Option<String> {
    let m = spec.remote.state_by_name("M").expect("remote M");
    let sh = spec.remote.state_by_name("Sh").expect("remote Sh");
    move |s: &AsyncState| {
        let settled = |st: StateId| {
            s.remotes
                .iter()
                .filter(move |r| matches!(r.phase, RemotePhase::At(x) if x == st))
                .count()
        };
        let writers = settled(m);
        if writers > 1 {
            return Some(format!("{writers} settled writers"));
        }
        if writers > 0 && settled(sh) > 0 {
            return Some("settled writer coexists with settled sharer".into());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invalidate::{invalidate, InvalidateOptions};
    use crate::migratory::{migratory, MigratoryOptions};
    use ccr_core::value::Env;
    use ccr_runtime::rendezvous::Local;

    #[test]
    fn migratory_invariant_flags_two_holders() {
        let spec = migratory(&MigratoryOptions::default());
        let v = spec.remote.state_by_name("V").unwrap();
        let e = spec.home.state_by_name("E").unwrap();
        let mut inv = migratory_rv_invariant(&spec);
        let good = RvState {
            home: Local { state: e, env: spec.home.initial_env() },
            remotes: vec![
                Local { state: v, env: spec.remote.initial_env() },
                Local { state: spec.remote.initial, env: spec.remote.initial_env() },
            ],
        };
        assert!(inv(&good).is_none());
        let bad = RvState {
            home: Local { state: e, env: spec.home.initial_env() },
            remotes: vec![
                Local { state: v, env: spec.remote.initial_env() },
                Local { state: v, env: spec.remote.initial_env() },
            ],
        };
        assert!(inv(&bad).is_some());
    }

    #[test]
    fn migratory_invariant_flags_free_home_with_holder() {
        let spec = migratory(&MigratoryOptions::default());
        let v = spec.remote.state_by_name("V").unwrap();
        let f = spec.home.state_by_name("F").unwrap();
        let mut inv = migratory_rv_invariant(&spec);
        let bad = RvState {
            home: Local { state: f, env: spec.home.initial_env() },
            remotes: vec![Local { state: v, env: spec.remote.initial_env() }],
        };
        assert!(inv(&bad).is_some());
    }

    #[test]
    fn invalidate_invariant_flags_writer_sharer_mix() {
        let spec = invalidate(&InvalidateOptions::default());
        let m = spec.remote.state_by_name("M").unwrap();
        let sh = spec.remote.state_by_name("Sh").unwrap();
        let e = spec.home.state_by_name("E").unwrap();
        let mut inv = invalidate_rv_invariant(&spec);
        let bad = RvState {
            home: Local { state: e, env: spec.home.initial_env() },
            remotes: vec![
                Local { state: m, env: spec.remote.initial_env() },
                Local { state: sh, env: spec.remote.initial_env() },
            ],
        };
        assert!(inv(&bad).is_some());
    }

    #[test]
    fn invalidate_invariant_checks_sharer_mask() {
        let spec = invalidate(&InvalidateOptions::default());
        let sh = spec.remote.state_by_name("Sh").unwrap();
        let s_state = spec.home.state_by_name("S").unwrap();
        let mut inv = invalidate_rv_invariant(&spec);
        // Sharer r0 present but the mask is empty: violation.
        let bad = RvState {
            home: Local { state: s_state, env: spec.home.initial_env() },
            remotes: vec![Local { state: sh, env: spec.remote.initial_env() }],
        };
        assert!(inv(&bad).is_some());
        // With the mask recording r0 it passes.
        let mut env = spec.home.initial_env();
        let s_var = spec.home.vars.iter().position(|v| v.name == "s").unwrap();
        env.set(s_var, Value::Mask(0b1));
        let good = RvState {
            home: Local { state: s_state, env },
            remotes: vec![Local { state: sh, env: spec.remote.initial_env() }],
        };
        assert!(inv(&good).is_none());
        let _ = Env::new(vec![]);
    }
}
