//! A minimal single-token protocol.
//!
//! The simplest protocol expressible in the model: remotes request a token
//! (`req`), the home grants it (`gr`) to one requester at a time, and the
//! holder releases it (`rel`). It exists for documentation, quickstart
//! examples and as a small, fully-enumerable test subject; `req/gr` is a
//! request/reply pair, `rel` is a plain rendezvous, so the derived
//! protocol exercises both refinement schemes.

use ccr_core::builder::ProtocolBuilder;
use ccr_core::expr::Expr;
use ccr_core::ids::RemoteId;
use ccr_core::process::ProtocolSpec;
use ccr_core::value::Value;

/// Builds the token rendezvous specification.
pub fn token() -> ProtocolSpec {
    let mut b = ProtocolBuilder::new("token");
    let req = b.msg("req");
    let gr = b.msg("gr");
    let rel = b.msg("rel");

    let o = b.home_var("o", Value::Node(RemoteId(0)));
    let f = b.home_state("F");
    let g1 = b.home_state("G1");
    let e = b.home_state("E");
    b.home(f).recv_any(req).bind_sender(o).goto(g1);
    b.home(g1).send_to(Expr::Var(o), gr).goto(e);
    b.home(e).recv_exact(rel, Expr::Var(o)).goto(f);

    let i = b.remote_state("I");
    let rq = b.remote_state("RQ");
    let w = b.remote_state("W");
    let v = b.remote_state("V");
    b.remote(i).tau().tag("acquire").goto(rq);
    b.remote(rq).send(req).goto(w);
    b.remote(w).recv(gr).goto(v);
    b.remote(v).send(rel).goto(i);

    b.finish().expect("the token spec satisfies the §2.4 restrictions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccr_core::refine::{refine, PairDirection, RefineOptions};

    #[test]
    fn token_is_valid_and_optimizes_req_gr() {
        let spec = token();
        let refined = refine(&spec, &RefineOptions::default()).unwrap();
        assert_eq!(refined.pairs.len(), 1);
        assert_eq!(refined.pairs[0].direction, PairDirection::RemoteRequests);
        assert_eq!(spec.msg_name(refined.pairs[0].req), "req");
        assert_eq!(spec.msg_name(refined.pairs[0].repl), "gr");
    }
}
