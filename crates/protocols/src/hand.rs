//! The hand-designed asynchronous migratory baseline.
//!
//! The paper notes (§5) that the Avalanche team's hand-built asynchronous
//! migratory protocol differs from the derived one in exactly one way: "in
//! their protocol the dotted lines are actions, i.e., no ack is exchanged
//! after an LR message". We reconstruct that baseline by taking the derived
//! protocol and making `LR` *unacknowledged*: the evicting owner sends `LR`
//! and proceeds to Invalid at once, and the home must always sink the
//! message.
//!
//! Two executor accommodations are required (and are themselves part of
//! what the hand design has to get right, which is the paper's argument):
//!
//! * the home can never nack an `LR`, so it gets an elastic buffer
//!   allowance for unacked messages ([`hand_async_config`] sizes it at one
//!   slot per remote — each remote has at most one `LR` outstanding);
//! * a stale `inv` can now reach a remote that already gave the line up
//!   (the `LR` crossed it on the wire), so remotes must silently drop
//!   unmatched home requests (`drop_unmatched`) instead of nacking.
//!
//! Because the evicting remote commits unilaterally, this baseline does
//! *not* satisfy the per-step Equation 1 against the rendezvous spec with
//! the standard abstraction function — which is precisely why the paper
//! has to verify hand designs at the expensive asynchronous level
//! (Table 3), while derived protocols are verified once at the rendezvous
//! level.

use crate::migratory::{migratory, MigratoryOptions};
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol};
use ccr_runtime::asynch::AsyncConfig;

/// Builds the hand-designed asynchronous migratory baseline.
pub fn migratory_hand(opts: &MigratoryOptions) -> RefinedProtocol {
    let spec = migratory(opts);
    let mut refined = refine(&spec, &RefineOptions::default()).expect("migratory refines");
    let lr = refined.spec.msg_by_name("LR").expect("migratory has LR");
    refined.make_unacked(lr).expect("LR is a remote-sent plain rendezvous");
    refined
}

/// The executor configuration the hand baseline needs: one elastic buffer
/// slot per remote for in-flight `LR`s, and silent dropping of stale home
/// requests.
pub fn hand_async_config(n: u32) -> AsyncConfig {
    AsyncConfig { unacked_allowance: n as usize, drop_unmatched: true, ..AsyncConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lr_becomes_free_in_the_hand_baseline() {
        let hand = migratory_hand(&MigratoryOptions::default());
        let lr = hand.spec.msg_by_name("LR").unwrap();
        assert_eq!(hand.message_cost(lr), 1, "unacked LR costs a single message");
        assert!(hand.unacked.contains(&lr));
        assert!(hand.home_noack.contains(&lr));
        // The remote's LR send branch is now fire-and-forget.
        let lrs = hand.spec.remote.state_by_name("LRS").unwrap();
        assert!(hand.remote_fire_forget.contains(&(lrs, 0)));
    }

    #[test]
    fn config_scales_allowance_with_n() {
        let c = hand_async_config(8);
        assert_eq!(c.unacked_allowance, 8);
        assert!(c.drop_unmatched);
        assert_eq!(c.home_buffer, 2);
    }

    #[test]
    fn make_unacked_rejects_optimized_messages() {
        let mut refined = crate::migratory::migratory_refined(&MigratoryOptions::default());
        let req = refined.spec.msg_by_name("req").unwrap();
        assert!(refined.make_unacked(req).is_err(), "req is in a req/repl pair");
        let gr = refined.spec.msg_by_name("gr").unwrap();
        assert!(refined.make_unacked(gr).is_err(), "gr is home-sent");
    }
}
