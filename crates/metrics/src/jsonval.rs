//! A small recursive-descent JSON parser. The vendored `serde` only
//! *writes* JSON, but the bench comparator and the metrics tests need to
//! *read* snapshots and `BENCH_*.json` files back; this module closes
//! that loop without adding a dependency.
//!
//! Object members keep their source order (and may repeat); [`Json::get`]
//! returns the first match, which is what the comparator wants.

/// A parsed JSON value. Numbers are kept as `f64` — every number this
/// workspace writes fits (counts are well below 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// First member named `key`, if this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole nonnegative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in source order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Walk a `.`-separated member path (`"store.arena_bytes_per_state"`).
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |node, key| node.get(key))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap(), Json::Str("é".into()));
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"a":[1,2,{"b":null}],"c":{"d":false}}"#).unwrap();
        assert_eq!(doc.path("c.d").and_then(Json::as_bool), Some(false));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2", "{\"a\":}", "nul"] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_a_registry_snapshot() {
        let reg = crate::Registry::new();
        reg.counter("states_total", "states").add(123);
        reg.histogram("len", "lens", &[4, 8]).observe(5);
        let text = reg.snapshot().to_json();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.path("counters.states_total").and_then(Json::as_u64), Some(123));
        assert_eq!(doc.path("histograms.len.count").and_then(Json::as_u64), Some(1));
        let counts = doc.path("histograms.len.counts").and_then(Json::as_array).unwrap();
        assert_eq!(counts.len(), 3);
    }
}
