//! Live run status files: a small JSON snapshot of a running search,
//! rewritten atomically on a wall-clock interval so another process
//! (`ccr watch`) can tail a long run without attaching to it.
//!
//! Atomicity is by rename: [`StatusWriter::write`] serializes into a
//! hidden sibling temp file and `rename(2)`s it over the target, so a
//! concurrent reader sees either the previous snapshot or the new one,
//! never a torn mix. A monotonically increasing `seq` field lets
//! readers detect updates without comparing whole documents.

use crate::jsonval::Json;
use crate::profile::{ProfileAgg, SpanKind};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One point-in-time snapshot of a run, as written to the status file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStatus {
    /// Spec path or workload name the run is verifying.
    pub spec: String,
    /// Current phase (e.g. `explore`, `progress`, `done`).
    pub phase: String,
    /// States discovered so far.
    pub states: u64,
    /// Transitions taken so far (0 if the engine does not track it).
    pub transitions: u64,
    /// Current frontier size.
    pub frontier: u64,
    /// Current BFS depth / level, when known.
    pub depth: Option<u64>,
    /// Recent exploration rate.
    pub states_per_sec: f64,
    /// Approximate store footprint in bytes.
    pub store_bytes: u64,
    /// Milliseconds since the run started.
    pub elapsed_ms: u64,
    /// Estimated milliseconds to completion, when a target is known.
    pub eta_ms: Option<u64>,
    /// Per-span-kind seconds (kind name → seconds), present when
    /// profiling is on.
    pub spans: Vec<(String, f64)>,
    /// Whether the run has finished.
    pub finished: bool,
    /// Final outcome string, set with `finished`.
    pub outcome: Option<String>,
    /// Monotonically increasing write sequence number.
    pub seq: u64,
    /// PID of the writing process, so a watcher can tell a stalled run
    /// from a dead one (`/proc/<pid>` gone ⇒ the run died).
    pub pid: Option<u64>,
}

impl RunStatus {
    /// Fills [`RunStatus::spans`] from a profile aggregate (nonzero
    /// kinds only, canonical order).
    pub fn set_spans(&mut self, agg: &ProfileAgg) {
        self.spans.clear();
        let totals = agg.totals();
        for (k, kind) in SpanKind::ALL.iter().enumerate() {
            if totals[k].nanos > 0 {
                self.spans.push((kind.name().to_string(), totals[k].secs()));
            }
        }
    }

    /// Serializes to a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut ser = serde::Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("spec", &self.spec);
            map.entry("phase", &self.phase);
            map.entry("states", &self.states);
            map.entry("transitions", &self.transitions);
            map.entry("frontier", &self.frontier);
            map.entry("depth", &self.depth);
            map.entry("states_per_sec", &self.states_per_sec);
            map.entry("store_bytes", &self.store_bytes);
            map.entry("elapsed_ms", &self.elapsed_ms);
            map.entry("eta_ms", &self.eta_ms);
            map.entry_with("spans", |ser| {
                let mut spans = ser.begin_map();
                for (name, secs) in &self.spans {
                    spans.entry(name, secs);
                }
                spans.end();
            });
            map.entry("finished", &self.finished);
            map.entry("outcome", &self.outcome);
            map.entry("seq", &self.seq);
            map.entry("pid", &self.pid);
            map.end();
        }
        ser.into_string()
    }

    /// Parses a document produced by [`RunStatus::to_json`].
    pub fn parse(text: &str) -> Result<RunStatus, String> {
        let json = Json::parse(text)?;
        let str_of = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("status missing `{key}`"))
        };
        let u64_of = |key: &str| {
            json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("status missing `{key}`"))
        };
        let mut spans = Vec::new();
        if let Some(obj) = json.get("spans").and_then(Json::as_object) {
            for (name, v) in obj {
                spans.push((
                    name.clone(),
                    v.as_f64().ok_or_else(|| format!("span `{name}` not a number"))?,
                ));
            }
        }
        Ok(RunStatus {
            spec: str_of("spec")?,
            phase: str_of("phase")?,
            states: u64_of("states")?,
            transitions: u64_of("transitions")?,
            frontier: u64_of("frontier")?,
            depth: json.get("depth").and_then(Json::as_u64),
            states_per_sec: json
                .get("states_per_sec")
                .and_then(Json::as_f64)
                .ok_or("status missing `states_per_sec`")?,
            store_bytes: u64_of("store_bytes")?,
            elapsed_ms: u64_of("elapsed_ms")?,
            eta_ms: json.get("eta_ms").and_then(Json::as_u64),
            spans,
            finished: json
                .get("finished")
                .and_then(Json::as_bool)
                .ok_or("status missing `finished`")?,
            outcome: json.get("outcome").and_then(Json::as_str).map(str::to_string),
            seq: u64_of("seq")?,
            pid: json.get("pid").and_then(Json::as_u64),
        })
    }

    /// Reads and parses a status file.
    pub fn read(path: &Path) -> Result<RunStatus, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        RunStatus::parse(&text)
    }
}

/// Writes [`RunStatus`] snapshots to a file via atomic rename. Cloning
/// shares the sequence counter, so several phases of one run can write
/// to the same file without reusing sequence numbers.
#[derive(Clone)]
pub struct StatusWriter {
    path: PathBuf,
    tmp: PathBuf,
    seq: Arc<AtomicU64>,
}

impl StatusWriter {
    /// A writer targeting `path`. The temp file is a hidden sibling
    /// (`.{name}.tmp`) so the rename stays on one filesystem.
    pub fn create(path: impl Into<PathBuf>) -> StatusWriter {
        let path = path.into();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        let tmp = path.with_file_name(format!(".{name}.tmp"));
        StatusWriter { path, tmp, seq: Arc::new(AtomicU64::new(0)) }
    }

    /// The target path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stamps `status.seq` with the next sequence number and replaces
    /// the status file atomically.
    pub fn write(&self, status: &mut RunStatus) -> io::Result<()> {
        status.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut doc = status.to_json();
        doc.push('\n');
        std::fs::write(&self.tmp, doc)?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profiler, SpanKind};

    fn sample() -> RunStatus {
        RunStatus {
            spec: "specs/migratory.ccp".into(),
            phase: "explore".into(),
            states: 52728,
            transitions: 138312,
            frontier: 991,
            depth: Some(17),
            states_per_sec: 325409.5,
            store_bytes: 1 << 20,
            elapsed_ms: 162,
            eta_ms: Some(40),
            spans: vec![("compute".into(), 0.05), ("barrier_wait".into(), 0.01)],
            finished: false,
            outcome: None,
            seq: 0,
            pid: Some(4242),
        }
    }

    #[test]
    fn status_round_trips_through_json() {
        let status = sample();
        let parsed = RunStatus::parse(&status.to_json()).unwrap();
        assert_eq!(parsed, status);

        let mut done = sample();
        done.depth = None;
        done.eta_ms = None;
        done.finished = true;
        done.outcome = Some("ok".into());
        let parsed = RunStatus::parse(&done.to_json()).unwrap();
        assert_eq!(parsed, done);
    }

    #[test]
    fn writer_bumps_seq_and_replaces_file() {
        let dir = std::env::temp_dir().join(format!("ccr-status-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let writer = StatusWriter::create(dir.join("status.json"));
        let mut status = sample();
        writer.write(&mut status).unwrap();
        assert_eq!(status.seq, 1);
        status.states += 1;
        writer.write(&mut status).unwrap();
        assert_eq!(status.seq, 2);
        let read = RunStatus::read(writer.path()).unwrap();
        assert_eq!(read.seq, 2);
        assert_eq!(read.states, sample().states + 1);
        assert!(!writer.tmp.exists(), "temp file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn set_spans_takes_nonzero_kinds_in_order() {
        let prof = Profiler::new();
        let mut t = prof.worker(0);
        t.lap(SpanKind::Encode, 1);
        t.lap(SpanKind::Compute, 1);
        drop(t);
        let mut status = RunStatus::default();
        status.set_spans(&prof.aggregate());
        let names: Vec<&str> = status.spans.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["compute", "encode"]);
        assert!(status.spans.iter().all(|(_, s)| *s > 0.0));
    }
}
