//! Unified metrics registry for the coherence-refinement pipeline.
//!
//! Where `ccr-trace` answers *what happened* (an ordered event stream),
//! this crate answers *how much and how fast*: monotonic counters,
//! gauges, fixed-bucket histograms — all plain relaxed atomics on the
//! hot path — plus hierarchical wall-clock phase timers for the
//! parse → refine → explore → progress-check → report pipeline.
//!
//! The design mirrors `ccr-trace`'s `NullSink` pattern: a [`Registry`]
//! is either *enabled* (backed by shared state) or *null*
//! ([`Registry::default`] / [`Registry::disabled`]), and every handle
//! obtained from a null registry is a no-op whose record methods cost
//! one branch on an `Option` that is always `None`. Code under
//! measurement therefore never pays for metrics it does not emit.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones of
//! an `Arc` around the underlying atomics: registration takes a lock
//! once, after which recording is lock-free and wait-free.
//!
//! # Determinism
//!
//! Snapshots serialize with sorted keys, so two runs that record the
//! same values produce byte-identical JSON. Metrics whose values depend
//! on thread scheduling (work-stealing batch counts, probe lengths under
//! parallel insertion order, …) are registered through the `_nondet`
//! constructors and listed in [`Snapshot::nondeterministic`];
//! [`Snapshot::deterministic`] strips them (and the wall-clock phase
//! timings) so comparators can require exact equality on what remains.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod jsonval;
pub mod profile;
pub mod promcheck;
pub mod status;
pub mod timeseries;

use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---- cells -----------------------------------------------------------------

#[derive(Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Default)]
struct GaugeCell {
    value: AtomicU64,
}

struct HistogramCell {
    /// Inclusive upper bounds (`le`), strictly increasing. `counts` has
    /// one extra slot at the end for values above the last bound (+Inf).
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

enum Metric {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    metric: Metric,
    help: String,
    nondet: bool,
}

#[derive(Default, Clone, Copy)]
struct PhaseTotals {
    calls: u64,
    nanos: u64,
}

#[derive(Default)]
struct PhaseState {
    stack: Vec<String>,
    recorded: BTreeMap<String, PhaseTotals>,
}

#[derive(Default)]
struct Inner {
    metrics: Mutex<BTreeMap<String, Entry>>,
    phases: Mutex<PhaseState>,
}

// ---- registry --------------------------------------------------------------

/// Handle to a metrics store, or the null registry when metrics are off.
///
/// Clones share the same underlying store. The null registry (from
/// [`Registry::default`] or [`Registry::disabled`]) hands out no-op
/// handles and produces empty snapshots.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

/// Is `name` a valid Prometheus metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl Registry {
    /// An enabled registry with an empty store.
    pub fn new() -> Self {
        Registry { inner: Some(Arc::new(Inner::default())) }
    }

    /// The null registry: every handle is a no-op, snapshots are empty.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry actually records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register<C, H>(
        &self,
        name: &str,
        help: &str,
        nondet: bool,
        make: impl FnOnce() -> Metric,
        pick: impl FnOnce(&Metric) -> Option<Arc<C>>,
        wrap: impl FnOnce(Option<Arc<C>>) -> H,
    ) -> H {
        let Some(inner) = &self.inner else { return wrap(None) };
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        let mut metrics = inner.metrics.lock().unwrap();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            metric: make(),
            help: help.to_string(),
            nondet,
        });
        match pick(&entry.metric) {
            Some(cell) => wrap(Some(cell)),
            None => panic!("metric `{name}` already registered as a {}", entry.metric.kind()),
        }
    }

    /// Register (or look up) a monotonic counter. Re-registering the same
    /// name returns a handle to the same cell; the first registration
    /// fixes the help text and determinism tag.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_tagged(name, help, false)
    }

    /// A counter whose value depends on thread scheduling (e.g. batches
    /// flushed): excluded from [`Snapshot::deterministic`].
    pub fn counter_nondet(&self, name: &str, help: &str) -> Counter {
        self.counter_tagged(name, help, true)
    }

    fn counter_tagged(&self, name: &str, help: &str, nondet: bool) -> Counter {
        self.register(
            name,
            help,
            nondet,
            || Metric::Counter(Arc::new(CounterCell::default())),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            |cell| Counter { cell },
        )
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_tagged(name, help, false)
    }

    /// A gauge whose value depends on thread scheduling: excluded from
    /// [`Snapshot::deterministic`].
    pub fn gauge_nondet(&self, name: &str, help: &str) -> Gauge {
        self.gauge_tagged(name, help, true)
    }

    fn gauge_tagged(&self, name: &str, help: &str, nondet: bool) -> Gauge {
        self.register(
            name,
            help,
            nondet,
            || Metric::Gauge(Arc::new(GaugeCell::default())),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            |cell| Gauge { cell },
        )
    }

    /// Register (or look up) a histogram with the given inclusive upper
    /// bucket bounds (`le` in Prometheus terms), which must be strictly
    /// increasing. A final +Inf bucket is implicit. Bounds are fixed at
    /// first registration.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_tagged(name, help, bounds, false)
    }

    /// A histogram whose distribution depends on thread scheduling (e.g.
    /// probe lengths under parallel insertion order): excluded from
    /// [`Snapshot::deterministic`].
    pub fn histogram_nondet(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
        self.histogram_tagged(name, help, bounds, true)
    }

    fn histogram_tagged(&self, name: &str, help: &str, bounds: &[u64], nondet: bool) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        self.register(
            name,
            help,
            nondet,
            || {
                Metric::Histogram(Arc::new(HistogramCell {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                }))
            },
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            |cell| Histogram { cell },
        )
    }

    /// Start a named phase timer. Phases nest: a guard taken while
    /// another is live records under the joined path (`"verify/explore"`).
    /// The guard records cumulative wall time and a call count when
    /// dropped. Guards are expected to drop in LIFO order and the stack
    /// lives in the registry, so phases are for the coordinating thread,
    /// not for per-worker timing (use histograms for that).
    pub fn phase(&self, name: &str) -> PhaseGuard {
        match &self.inner {
            None => PhaseGuard { inner: None, path: String::new(), started: Instant::now() },
            Some(inner) => {
                let path = {
                    let mut phases = inner.phases.lock().unwrap();
                    phases.stack.push(name.to_string());
                    phases.stack.join("/")
                };
                PhaseGuard { inner: Some(inner.clone()), path, started: Instant::now() }
            }
        }
    }

    /// A point-in-time copy of every registered metric and phase total.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let Some(inner) = &self.inner else { return snap };
        let metrics = inner.metrics.lock().unwrap();
        for (name, entry) in metrics.iter() {
            snap.helps.insert(name.clone(), entry.help.clone());
            if entry.nondet {
                snap.nondeterministic.push(name.clone());
            }
            match &entry.metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.value.load(Relaxed));
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.value.load(Relaxed));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(
                        name.clone(),
                        HistogramSnapshot {
                            bounds: h.bounds.clone(),
                            counts: h.counts.iter().map(|c| c.load(Relaxed)).collect(),
                            sum: h.sum.load(Relaxed),
                            count: h.count.load(Relaxed),
                        },
                    );
                }
            }
        }
        drop(metrics);
        let phases = inner.phases.lock().unwrap();
        for (path, totals) in phases.recorded.iter() {
            snap.phases
                .insert(path.clone(), PhaseSnapshot { calls: totals.calls, nanos: totals.nanos });
        }
        snap
    }
}

// ---- handles ---------------------------------------------------------------

/// Handle to a monotonic counter; a no-op when obtained from a null
/// registry.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a null handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

/// Handle to a gauge; a no-op when obtained from a null registry.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<GaugeCell>>,
}

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.value.store(v, Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` exceeds the current value
    /// (a high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Some(cell) = &self.cell {
            cell.value.fetch_max(v, Relaxed);
        }
    }

    /// Current value (0 for a null handle).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.value.load(Relaxed))
    }
}

/// Handle to a fixed-bucket histogram; a no-op when obtained from a
/// null registry.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Record one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.observe_n(v, 1);
    }

    /// Record `times` observations of `v` at once.
    #[inline]
    pub fn observe_n(&self, v: u64, times: u64) {
        if times == 0 {
            return;
        }
        if let Some(cell) = &self.cell {
            // First bucket whose inclusive bound covers v; the slot past
            // the last bound is the implicit +Inf bucket.
            let idx = cell.bounds.partition_point(|&b| b < v);
            cell.counts[idx].fetch_add(times, Relaxed);
            cell.sum.fetch_add(v.saturating_mul(times), Relaxed);
            cell.count.fetch_add(times, Relaxed);
        }
    }

    /// Total number of observations (0 for a null handle).
    pub fn count(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.count.load(Relaxed))
    }

    /// Sum of all observed values (0 for a null handle).
    pub fn sum(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.sum.load(Relaxed))
    }
}

/// RAII guard for one timed phase; records on drop.
pub struct PhaseGuard {
    inner: Option<Arc<Inner>>,
    path: String,
    started: Instant,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.inner {
            let elapsed = self.started.elapsed();
            let mut phases = inner.phases.lock().unwrap();
            phases.stack.pop();
            let totals = phases.recorded.entry(std::mem::take(&mut self.path)).or_default();
            totals.calls += 1;
            totals.nanos += u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

// ---- snapshot --------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (`le`), strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts; one longer than `bounds`, the last
    /// slot counting values above every bound (+Inf).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

/// Cumulative totals for one phase path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PhaseSnapshot {
    /// How many times the phase ran.
    pub calls: u64,
    /// Total wall-clock nanoseconds across all calls.
    pub nanos: u64,
}

impl PhaseSnapshot {
    /// Total wall-clock seconds across all calls.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// A point-in-time copy of a [`Registry`]: sorted maps, so JSON output
/// is deterministic for deterministic values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Phase totals by `/`-joined path.
    pub phases: BTreeMap<String, PhaseSnapshot>,
    /// Names (sorted) of metrics whose values depend on thread
    /// scheduling; comparators must not require equality on these.
    pub nondeterministic: Vec<String>,
    /// Help text by metric name.
    pub helps: BTreeMap<String, String>,
}

impl Snapshot {
    /// Render as a JSON object (sorted keys; no trailing newline).
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// A copy with every nondeterministic metric and all wall-clock
    /// phase timings removed: what remains must match exactly between
    /// runs that explore the same state space.
    pub fn deterministic(&self) -> Snapshot {
        let nondet: std::collections::BTreeSet<&str> =
            self.nondeterministic.iter().map(String::as_str).collect();
        let keep = |name: &String| !nondet.contains(name.as_str());
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            phases: BTreeMap::new(),
            nondeterministic: Vec::new(),
            helps: self
                .helps
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Render in the Prometheus text exposition format (version 0.0.4):
    /// `# HELP`/`# TYPE` per family, cumulative `_bucket{le="…"}` series
    /// plus `_sum`/`_count` for histograms, and phase totals as
    /// `ccr_phase_seconds`/`ccr_phase_calls` with a `phase` label.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let header = |out: &mut String, name: &str, kind: &str, help: Option<&String>| {
            if let Some(help) = help {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        };
        for (name, value) in &self.counters {
            header(&mut out, name, "counter", self.helps.get(name));
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            header(&mut out, name, "gauge", self.helps.get(name));
            out.push_str(&format!("{name} {value}\n"));
        }
        for (name, hist) in &self.histograms {
            header(&mut out, name, "histogram", self.helps.get(name));
            let mut cumulative = 0u64;
            for (i, bound) in hist.bounds.iter().enumerate() {
                cumulative += hist.counts.get(i).copied().unwrap_or(0);
                out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", hist.count));
            out.push_str(&format!("{name}_sum {}\n", hist.sum));
            out.push_str(&format!("{name}_count {}\n", hist.count));
        }
        if !self.phases.is_empty() {
            out.push_str(
                "# HELP ccr_phase_seconds Cumulative wall-clock seconds per pipeline phase\n",
            );
            out.push_str("# TYPE ccr_phase_seconds counter\n");
            for (path, totals) in &self.phases {
                out.push_str(&format!(
                    "ccr_phase_seconds{{phase=\"{}\"}} {}\n",
                    escape_label(path),
                    totals.secs()
                ));
            }
            out.push_str("# HELP ccr_phase_calls Number of completed runs per pipeline phase\n");
            out.push_str("# TYPE ccr_phase_calls counter\n");
            for (path, totals) in &self.phases {
                out.push_str(&format!(
                    "ccr_phase_calls{{phase=\"{}\"}} {}\n",
                    escape_label(path),
                    totals.calls
                ));
            }
        }
        out
    }
}

/// Escape a HELP text (`\` and newline per the exposition format).
fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value (`\`, `"`, and newline per the exposition format).
fn escape_label(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_registry_handles_are_noops() {
        let reg = Registry::disabled();
        assert!(!reg.enabled());
        let c = reg.counter("x_total", "x");
        let g = reg.gauge("g", "g");
        let h = reg.histogram("h", "h", &[1, 2]);
        c.add(5);
        g.record_max(9);
        h.observe(1);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        let snap = reg.snapshot();
        assert!(snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty());
        // Phases are no-ops too.
        drop(reg.phase("p"));
        assert!(reg.snapshot().phases.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_record() {
        let reg = Registry::new();
        let c = reg.counter("jobs_total", "jobs");
        c.inc();
        c.add(4);
        // Re-registration returns the same cell.
        assert_eq!(reg.counter("jobs_total", "ignored").get(), 5);

        let g = reg.gauge("depth", "depth");
        g.record_max(3);
        g.record_max(2);
        assert_eq!(g.get(), 3);
        g.set(1);
        assert_eq!(g.get(), 1);

        let h = reg.histogram("len", "lengths", &[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["len"];
        assert_eq!(hs.counts, vec![2, 1, 1, 1]); // le=1: {0,1}; le=4: {2}; le=16: {5}; +Inf: {100}
        assert_eq!(hs.sum, 108);
        assert_eq!(hs.count, 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "m");
        reg.gauge("m", "m");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_name_panics() {
        Registry::new().counter("bad-name", "x");
    }

    #[test]
    fn phases_nest_and_accumulate() {
        let reg = Registry::new();
        {
            let _outer = reg.phase("verify");
            let _inner = reg.phase("explore");
        }
        {
            let _outer = reg.phase("verify");
            let _inner = reg.phase("explore");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.phases["verify"].calls, 2);
        assert_eq!(snap.phases["verify/explore"].calls, 2);
        assert!(snap.phases["verify"].nanos >= snap.phases["verify/explore"].nanos);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let reg = Registry::new();
        reg.counter("b_total", "b").inc();
        reg.counter("a_total", "a").add(2);
        let one = reg.snapshot().to_json();
        let two = reg.snapshot().to_json();
        assert_eq!(one, two);
        assert!(one.find("a_total").unwrap() < one.find("b_total").unwrap());
        // Parses back as JSON with the values we put in.
        let parsed = jsonval::Json::parse(&one).unwrap();
        let counters = parsed.get("counters").unwrap();
        assert_eq!(counters.get("a_total").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(counters.get("b_total").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn deterministic_view_strips_nondet_and_phases() {
        let reg = Registry::new();
        reg.counter("states_total", "det").add(10);
        reg.counter_nondet("flushes_total", "nondet").add(3);
        reg.histogram_nondet("probe", "nondet", &[1]).observe(0);
        drop(reg.phase("explore"));
        let snap = reg.snapshot();
        assert_eq!(snap.nondeterministic, vec!["flushes_total", "probe"]);
        let det = snap.deterministic();
        assert!(det.counters.contains_key("states_total"));
        assert!(!det.counters.contains_key("flushes_total"));
        assert!(det.histograms.is_empty());
        assert!(det.phases.is_empty());
        assert!(det.nondeterministic.is_empty());
        assert!(!det.helps.contains_key("probe"));
    }

    #[test]
    fn prometheus_exposition_validates() {
        let reg = Registry::new();
        reg.counter("mc_states_total", "Distinct states stored").add(42);
        reg.gauge("mc_store_bytes", "Store footprint").set(1024);
        let h = reg.histogram("mc_state_bytes", "Encoded state length", &[8, 16, 32]);
        for v in [4, 9, 40, 12] {
            h.observe(v);
        }
        {
            let _p = reg.phase("verify");
            let _q = reg.phase("explore");
        }
        let text = reg.snapshot().to_prometheus();
        promcheck::validate(&text).unwrap();
        assert!(text.contains("# TYPE mc_states_total counter"));
        assert!(text.contains("mc_state_bytes_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ccr_phase_seconds{phase=\"verify/explore\"}"));
    }

    #[test]
    fn handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }
}
