//! Validator for the Prometheus text exposition format (version 0.0.4),
//! used by tests to prove [`crate::Snapshot::to_prometheus`] output is
//! well-formed: metric-name charset, `# HELP`/`# TYPE` placement, sample
//! syntax, and the histogram `_bucket`/`_sum`/`_count` invariants
//! (cumulative nondecreasing buckets, `le="+Inf"` equal to `_count`).

use std::collections::BTreeMap;

/// One parsed sample line.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

#[derive(Debug, Default)]
struct Family {
    kind: Option<String>,
    saw_sample: bool,
    /// For histograms: (le, cumulative count) in order of appearance.
    buckets: Vec<(f64, f64)>,
    sum: Option<f64>,
    count: Option<f64>,
}

/// Is `name` a valid metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*`)?
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Is `name` a valid label name (`[a-zA-Z_][a-zA-Z0-9_]*`)?
pub fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Strip a histogram sample suffix, mapping `x_bucket`/`x_sum`/`x_count`
/// to the family name `x`.
fn family_of(sample_name: &str, families: &BTreeMap<String, Family>) -> String {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            if families.get(base).and_then(|f| f.kind.as_deref()) == Some("histogram") {
                return base.to_string();
            }
        }
    }
    sample_name.to_string()
}

/// Validate a complete exposition. Returns the first problem found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw;
        let err = |msg: String| Err(format!("line {}: {msg}: {line:?}", lineno + 1));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let Some(name) = parts.next() else {
                        return err("HELP without metric name".into());
                    };
                    if !valid_name(name) {
                        return err(format!("invalid metric name `{name}` in HELP"));
                    }
                }
                Some("TYPE") => {
                    let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                        return err("TYPE needs a name and a type".into());
                    };
                    if !valid_name(name) {
                        return err(format!("invalid metric name `{name}` in TYPE"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return err(format!("unknown metric type `{kind}`"));
                    }
                    let family = families.entry(name.to_string()).or_default();
                    if family.kind.is_some() {
                        return err(format!("duplicate TYPE for `{name}`"));
                    }
                    if family.saw_sample {
                        return err(format!("TYPE for `{name}` after its samples"));
                    }
                    family.kind = Some(kind.to_string());
                }
                _ => {} // plain comment
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comment without space, still a comment
        }
        let sample = match parse_sample(line) {
            Ok(sample) => sample,
            Err(msg) => return err(msg),
        };
        if !valid_name(&sample.name) {
            return err(format!("invalid metric name `{}`", sample.name));
        }
        for (label, _) in &sample.labels {
            if !valid_label_name(label) {
                return err(format!("invalid label name `{label}`"));
            }
        }
        let family_name = family_of(&sample.name, &families);
        let family = families.entry(family_name.clone()).or_default();
        family.saw_sample = true;
        if family.kind.as_deref() == Some("histogram") {
            if sample.name == format!("{family_name}_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("line {}: bucket without le label", lineno + 1))?;
                let bound = parse_value(&le)
                    .map_err(|e| format!("line {}: bad le value `{le}`: {e}", lineno + 1))?;
                family.buckets.push((bound, sample.value));
            } else if sample.name == format!("{family_name}_sum") {
                family.sum = Some(sample.value);
            } else if sample.name == format!("{family_name}_count") {
                family.count = Some(sample.value);
            } else if sample.name != family_name {
                return err(format!(
                    "sample `{}` does not belong to histogram `{family_name}`",
                    sample.name
                ));
            }
        } else if let Some(kind) = family.kind.as_deref() {
            // counters and gauges: the sample name must equal the family name
            if (kind == "counter" || kind == "gauge") && sample.name != family_name {
                return err(format!(
                    "sample `{}` under {kind} family `{family_name}`",
                    sample.name
                ));
            }
        }
    }
    // Histogram invariants.
    for (name, family) in &families {
        if family.kind.as_deref() != Some("histogram") || !family.saw_sample {
            continue;
        }
        if family.buckets.is_empty() {
            return Err(format!("histogram `{name}` has no buckets"));
        }
        for window in family.buckets.windows(2) {
            if window[1].0 <= window[0].0 {
                return Err(format!("histogram `{name}` buckets not in increasing le order"));
            }
            if window[1].1 < window[0].1 {
                return Err(format!("histogram `{name}` bucket counts not cumulative"));
            }
        }
        let (last_le, last_count) = *family.buckets.last().unwrap();
        if !last_le.is_infinite() || last_le < 0.0 {
            return Err(format!("histogram `{name}` missing le=\"+Inf\" bucket"));
        }
        let Some(count) = family.count else {
            return Err(format!("histogram `{name}` missing _count"));
        };
        if family.sum.is_none() {
            return Err(format!("histogram `{name}` missing _sum"));
        }
        if last_count != count {
            return Err(format!(
                "histogram `{name}`: le=\"+Inf\" bucket {last_count} != _count {count}"
            ));
        }
    }
    Ok(())
}

/// Parse a sample value: a float, or the special `+Inf`/`-Inf`/`NaN`.
fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" | "Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => text.parse::<f64>().map_err(|e| e.to_string()),
    }
}

/// Parse `name[{labels}] value [timestamp]`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let line = line.trim_end();
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = find_closing_brace(line, brace)?;
            (&line[..brace], &line[close + 1..])
        }
        None => match line.find(' ') {
            Some(space) => (&line[..space], &line[space..]),
            None => return Err("sample without value".into()),
        },
    };
    let labels = match line.find('{') {
        Some(brace) => {
            let close = find_closing_brace(line, brace)?;
            parse_labels(&line[brace + 1..close])?
        }
        None => Vec::new(),
    };
    let mut fields = rest.split_whitespace();
    let value_text = fields.next().ok_or_else(|| "sample without value".to_string())?;
    let value = parse_value(value_text)?;
    if let Some(timestamp) = fields.next() {
        timestamp.parse::<i64>().map_err(|_| format!("bad timestamp `{timestamp}`"))?;
    }
    if fields.next().is_some() {
        return Err("trailing tokens after timestamp".into());
    }
    Ok(Sample { name: name_part.trim().to_string(), labels, value })
}

/// Index of the `}` closing the label block, honoring quoted strings.
fn find_closing_brace(line: &str, open: usize) -> Result<usize, String> {
    let bytes = line.as_bytes();
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open + 1) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
        } else if b == b'"' {
            in_string = true;
        } else if b == b'}' {
            return Ok(i);
        }
    }
    Err("unterminated label block".into())
}

/// Parse `k1="v1",k2="v2"` (trailing comma tolerated, as Prometheus does).
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| "label without `=`".to_string())?;
        let name = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("label `{name}` value not quoted"));
        }
        let mut value = String::new();
        let mut chars = rest[1..].char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => value.push(other),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_string())?;
        labels.push((name, value));
        rest = rest[1 + end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err("expected `,` between labels".into());
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_exposition() {
        let text = "\
# HELP jobs_total Jobs processed
# TYPE jobs_total counter
jobs_total 7
# TYPE queue_depth gauge
queue_depth{worker=\"w1\",kind=\"a b\"} 3
# TYPE lat histogram
lat_bucket{le=\"1\"} 2
lat_bucket{le=\"4\"} 5
lat_bucket{le=\"+Inf\"} 6
lat_sum 19
lat_count 6
";
        validate(text).unwrap();
    }

    #[test]
    fn rejects_bad_metric_name() {
        assert!(validate("bad-name 1\n").is_err());
    }

    #[test]
    fn rejects_type_after_samples() {
        let text = "x_total 1\n# TYPE x_total counter\n";
        assert!(validate(text).unwrap_err().contains("after its samples"));
    }

    #[test]
    fn rejects_noncumulative_buckets() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 5
lat_bucket{le=\"2\"} 3
lat_bucket{le=\"+Inf\"} 5
lat_sum 1
lat_count 5
";
        assert!(validate(text).unwrap_err().contains("cumulative"));
    }

    #[test]
    fn rejects_inf_count_mismatch() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 1
lat_bucket{le=\"+Inf\"} 4
lat_sum 1
lat_count 5
";
        assert!(validate(text).unwrap_err().contains("_count"));
    }

    #[test]
    fn rejects_missing_inf_bucket() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"1\"} 1
lat_sum 1
lat_count 1
";
        assert!(validate(text).unwrap_err().contains("+Inf"));
    }

    #[test]
    fn rejects_missing_sum() {
        let text = "\
# TYPE lat histogram
lat_bucket{le=\"+Inf\"} 1
lat_count 1
";
        assert!(validate(text).unwrap_err().contains("_sum"));
    }

    #[test]
    fn rejects_unquoted_label_value() {
        assert!(validate("x{l=3} 1\n").is_err());
    }

    #[test]
    fn rejects_bad_value() {
        assert!(validate("x_total abc\n").is_err());
    }
}
