//! Flight recorder: wall-clock time-series telemetry for long runs.
//!
//! Every other observability surface in this workspace is an *endpoint*
//! artifact — a metrics snapshot, a folded profile, a final report. A
//! ten-hour search that collapses to a crawl at hour three (spill
//! onset, termination-detection pathology, allocator thrash) looks
//! identical to one that ran flat. This module closes that gap: a
//! [`Recorder`] rides the engines' existing heartbeat cadence (the
//! `SearchObserver` wall-clock gate — one clock probe serves
//! heartbeats, status snapshots and the flight record alike) and
//! appends one delta-encoded sample per interval to an append-only
//! `timeline.jsonl` in the run directory.
//!
//! The recorder follows the same null-object discipline as the
//! registry and the profiler: [`Recorder::disabled`] carries no
//! storage, every operation on it is one predictable branch, and
//! `tests/timeline.rs` pins the stronger property that recording off
//! is *invisible* — byte-identical traces and identical deterministic
//! metric snapshots whether the recorder exists or not. The engine hot
//! path never touches the recorder: sampling happens only after the
//! observer's wall-clock interval gate passes, so the per-expansion
//! cost with a recorder attached is unchanged.
//!
//! # The record stream
//!
//! One JSON object per line, discriminated by a `"k"` tag:
//!
//! * `run` — header: spec, sampling interval, watchdog threshold.
//! * `phase` — a named phase begins (`explore/async`, …); cumulative
//!   counters restart from zero for the new phase.
//! * `s` — one sample. Monotone cumulative counters (elapsed time,
//!   states, transitions, spill/compaction bytes) are **delta-encoded**
//!   against the previous record; instantaneous gauges (frontier,
//!   store bytes, RSS, checkpoint seq, epoch) are absolute. Per-kind
//!   span occupancy shares over the interval come from the profiler.
//! * `stall` — the watchdog: no forward progress (neither states nor
//!   transitions advanced) across `stall_after` consecutive samples.
//!   Carries the evidence a stuck run needs: per-worker dominant span
//!   over the stalled window, queue depths, frontier, epoch counter.
//!   Emitted once per stall episode; progress re-arms it.
//! * `end` — terminal record: outcome, final absolutes of the last
//!   phase, total sample/stall counts. [`Timeline::validate`] checks
//!   the delta sums reconstruct exactly to these totals, which is what
//!   makes the file self-validating.
//!
//! [`Timeline`] is the reader half: it parses a `timeline.jsonl`,
//! reconstructs absolute series per phase, validates the encoding, and
//! [`Timeline::analyze`] computes per-phase rate statistics and
//! detects rate shifts (e.g. the throughput collapse at spill onset).
//! `ccr timeline <run-dir>` is the CLI front end.

use crate::jsonval::Json;
use crate::profile::{ProfileAgg, Profiler, SpanKind};
use crate::Registry;
use serde::Serializer;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Number of span kinds tracked per worker.
const N_KINDS: usize = SpanKind::ALL.len();

/// Default number of no-progress samples before the watchdog fires.
pub const DEFAULT_STALL_AFTER: u32 = 5;

/// Resident set size of the current process in bytes, from
/// `/proc/self/statm` (field 2, resident pages). Returns `None` off
/// Linux or when procfs is unavailable. Page size is taken as 4096 —
/// true for every Linux target this workspace builds on.
pub fn process_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * 4096)
}

/// Everything one sample needs from the engine, gathered by the
/// observer at its heartbeat gate. Cumulative fields are absolute here;
/// the recorder delta-encodes them itself.
#[derive(Debug, Clone, Default)]
pub struct SampleInput<'a> {
    /// States discovered so far in the current phase.
    pub states: u64,
    /// Transitions generated so far in the current phase.
    pub transitions: u64,
    /// Current frontier size.
    pub frontier: u64,
    /// Approximate store footprint in bytes.
    pub store_bytes: u64,
    /// Current BFS depth / level, when the engine tracks it.
    pub depth: Option<u64>,
    /// Cumulative bytes appended to the spill log (`--spill-dir` runs).
    pub spill_bytes: u64,
    /// Cumulative dead log bytes reclaimed by compaction.
    pub compacted_bytes: u64,
    /// Checkpoints (manifests) committed so far.
    pub checkpoint_seq: u64,
    /// The parallel engine's termination-detection epoch counter.
    pub epoch: Option<u64>,
    /// Per-worker inbox depths (parallel engine only).
    pub queues: &'a [u64],
}

impl<'a> SampleInput<'a> {
    /// A sample carrying only the fields every engine has.
    pub fn basic(states: u64, transitions: u64, frontier: u64, store_bytes: u64) -> Self {
        SampleInput { states, transitions, frontier, store_bytes, ..SampleInput::default() }
    }
}

/// Cumulative counters the recorder delta-encodes, tracked per phase.
#[derive(Debug, Clone, Copy, Default)]
struct Cumulative {
    t_ms: u64,
    states: u64,
    transitions: u64,
    spill_bytes: u64,
    compacted_bytes: u64,
}

struct Inner {
    out: Box<dyn Write + Send>,
    err: Option<io::Error>,
    started: std::time::Instant,
    stall_after: u32,
    prev: Cumulative,
    /// Per-worker span nanos at the previous sample, for occupancy
    /// shares over the interval (worker id → nanos per kind).
    prev_spans: Vec<(usize, [u64; N_KINDS])>,
    samples: u64,
    stalls: u64,
    no_progress: u32,
    stall_open: bool,
}

impl Inner {
    fn write_line(&mut self, line: String) {
        if self.err.is_some() {
            return;
        }
        let mut doc = line;
        doc.push('\n');
        if let Err(e) = self.out.write_all(doc.as_bytes()) {
            self.err = Some(e);
        }
    }

    /// Milliseconds since the recorder was created.
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }
}

/// The flight recorder: appends delta-encoded telemetry records to a
/// writer (normally `timeline.jsonl` in a `--run-dir` bundle) and runs
/// the stall watchdog over them. Cheap to clone; all clones share one
/// stream, so the several phases of a `ccr verify` run append to the
/// same timeline.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl Recorder {
    /// A null recorder: every operation is a no-op costing one branch.
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// A recorder appending to `out`, with the `run` header written
    /// immediately (an empty run still leaves a valid timeline).
    /// `interval_ms` is advisory — the observer owns the cadence — and
    /// is recorded in the header for the analyzer.
    pub fn to_writer(
        out: Box<dyn Write + Send>,
        spec: &str,
        interval_ms: u64,
        stall_after: u32,
    ) -> Recorder {
        let mut inner = Inner {
            out,
            err: None,
            started: std::time::Instant::now(),
            stall_after: stall_after.max(1),
            prev: Cumulative::default(),
            prev_spans: Vec::new(),
            samples: 0,
            stalls: 0,
            no_progress: 0,
            stall_open: false,
        };
        let mut ser = Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("k", "run");
            map.entry("version", &1u64);
            map.entry("spec", spec);
            map.entry("interval_ms", &interval_ms);
            map.entry("stall_after", &(stall_after.max(1) as u64));
            map.end();
        }
        inner.write_line(ser.into_string());
        Recorder { inner: Some(Arc::new(Mutex::new(inner))) }
    }

    /// A recorder appending to a fresh file at `path`.
    pub fn create(
        path: &Path,
        spec: &str,
        interval_ms: u64,
        stall_after: u32,
    ) -> io::Result<Recorder> {
        let file = std::fs::File::create(path)?;
        Ok(Recorder::to_writer(Box::new(io::BufWriter::new(file)), spec, interval_ms, stall_after))
    }

    /// Whether this recorder is live (false for [`Recorder::disabled`]).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Marks the start of a named phase. Cumulative counters restart
    /// from zero: each phase is its own delta-encoded series.
    pub fn set_phase(&self, name: &str) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("recorder");
        let now = g.now_ms();
        let dt = now.saturating_sub(g.prev.t_ms);
        let mut ser = Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("k", "phase");
            map.entry("dt_ms", &dt);
            map.entry("name", name);
            map.end();
        }
        g.write_line(ser.into_string());
        g.prev = Cumulative { t_ms: now, ..Cumulative::default() };
        g.no_progress = 0;
        g.stall_open = false;
    }

    /// Appends one sample, delta-encoding the cumulative counters and
    /// folding in span occupancy shares from `profiler` and the process
    /// RSS. Runs the stall watchdog: `stall_after` consecutive samples
    /// without forward progress emit one `stall` diagnostic record.
    pub fn sample(&self, input: &SampleInput<'_>, profiler: &Profiler) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("recorder");
        let now = g.now_ms();
        let dt = now.saturating_sub(g.prev.t_ms);
        let ds = input.states.saturating_sub(g.prev.states);
        let dx = input.transitions.saturating_sub(g.prev.transitions);
        let dspill = input.spill_bytes.saturating_sub(g.prev.spill_bytes);
        let dcompact = input.compacted_bytes.saturating_sub(g.prev.compacted_bytes);
        let agg = if profiler.enabled() { Some(profiler.aggregate()) } else { None };
        let spans = agg.as_ref().map(|a| span_shares(a, &g.prev_spans));
        let rss = process_rss_bytes();
        let mut ser = Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("k", "s");
            map.entry("dt_ms", &dt);
            map.entry("ds", &ds);
            map.entry("dx", &dx);
            map.entry("frontier", &input.frontier);
            map.entry("store_bytes", &input.store_bytes);
            map.entry("dspill", &dspill);
            map.entry("dcompact", &dcompact);
            map.entry("ckpt", &input.checkpoint_seq);
            map.entry("rss_bytes", &rss);
            map.entry("depth", &input.depth);
            map.entry("epoch", &input.epoch);
            map.entry_with("spans", |ser| {
                let mut m = ser.begin_map();
                if let Some(shares) = &spans {
                    for (name, share) in shares {
                        m.entry(name, share);
                    }
                }
                m.end();
            });
            map.end();
        }
        g.write_line(ser.into_string());
        g.samples += 1;
        // The watchdog: forward progress is new states *or* new
        // transitions (a frontier churning through duplicates still
        // counts as alive).
        if ds == 0 && dx == 0 {
            g.no_progress += 1;
            if g.no_progress >= g.stall_after && !g.stall_open {
                g.stall_open = true;
                g.stalls += 1;
                let record = stall_record(&g, input, agg.as_ref());
                g.write_line(record);
            }
        } else {
            g.no_progress = 0;
            g.stall_open = false;
        }
        if let Some(a) = &agg {
            g.prev_spans = worker_nanos(a);
        }
        g.prev = Cumulative {
            t_ms: now,
            states: input.states,
            transitions: input.transitions,
            spill_bytes: input.spill_bytes,
            compacted_bytes: input.compacted_bytes,
        };
    }

    /// Writes the terminal `end` record and flushes. The absolutes are
    /// the final counts of the last phase; the analyzer validates its
    /// delta reconstruction against them.
    pub fn finish(&self, outcome: &str, states: u64, transitions: u64) {
        let Some(inner) = &self.inner else { return };
        let mut g = inner.lock().expect("recorder");
        let now = g.now_ms();
        let dt = now.saturating_sub(g.prev.t_ms);
        let mut ser = Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry("k", "end");
            map.entry("dt_ms", &dt);
            map.entry("outcome", outcome);
            map.entry("states", &states);
            map.entry("transitions", &transitions);
            map.entry("samples", &g.samples);
            map.entry("stalls", &g.stalls);
            map.end();
        }
        g.write_line(ser.into_string());
        if g.err.is_none() {
            if let Err(e) = g.out.flush() {
                g.err = Some(e);
            }
        }
    }

    /// Folds the recorder's own counters into `reg`. Sample and stall
    /// counts are wall-clock artifacts, so both register
    /// nondeterministic — the deterministic snapshot view is unchanged
    /// by recording (the invisibility guarantee).
    pub fn publish(&self, reg: &Registry) {
        let Some(inner) = &self.inner else { return };
        if !reg.enabled() {
            return;
        }
        let g = inner.lock().expect("recorder");
        reg.counter_nondet("mc_timeline_samples_total", "Flight-recorder samples written")
            .add(g.samples);
        reg.counter_nondet("mc_timeline_stalls_total", "Stall-watchdog diagnostics emitted")
            .add(g.stalls);
    }

    /// The first sticky write error, if any. Recording is advisory and
    /// never aborts a verification; the CLI surfaces this at the end.
    pub fn take_error(&self) -> Option<io::Error> {
        let inner = self.inner.as_ref()?;
        inner.lock().expect("recorder").err.take()
    }
}

/// Per-kind share of profiled time over the interval since `prev`,
/// summed across workers. Only kinds with activity in the window.
fn span_shares(agg: &ProfileAgg, prev: &[(usize, [u64; N_KINDS])]) -> Vec<(&'static str, f64)> {
    let mut delta = [0u64; N_KINDS];
    for w in &agg.workers {
        let base = prev.iter().find(|(id, _)| *id == w.worker).map(|(_, row)| *row);
        for (k, kind) in SpanKind::ALL.iter().enumerate() {
            let now = w.kind(*kind).nanos;
            let before = base.map(|row| row[k]).unwrap_or(0);
            delta[k] += now.saturating_sub(before);
        }
    }
    let total: u64 = delta.iter().sum();
    if total == 0 {
        return Vec::new();
    }
    SpanKind::ALL
        .iter()
        .enumerate()
        .filter(|(k, _)| delta[*k] > 0)
        .map(|(k, kind)| (kind.name(), delta[k] as f64 / total as f64))
        .collect()
}

/// Per-worker span nanos, for the next interval's share computation.
fn worker_nanos(agg: &ProfileAgg) -> Vec<(usize, [u64; N_KINDS])> {
    agg.workers
        .iter()
        .map(|w| {
            let mut row = [0u64; N_KINDS];
            for (k, kind) in SpanKind::ALL.iter().enumerate() {
                row[k] = w.kind(*kind).nanos;
            }
            (w.worker, row)
        })
        .collect()
}

/// Renders the watchdog's diagnostic record: everything needed to
/// debug a wedged run from the timeline alone.
fn stall_record(g: &Inner, input: &SampleInput<'_>, agg: Option<&ProfileAgg>) -> String {
    let mut ser = Serializer::new();
    {
        let mut map = ser.begin_map();
        map.entry("k", "stall");
        map.entry("dt_ms", &0u64);
        map.entry("intervals", &(g.no_progress as u64));
        map.entry("states", &input.states);
        map.entry("transitions", &input.transitions);
        map.entry("frontier", &input.frontier);
        map.entry("depth", &input.depth);
        map.entry("epoch", &input.epoch);
        map.entry_with("queues", |ser| {
            let mut seq = ser.begin_seq();
            for q in input.queues {
                seq.elem(q);
            }
            seq.end();
        });
        map.entry_with("workers", |ser| {
            let mut seq = ser.begin_seq();
            if let Some(agg) = agg {
                for w in &agg.workers {
                    let base = g.prev_spans.iter().find(|(id, _)| *id == w.worker).map(|(_, r)| *r);
                    let mut dom: (&str, u64) = ("idle", 0);
                    let mut total = 0u64;
                    for (k, kind) in SpanKind::ALL.iter().enumerate() {
                        let before = base.map(|row| row[k]).unwrap_or(0);
                        let d = w.kind(*kind).nanos.saturating_sub(before);
                        total += d;
                        if d > dom.1 {
                            dom = (kind.name(), d);
                        }
                    }
                    let share = if total > 0 { dom.1 as f64 / total as f64 } else { 1.0 };
                    seq.elem_with(|ser| {
                        let mut m = ser.begin_map();
                        m.entry("worker", &(w.worker as u64));
                        m.entry("span", dom.0);
                        m.entry("share", &share);
                        m.end();
                    });
                }
            }
            seq.end();
        });
        map.end();
    }
    ser.into_string()
}

// ---- reader / analyzer -----------------------------------------------------

/// One reconstructed (absolute) sample point.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelinePoint {
    /// Milliseconds since the recorder started.
    pub t_ms: u64,
    /// Index into [`Timeline::phases`] of the phase this point is in.
    pub phase: usize,
    /// States discovered so far in the phase.
    pub states: u64,
    /// Transitions generated so far in the phase.
    pub transitions: u64,
    /// Frontier size at the sample.
    pub frontier: u64,
    /// Store footprint in bytes at the sample.
    pub store_bytes: u64,
    /// Cumulative spill-log bytes appended in the phase.
    pub spill_bytes: u64,
    /// Cumulative compacted bytes in the phase.
    pub compacted_bytes: u64,
    /// Checkpoints committed at the sample.
    pub checkpoint_seq: u64,
    /// Process RSS at the sample, when procfs was readable.
    pub rss_bytes: Option<u64>,
    /// BFS depth, when the engine tracked it.
    pub depth: Option<u64>,
    /// Exploration rate over the interval ending at this point.
    pub states_per_sec: f64,
    /// Transition rate over the interval ending at this point.
    pub transitions_per_sec: f64,
    /// Span occupancy shares over the interval (kind name → share).
    pub spans: Vec<(String, f64)>,
}

/// One parsed `stall` diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct StallRecord {
    /// Milliseconds since recorder start.
    pub t_ms: u64,
    /// No-progress sampling intervals that tripped the watchdog.
    pub intervals: u64,
    /// States at the stall.
    pub states: u64,
    /// Frontier at the stall.
    pub frontier: u64,
    /// Termination-detection epoch, when the parallel engine ran.
    pub epoch: Option<u64>,
    /// Per-worker inbox depths.
    pub queues: Vec<u64>,
    /// Per-worker `(worker, dominant span, share)` over the window.
    pub workers: Vec<(u64, String, f64)>,
}

/// The parsed `end` record.
#[derive(Debug, Clone, PartialEq)]
pub struct EndRecord {
    /// Milliseconds since recorder start.
    pub t_ms: u64,
    /// Outcome name of the run.
    pub outcome: String,
    /// Final states of the last phase.
    pub states: u64,
    /// Final transitions of the last phase.
    pub transitions: u64,
    /// Total samples the recorder wrote.
    pub samples: u64,
    /// Total stall diagnostics the recorder wrote.
    pub stalls: u64,
}

/// A fully parsed and reconstructed timeline.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Spec or workload name from the header.
    pub spec: String,
    /// Advisory sampling interval from the header.
    pub interval_ms: u64,
    /// Watchdog threshold from the header.
    pub stall_after: u64,
    /// Phase names with their start times, in order.
    pub phases: Vec<(u64, String)>,
    /// Reconstructed absolute sample points, in order.
    pub points: Vec<TimelinePoint>,
    /// Watchdog diagnostics, in order.
    pub stalls: Vec<StallRecord>,
    /// Terminal record, when the run finished cleanly.
    pub end: Option<EndRecord>,
}

fn req_u64(j: &Json, key: &str, line: usize) -> Result<u64, String> {
    j.get(key).and_then(Json::as_u64).ok_or_else(|| format!("line {line}: missing `{key}`"))
}

impl Timeline {
    /// Parses a `timeline.jsonl` document, reconstructing absolutes
    /// from the delta encoding. Unknown record kinds are an error:
    /// the format carries its own version in the header.
    pub fn parse(text: &str) -> Result<Timeline, String> {
        let mut tl = Timeline::default();
        let mut cum = Cumulative::default();
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let j = Json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
            let kind = j
                .get("k")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {line}: missing `k` tag"))?;
            if !saw_header && kind != "run" {
                return Err(format!("line {line}: first record must be the `run` header"));
            }
            match kind {
                "run" => {
                    if saw_header {
                        return Err(format!("line {line}: duplicate `run` header"));
                    }
                    saw_header = true;
                    tl.spec = j.get("spec").and_then(Json::as_str).unwrap_or_default().to_string();
                    tl.interval_ms = req_u64(&j, "interval_ms", line)?;
                    tl.stall_after = req_u64(&j, "stall_after", line)?;
                }
                "phase" => {
                    cum.t_ms += req_u64(&j, "dt_ms", line)?;
                    let name = j
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {line}: phase without `name`"))?;
                    tl.phases.push((cum.t_ms, name.to_string()));
                    cum = Cumulative { t_ms: cum.t_ms, ..Cumulative::default() };
                }
                "s" => {
                    let dt = req_u64(&j, "dt_ms", line)?;
                    cum.t_ms += dt;
                    cum.states += req_u64(&j, "ds", line)?;
                    cum.transitions += req_u64(&j, "dx", line)?;
                    cum.spill_bytes += req_u64(&j, "dspill", line)?;
                    cum.compacted_bytes += req_u64(&j, "dcompact", line)?;
                    let secs = dt as f64 / 1e3;
                    let mut spans = Vec::new();
                    if let Some(obj) = j.get("spans").and_then(Json::as_object) {
                        for (name, v) in obj {
                            let share = v.as_f64().ok_or_else(|| {
                                format!("line {line}: span `{name}` not a number")
                            })?;
                            spans.push((name.clone(), share));
                        }
                    }
                    tl.points.push(TimelinePoint {
                        t_ms: cum.t_ms,
                        phase: tl.phases.len().saturating_sub(1),
                        states: cum.states,
                        transitions: cum.transitions,
                        frontier: req_u64(&j, "frontier", line)?,
                        store_bytes: req_u64(&j, "store_bytes", line)?,
                        spill_bytes: cum.spill_bytes,
                        compacted_bytes: cum.compacted_bytes,
                        checkpoint_seq: req_u64(&j, "ckpt", line)?,
                        rss_bytes: j.get("rss_bytes").and_then(Json::as_u64),
                        depth: j.get("depth").and_then(Json::as_u64),
                        states_per_sec: if secs > 0.0 {
                            req_u64(&j, "ds", line)? as f64 / secs
                        } else {
                            0.0
                        },
                        transitions_per_sec: if secs > 0.0 {
                            req_u64(&j, "dx", line)? as f64 / secs
                        } else {
                            0.0
                        },
                        spans,
                    });
                }
                "stall" => {
                    cum.t_ms += req_u64(&j, "dt_ms", line)?;
                    let queues = j
                        .get("queues")
                        .and_then(Json::as_array)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default();
                    let mut workers = Vec::new();
                    if let Some(ws) = j.get("workers").and_then(Json::as_array) {
                        for w in ws {
                            workers.push((
                                w.get("worker").and_then(Json::as_u64).unwrap_or(0),
                                w.get("span").and_then(Json::as_str).unwrap_or("idle").to_string(),
                                w.get("share").and_then(Json::as_f64).unwrap_or(0.0),
                            ));
                        }
                    }
                    tl.stalls.push(StallRecord {
                        t_ms: cum.t_ms,
                        intervals: req_u64(&j, "intervals", line)?,
                        states: req_u64(&j, "states", line)?,
                        frontier: req_u64(&j, "frontier", line)?,
                        epoch: j.get("epoch").and_then(Json::as_u64),
                        queues,
                        workers,
                    });
                }
                "end" => {
                    if tl.end.is_some() {
                        return Err(format!("line {line}: duplicate `end` record"));
                    }
                    cum.t_ms += req_u64(&j, "dt_ms", line)?;
                    tl.end = Some(EndRecord {
                        t_ms: cum.t_ms,
                        outcome: j
                            .get("outcome")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_string(),
                        states: req_u64(&j, "states", line)?,
                        transitions: req_u64(&j, "transitions", line)?,
                        samples: req_u64(&j, "samples", line)?,
                        stalls: req_u64(&j, "stalls", line)?,
                    });
                }
                other => return Err(format!("line {line}: unknown record kind `{other}`")),
            }
        }
        if !saw_header {
            return Err("empty timeline: no `run` header".to_string());
        }
        Ok(tl)
    }

    /// Reads and parses a timeline file.
    pub fn read(path: &Path) -> Result<Timeline, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Timeline::parse(&text)
    }

    /// Self-validation: sample timestamps are monotone, and when an
    /// `end` record exists its totals match the delta reconstruction —
    /// the sample count, the stall count, and the final phase's
    /// reconstructed states/transitions (when that phase was sampled).
    pub fn validate(&self) -> Result<(), String> {
        for pair in self.points.windows(2) {
            if pair[1].t_ms < pair[0].t_ms {
                return Err(format!("timestamps regress: {} -> {} ms", pair[0].t_ms, pair[1].t_ms));
            }
        }
        let Some(end) = &self.end else { return Ok(()) };
        if end.samples != self.points.len() as u64 {
            return Err(format!(
                "end record claims {} samples, file holds {}",
                end.samples,
                self.points.len()
            ));
        }
        if end.stalls != self.stalls.len() as u64 {
            return Err(format!(
                "end record claims {} stalls, file holds {}",
                end.stalls,
                self.stalls.len()
            ));
        }
        let last_phase = self.phases.len().saturating_sub(1);
        if let Some(last) = self.points.last() {
            if last.phase == last_phase
                && (last.states > end.states || last.transitions > end.transitions)
            {
                return Err(format!(
                    "delta reconstruction ({} states, {} transitions) exceeds the end \
                     record ({}, {})",
                    last.states, last.transitions, end.states, end.transitions
                ));
            }
        }
        Ok(())
    }

    /// Per-phase rate statistics plus rate-shift detection.
    pub fn analyze(&self) -> Analysis {
        let mut phases = Vec::new();
        for (i, (start_ms, name)) in self.phases.iter().enumerate() {
            let pts: Vec<&TimelinePoint> = self.points.iter().filter(|p| p.phase == i).collect();
            let end_ms = pts.last().map(|p| p.t_ms).unwrap_or(*start_ms);
            let rates: Vec<f64> = pts.iter().map(|p| p.states_per_sec).collect();
            let times: Vec<u64> = pts.iter().map(|p| p.t_ms).collect();
            let nonzero: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.0).collect();
            let mean = if nonzero.is_empty() {
                0.0
            } else {
                nonzero.iter().sum::<f64>() / nonzero.len() as f64
            };
            phases.push(PhaseStats {
                name: name.clone(),
                start_ms: *start_ms,
                end_ms,
                samples: pts.len(),
                states: pts.last().map(|p| p.states).unwrap_or(0),
                transitions: pts.last().map(|p| p.transitions).unwrap_or(0),
                mean_states_per_sec: mean,
                peak_states_per_sec: rates.iter().copied().fold(0.0, f64::max),
                min_states_per_sec: nonzero.iter().copied().fold(f64::INFINITY, f64::min).min(mean),
                shifts: detect_shifts(&rates, &times),
                rates,
            });
        }
        Analysis {
            spec: self.spec.clone(),
            interval_ms: self.interval_ms,
            duration_ms: self
                .end
                .as_ref()
                .map(|e| e.t_ms)
                .or_else(|| self.points.last().map(|p| p.t_ms))
                .unwrap_or(0),
            samples: self.points.len(),
            outcome: self.end.as_ref().map(|e| e.outcome.clone()),
            phases,
            stalls: self.stalls.clone(),
            peak_rss_bytes: self.points.iter().filter_map(|p| p.rss_bytes).max(),
            spill_bytes: self.points.iter().map(|p| p.spill_bytes).max().unwrap_or(0),
            compacted_bytes: self.points.iter().map(|p| p.compacted_bytes).max().unwrap_or(0),
        }
    }
}

/// A detected rate shift: windowed mean throughput before vs after.
#[derive(Debug, Clone, PartialEq)]
pub struct RateShift {
    /// Milliseconds since recorder start at the shift point.
    pub t_ms: u64,
    /// Mean states/sec over the window before the shift.
    pub before: f64,
    /// Mean states/sec over the window after the shift.
    pub after: f64,
}

/// Statistics of one phase's sample series.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase name (`explore/async`, …).
    pub name: String,
    /// Phase start, ms since recorder start.
    pub start_ms: u64,
    /// Last sample of the phase, ms since recorder start.
    pub end_ms: u64,
    /// Samples taken within the phase.
    pub samples: usize,
    /// Final reconstructed states of the phase.
    pub states: u64,
    /// Final reconstructed transitions of the phase.
    pub transitions: u64,
    /// Mean per-interval rate (zero-rate warmup samples excluded).
    pub mean_states_per_sec: f64,
    /// Fastest per-interval rate.
    pub peak_states_per_sec: f64,
    /// Slowest nonzero per-interval rate.
    pub min_states_per_sec: f64,
    /// Detected throughput shifts (collapse or recovery by ≥ 2×).
    pub shifts: Vec<RateShift>,
    /// The raw per-sample rate series, for sparkline rendering.
    pub rates: Vec<f64>,
}

/// The full analysis of one timeline, renderable as `timeline.json`.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Spec or workload name.
    pub spec: String,
    /// Advisory sampling interval.
    pub interval_ms: u64,
    /// Total recorded duration.
    pub duration_ms: u64,
    /// Total samples across phases.
    pub samples: usize,
    /// Run outcome, when the timeline has an `end` record.
    pub outcome: Option<String>,
    /// Per-phase statistics, in run order.
    pub phases: Vec<PhaseStats>,
    /// Watchdog diagnostics.
    pub stalls: Vec<StallRecord>,
    /// Largest sampled RSS.
    pub peak_rss_bytes: Option<u64>,
    /// Largest cumulative spill volume sampled in any phase.
    pub spill_bytes: u64,
    /// Largest cumulative compaction volume sampled in any phase.
    pub compacted_bytes: u64,
}

impl Analysis {
    /// Renders the machine-readable `timeline.json` document. The
    /// top-level `"timeline"` key marks the document kind.
    pub fn to_json(&self) -> String {
        let mut ser = Serializer::new();
        {
            let mut map = ser.begin_map();
            map.entry_with("timeline", |ser| self.serialize_into(ser));
            map.end();
        }
        ser.into_string()
    }

    /// Writes the analysis map into `ser`, so callers (e.g. `ccr
    /// report`) can embed it under their own key.
    pub fn serialize_into(&self, ser: &mut Serializer) {
        {
            let mut t = ser.begin_map();
            t.entry("spec", &self.spec);
            t.entry("interval_ms", &self.interval_ms);
            t.entry("duration_ms", &self.duration_ms);
            t.entry("samples", &(self.samples as u64));
            t.entry("outcome", &self.outcome);
            t.entry("peak_rss_bytes", &self.peak_rss_bytes);
            t.entry("spill_bytes", &self.spill_bytes);
            t.entry("compacted_bytes", &self.compacted_bytes);
            t.entry_with("phases", |ser| {
                let mut seq = ser.begin_seq();
                for p in &self.phases {
                    seq.elem_with(|ser| {
                        let mut m = ser.begin_map();
                        m.entry("name", &p.name);
                        m.entry("start_ms", &p.start_ms);
                        m.entry("end_ms", &p.end_ms);
                        m.entry("samples", &(p.samples as u64));
                        m.entry("states", &p.states);
                        m.entry("transitions", &p.transitions);
                        m.entry("mean_states_per_sec", &p.mean_states_per_sec);
                        m.entry("peak_states_per_sec", &p.peak_states_per_sec);
                        m.entry("min_states_per_sec", &p.min_states_per_sec);
                        m.entry_with("shifts", |ser| {
                            let mut s = ser.begin_seq();
                            for sh in &p.shifts {
                                s.elem_with(|ser| {
                                    let mut m = ser.begin_map();
                                    m.entry("t_ms", &sh.t_ms);
                                    m.entry("before", &sh.before);
                                    m.entry("after", &sh.after);
                                    m.end();
                                });
                            }
                            s.end();
                        });
                        m.end();
                    });
                }
                seq.end();
            });
            t.entry_with("stalls", |ser| {
                let mut seq = ser.begin_seq();
                for s in &self.stalls {
                    seq.elem_with(|ser| {
                        let mut m = ser.begin_map();
                        m.entry("t_ms", &s.t_ms);
                        m.entry("intervals", &s.intervals);
                        m.entry("states", &s.states);
                        m.entry("frontier", &s.frontier);
                        m.entry("epoch", &s.epoch);
                        m.entry_with("queues", |ser| {
                            let mut q = ser.begin_seq();
                            for d in &s.queues {
                                q.elem(d);
                            }
                            q.end();
                        });
                        m.entry_with("workers", |ser| {
                            let mut w = ser.begin_seq();
                            for (id, span, share) in &s.workers {
                                w.elem_with(|ser| {
                                    let mut m = ser.begin_map();
                                    m.entry("worker", id);
                                    m.entry("span", span);
                                    m.entry("share", share);
                                    m.end();
                                });
                            }
                            w.end();
                        });
                        m.end();
                    });
                }
                seq.end();
            });
            t.end();
        }
    }
}

/// Windowed change-point detection over a rate series: a shift is a
/// ≥ 2× jump or ≤ ½× collapse of the windowed mean. Deterministic and
/// intentionally simple — it flags the spill-onset collapse and the
/// level-structure phase changes, not subtle drift.
pub fn detect_shifts(rates: &[f64], t_ms: &[u64]) -> Vec<RateShift> {
    let w = (rates.len() / 8).max(3);
    let mut shifts = Vec::new();
    if rates.len() < 2 * w {
        return shifts;
    }
    let mean = |s: &[f64]| s.iter().sum::<f64>() / s.len() as f64;
    let mut i = w;
    while i + w <= rates.len() {
        let before = mean(&rates[i - w..i]);
        let after = mean(&rates[i..i + w]);
        if before > 0.0 && (after >= 2.0 * before || after <= before / 2.0) {
            shifts.push(RateShift { t_ms: t_ms[i], before, after });
            i += w; // cool down: one report per window
        } else {
            i += 1;
        }
    }
    shifts
}

/// Renders `values` as a unicode sparkline at most `width` characters
/// wide (bucket means when the series is longer), scaled to the series
/// maximum. Empty or all-zero series render as flat baseline bars.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    let mut resampled = Vec::with_capacity(cols);
    for c in 0..cols {
        let lo = c * values.len() / cols;
        let hi = (((c + 1) * values.len()) / cols).max(lo + 1);
        let bucket = &values[lo..hi];
        resampled.push(bucket.iter().sum::<f64>() / bucket.len() as f64);
    }
    let max = resampled.iter().copied().fold(0.0, f64::max);
    resampled
        .iter()
        .map(|v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                let idx = ((v / max) * 7.0).round() as usize;
                BARS[idx.min(7)]
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` sink tests can read back out from under the recorder.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    fn recorder(buf: &SharedBuf, stall_after: u32) -> Recorder {
        Recorder::to_writer(Box::new(buf.clone()), "specs/test.ccp", 0, stall_after)
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = Recorder::disabled();
        assert!(!rec.enabled());
        rec.set_phase("explore");
        rec.sample(&SampleInput::basic(1, 1, 1, 1), &Profiler::disabled());
        rec.finish("Complete", 1, 1);
        assert!(rec.take_error().is_none());
        let reg = Registry::new();
        rec.publish(&reg);
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn samples_are_delta_encoded_and_reconstruct() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 5);
        rec.set_phase("explore/async");
        let prof = Profiler::disabled();
        rec.sample(&SampleInput::basic(10, 25, 4, 800), &prof);
        rec.sample(&SampleInput::basic(30, 70, 9, 1600), &prof);
        rec.finish("Complete", 30, 70);
        let text = buf.text();
        // The second sample's cumulative fields are raw deltas on disk.
        let second = text.lines().nth(3).unwrap();
        let j = Json::parse(second).unwrap();
        assert_eq!(j.get("ds").and_then(Json::as_u64), Some(20));
        assert_eq!(j.get("dx").and_then(Json::as_u64), Some(45));
        let tl = Timeline::parse(&text).unwrap();
        tl.validate().unwrap();
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points[1].states, 30);
        assert_eq!(tl.points[1].transitions, 70);
        assert_eq!(tl.phases, vec![(tl.phases[0].0, "explore/async".to_string())]);
        let end = tl.end.unwrap();
        assert_eq!((end.states, end.samples, end.stalls), (30, 2, 0));
    }

    #[test]
    fn phase_change_restarts_the_cumulative_series() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 5);
        let prof = Profiler::disabled();
        rec.set_phase("explore/rendezvous");
        rec.sample(&SampleInput::basic(100, 200, 1, 64), &prof);
        rec.set_phase("explore/async");
        rec.sample(&SampleInput::basic(40, 90, 2, 64), &prof);
        rec.finish("Complete", 40, 90);
        let tl = Timeline::parse(&buf.text()).unwrap();
        tl.validate().unwrap();
        assert_eq!(tl.phases.len(), 2);
        assert_eq!(tl.points[0].phase, 0);
        assert_eq!(tl.points[0].states, 100);
        // The second phase reconstructs from its own zero baseline.
        assert_eq!(tl.points[1].phase, 1);
        assert_eq!(tl.points[1].states, 40);
    }

    #[test]
    fn watchdog_fires_once_per_episode_and_rearms() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 3);
        let prof = Profiler::disabled();
        rec.set_phase("explore");
        rec.sample(&SampleInput::basic(5, 9, 1, 64), &prof);
        // Three stuck samples: the third trips the watchdog, once.
        for _ in 0..5 {
            rec.sample(&SampleInput::basic(5, 9, 1, 64), &prof);
        }
        // Progress re-arms it; three more stuck samples trip it again.
        rec.sample(&SampleInput::basic(6, 11, 1, 64), &prof);
        for _ in 0..3 {
            rec.sample(&SampleInput::basic(6, 11, 1, 64), &prof);
        }
        rec.finish("Complete", 6, 11);
        let tl = Timeline::parse(&buf.text()).unwrap();
        tl.validate().unwrap();
        assert_eq!(tl.stalls.len(), 2);
        assert_eq!(tl.stalls[0].intervals, 3);
        assert_eq!(tl.stalls[0].states, 5);
        assert_eq!(tl.end.unwrap().stalls, 2);
    }

    #[test]
    fn stall_records_carry_engine_diagnostics() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 2);
        let prof = Profiler::new();
        let mut t = prof.worker(3);
        t.lap(SpanKind::BarrierWait, 1);
        drop(t);
        rec.set_phase("explore");
        let input =
            SampleInput { epoch: Some(17), queues: &[4, 0], ..SampleInput::basic(5, 9, 2, 64) };
        for _ in 0..3 {
            rec.sample(&input, &prof);
        }
        rec.finish("Unfinished", 5, 9);
        let tl = Timeline::parse(&buf.text()).unwrap();
        assert_eq!(tl.stalls.len(), 1);
        let stall = &tl.stalls[0];
        assert_eq!(stall.epoch, Some(17));
        assert_eq!(stall.queues, vec![4, 0]);
        assert_eq!(stall.workers.len(), 1);
        assert_eq!(stall.workers[0].0, 3);
    }

    #[test]
    fn corrupt_timelines_fail_parse_or_validate() {
        assert!(Timeline::parse("").is_err());
        assert!(Timeline::parse("{\"k\":\"s\"}").is_err());
        assert!(Timeline::parse(
            "{\"k\":\"run\",\"interval_ms\":0,\"stall_after\":1}\n{\"k\":\"wat\"}"
        )
        .is_err());
        // An end record lying about the sample count fails validation.
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 5);
        rec.set_phase("explore");
        rec.sample(&SampleInput::basic(1, 1, 1, 1), &Profiler::disabled());
        rec.finish("Complete", 1, 1);
        let mut text = buf.text();
        text = text.replace("\"samples\":1", "\"samples\":7");
        let tl = Timeline::parse(&text).unwrap();
        assert!(tl.validate().is_err());
    }

    #[test]
    fn analysis_detects_a_rate_collapse_and_round_trips_json() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 50);
        let prof = Profiler::disabled();
        rec.set_phase("explore/async");
        // Fast regime then a 10x collapse; dt is 0 in-process, so feed
        // the detector via parse-level rates by spacing the deltas.
        let mut states = 0u64;
        let mut series = Vec::new();
        for i in 0..24 {
            states += if i < 12 { 1000 } else { 100 };
            series.push(states);
        }
        for s in &series {
            rec.sample(&SampleInput::basic(*s, *s * 2, 5, 64), &prof);
        }
        rec.finish("Complete", states, states * 2);
        let mut tl = Timeline::parse(&buf.text()).unwrap();
        tl.validate().unwrap();
        // In-process dt is ~0 ms, so synthesize per-sample timing to
        // exercise the analyzer deterministically.
        for (i, p) in tl.points.iter_mut().enumerate() {
            p.t_ms = (i as u64 + 1) * 100;
        }
        let mut prev = 0u64;
        for p in tl.points.iter_mut() {
            p.states_per_sec = (p.states - prev) as f64 * 10.0;
            prev = p.states;
        }
        let analysis = tl.analyze();
        assert_eq!(analysis.phases.len(), 1);
        let phase = &analysis.phases[0];
        assert!(!phase.shifts.is_empty(), "10x collapse not detected");
        assert!(phase.shifts[0].before > phase.shifts[0].after);
        let doc = analysis.to_json();
        let parsed = Json::parse(&doc).expect("timeline.json parses");
        assert!(parsed.path("timeline.phases").is_some());
        assert_eq!(parsed.path("timeline.samples").and_then(Json::as_u64), Some(24));
    }

    #[test]
    fn sparkline_scales_and_resamples() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[0.0, 0.0], 10), "▁▁");
        let line = sparkline(&[1.0, 2.0, 4.0, 8.0], 4);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('█'));
        // Longer series resample down to the requested width.
        let long: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(sparkline(&long, 12).chars().count(), 12);
    }

    #[test]
    fn publish_tags_everything_nondeterministic() {
        let buf = SharedBuf::default();
        let rec = recorder(&buf, 5);
        rec.sample(&SampleInput::basic(1, 2, 1, 1), &Profiler::disabled());
        rec.finish("Complete", 1, 2);
        let reg = Registry::new();
        rec.publish(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["mc_timeline_samples_total"], 1);
        for name in ["mc_timeline_samples_total", "mc_timeline_stalls_total"] {
            assert!(snap.nondeterministic.contains(&name.to_string()), "{name} untagged");
        }
        assert!(snap.deterministic().counters.is_empty());
    }

    #[test]
    fn rss_probe_reads_procfs() {
        // The test environment is Linux; a live process has nonzero RSS.
        let rss = process_rss_bytes().expect("procfs");
        assert!(rss > 0);
    }
}
