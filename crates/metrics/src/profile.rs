//! Per-worker, per-level span timelines for the search engines.
//!
//! The phase timers in the parent module answer "how long did the
//! explore phase take"; this module answers "where inside the explore
//! did worker 3 spend level 12" — the attribution the parallel-engine
//! performance work runs on. A [`Profiler`] follows the registry's
//! null-object pattern: [`Profiler::disabled`] hands out timers whose
//! every call is one branch, so the instrumentation can stay compiled
//! into the hot loops permanently.
//!
//! # Span model
//!
//! Workers time themselves by **lap timing**: a [`SpanTimer`] keeps one
//! `Instant` cursor, and [`SpanTimer::lap`] charges the interval since
//! the previous lap to a [`SpanKind`] — one clock read per span
//! boundary, not two per span. Kinds partition a worker's wall time:
//!
//! | kind           | parallel engine                            | serial engines      |
//! |----------------|--------------------------------------------|---------------------|
//! | `compute`      | `successors()` per expanded state          | same                |
//! | `encode`       | successor encode + hash + routing (incl. outbox append) | successor encode into the arena slot |
//! | `insert`       | local-shard duplicate probe + hashed commit | in-arena duplicate probe + slot commit |
//! | `ship`         | cross-worker batch handoff (`flush`)       | —                   |
//! | `drain`        | consuming inbound batches (incl. waiting for them mid-drain) | — |
//! | `barrier_wait` | level wind-down: straggler wait, both barriers, the leader's decision, frontier swap | — |
//! | `progress`     | CSR build + backward livelock propagation  | same                |
//!
//! Timers accumulate into thread-local buffers (`(level, kind)` rows)
//! and merge into the shared profiler at batch granularity — every
//! [`FLUSH_LAPS`] laps, at level boundaries, and on drop — so the
//! per-lap path touches no shared memory.
//!
//! # Determinism
//!
//! Span *timings* are wall-clock and therefore nondeterministic:
//! [`Profiler::publish`] registers every `profile_*` metric through the
//! `_nondet` constructors, so [`crate::Snapshot::deterministic`] views
//! are identical whether profiling ran or not. Span *counts* for
//! `compute` (states expanded), `encode` (successors processed) and
//! `insert` (store insertions attempted) are properties of the state
//! space: on a complete run they are equal for the serial engine and
//! the parallel engine at any thread count (see
//! [`SpanKind::deterministic_count`]).

use crate::Registry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Laps between automatic flushes of a timer's local buffer into the
/// shared profiler (a mutex acquisition); level boundaries and drop
/// flush too.
pub const FLUSH_LAPS: u32 = 4096;

/// What a span interval was spent on. See the module docs for the
/// engine-side meaning of each kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Successor generation (`successors()`).
    Compute,
    /// Successor encoding, hashing and routing.
    Encode,
    /// State-store insertion: duplicate probe plus arena commit (serial:
    /// in-place slot commit; parallel: local-shard hashed insert).
    Insert,
    /// Cross-worker batch handoff.
    Ship,
    /// Inbound batch consumption.
    Drain,
    /// Level synchronization: straggler wait, barriers, decision, swap.
    BarrierWait,
    /// Livelock-check graph work (CSR build + backward propagation).
    Progress,
    /// Persistence: log sync, index rewrite and manifest checkpointing.
    Checkpoint,
}

/// Number of span kinds (the fixed width of every per-level row).
pub const N_SPAN_KINDS: usize = 8;

impl SpanKind {
    /// Every kind, in canonical (output) order.
    pub const ALL: [SpanKind; N_SPAN_KINDS] = [
        SpanKind::Compute,
        SpanKind::Encode,
        SpanKind::Insert,
        SpanKind::Ship,
        SpanKind::Drain,
        SpanKind::BarrierWait,
        SpanKind::Progress,
        SpanKind::Checkpoint,
    ];

    fn idx(self) -> usize {
        match self {
            SpanKind::Compute => 0,
            SpanKind::Encode => 1,
            SpanKind::Insert => 2,
            SpanKind::Ship => 3,
            SpanKind::Drain => 4,
            SpanKind::BarrierWait => 5,
            SpanKind::Progress => 6,
            SpanKind::Checkpoint => 7,
        }
    }

    /// Stable name used in folded stacks, metric names and reports.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Encode => "encode",
            SpanKind::Insert => "insert",
            SpanKind::Ship => "ship",
            SpanKind::Drain => "drain",
            SpanKind::BarrierWait => "barrier_wait",
            SpanKind::Progress => "progress",
            SpanKind::Checkpoint => "checkpoint",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(name: &str) -> Option<SpanKind> {
        SpanKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Whether this kind's aggregate *count* is a property of the state
    /// space (identical for serial and parallel engines at any thread
    /// count on a complete run) rather than of the schedule.
    pub fn deterministic_count(self) -> bool {
        matches!(self, SpanKind::Compute | SpanKind::Encode | SpanKind::Insert)
    }
}

/// Accumulated time and unit count for one `(worker, level, kind)` cell.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpanTotals {
    /// Wall-clock nanoseconds charged to this cell.
    pub nanos: u64,
    /// Work units (kind-specific: states, successors, batches, levels).
    pub count: u64,
}

impl SpanTotals {
    fn add(&mut self, other: SpanTotals) {
        self.nanos += other.nanos;
        self.count += other.count;
    }

    /// Seconds charged to this cell.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

type Row = [SpanTotals; N_SPAN_KINDS];

fn row_is_zero(row: &Row) -> bool {
    row.iter().all(|t| t.nanos == 0 && t.count == 0)
}

/// One worker's spans: level-less totals (serial engines) plus one row
/// per BFS level (the parallel engine).
#[derive(Default, Clone)]
struct Timeline {
    flat: Row,
    levels: Vec<Row>,
}

impl Timeline {
    fn merge(&mut self, other: &Timeline) {
        for (k, t) in other.flat.iter().enumerate() {
            self.flat[k].add(*t);
        }
        if self.levels.len() < other.levels.len() {
            self.levels.resize(other.levels.len(), Row::default());
        }
        for (row, orow) in self.levels.iter_mut().zip(other.levels.iter()) {
            for (k, t) in orow.iter().enumerate() {
                row[k].add(*t);
            }
        }
    }

    fn clear(&mut self) {
        self.flat = Row::default();
        for row in &mut self.levels {
            *row = Row::default();
        }
    }

    fn is_zero(&self) -> bool {
        row_is_zero(&self.flat) && self.levels.iter().all(row_is_zero)
    }
}

#[derive(Default)]
struct ProfInner {
    workers: Mutex<BTreeMap<usize, Timeline>>,
}

/// Handle to a span store, or the null profiler when profiling is off.
/// Clones share the same store, mirroring [`Registry`].
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

impl Profiler {
    /// An enabled profiler with an empty store.
    pub fn new() -> Self {
        Profiler { inner: Some(Arc::new(ProfInner::default())) }
    }

    /// The null profiler: every timer is a no-op costing one branch.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// Whether this profiler actually records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A lap timer for worker `worker`. The timer buffers locally and
    /// merges into this profiler at batch granularity and on drop.
    pub fn worker(&self, worker: usize) -> SpanTimer {
        SpanTimer {
            shared: self.inner.clone(),
            worker,
            level: None,
            last: Instant::now(),
            local: Timeline::default(),
            pending: 0,
        }
    }

    /// Point-in-time aggregate of everything flushed so far.
    pub fn aggregate(&self) -> ProfileAgg {
        let mut agg = ProfileAgg::default();
        let Some(inner) = &self.inner else { return agg };
        let workers = inner.workers.lock().unwrap();
        for (&worker, timeline) in workers.iter() {
            let mut kinds = Row::default();
            for (k, t) in timeline.flat.iter().enumerate() {
                kinds[k].add(*t);
            }
            for row in &timeline.levels {
                for (k, t) in row.iter().enumerate() {
                    kinds[k].add(*t);
                }
            }
            agg.workers.push(WorkerAgg { worker, kinds });
        }
        agg
    }

    /// Renders the whole store as folded stacks (one
    /// `frame;frame;frame value` line per nonzero cell, value in
    /// nanoseconds) — the input format of flamegraph tooling. Lines are
    /// ordered by worker, then level (level-less rows first), then kind.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let Some(inner) = &self.inner else { return out };
        let workers = inner.workers.lock().unwrap();
        for (&worker, timeline) in workers.iter() {
            for (k, t) in timeline.flat.iter().enumerate() {
                if t.nanos > 0 || t.count > 0 {
                    out.push_str(&format!(
                        "worker{worker};{} {}\n",
                        SpanKind::ALL[k].name(),
                        t.nanos
                    ));
                }
            }
            for (level, row) in timeline.levels.iter().enumerate() {
                for (k, t) in row.iter().enumerate() {
                    if t.nanos > 0 || t.count > 0 {
                        out.push_str(&format!(
                            "worker{worker};L{level};{} {}\n",
                            SpanKind::ALL[k].name(),
                            t.nanos
                        ));
                    }
                }
            }
        }
        out
    }

    /// Folds the aggregate into `reg` as `profile_<kind>_nanos_total` /
    /// `profile_<kind>_spans_total` counters. All of them are registered
    /// nondeterministic (timings are wall-clock; counts of the
    /// schedule-dependent kinds vary with thread count), so the
    /// deterministic snapshot view is identical with profiling on or
    /// off.
    pub fn publish(&self, reg: &Registry) {
        if !self.enabled() || !reg.enabled() {
            return;
        }
        let totals = self.aggregate().totals();
        for kind in SpanKind::ALL {
            let t = totals[kind.idx()];
            if t.nanos == 0 && t.count == 0 {
                continue;
            }
            reg.counter_nondet(
                &format!("profile_{}_nanos_total", kind.name()),
                &format!("Wall-clock nanoseconds in {} spans across workers", kind.name()),
            )
            .add(t.nanos);
            reg.counter_nondet(
                &format!("profile_{}_spans_total", kind.name()),
                &format!("Work units charged to {} spans across workers", kind.name()),
            )
            .add(t.count);
        }
    }
}

/// A worker-owned lap timer; create via [`Profiler::worker`].
pub struct SpanTimer {
    shared: Option<Arc<ProfInner>>,
    worker: usize,
    level: Option<u32>,
    last: Instant,
    local: Timeline,
    pending: u32,
}

impl SpanTimer {
    /// Charges the interval since the previous lap (or [`mark`]) to
    /// `kind`, crediting `count` work units, and restarts the cursor.
    /// One branch when profiling is off.
    ///
    /// [`mark`]: SpanTimer::mark
    #[inline]
    pub fn lap(&mut self, kind: SpanKind, count: u64) {
        if self.shared.is_none() {
            return;
        }
        self.lap_enabled(kind, count);
    }

    fn lap_enabled(&mut self, kind: SpanKind, count: u64) {
        let now = Instant::now();
        let nanos = u64::try_from(now.duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
        self.last = now;
        let row = match self.level {
            None => &mut self.local.flat,
            Some(level) => {
                let level = level as usize;
                if self.local.levels.len() <= level {
                    self.local.levels.resize(level + 1, Row::default());
                }
                &mut self.local.levels[level]
            }
        };
        row[kind.idx()].add(SpanTotals { nanos, count });
        self.pending += 1;
        if self.pending >= FLUSH_LAPS {
            self.flush();
        }
    }

    /// Restarts the cursor without charging the elapsed interval to any
    /// kind (discard uninteresting time, e.g. setup).
    #[inline]
    pub fn mark(&mut self) {
        if self.shared.is_some() {
            self.last = Instant::now();
        }
    }

    /// Directs subsequent laps to BFS level `level` and flushes the
    /// local buffer (level boundaries are the parallel engine's natural
    /// batch edge).
    pub fn set_level(&mut self, level: u32) {
        if self.shared.is_none() {
            return;
        }
        if self.level != Some(level) {
            self.flush();
            self.level = Some(level);
        }
    }

    /// Merges the local buffer into the shared profiler.
    pub fn flush(&mut self) {
        let Some(shared) = &self.shared else { return };
        self.pending = 0;
        if self.local.is_zero() {
            return;
        }
        let mut workers = shared.workers.lock().unwrap();
        workers.entry(self.worker).or_default().merge(&self.local);
        self.local.clear();
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// One worker's per-kind totals, summed over levels.
#[derive(Debug, Clone)]
pub struct WorkerAgg {
    /// Worker index (0 for the serial engines).
    pub worker: usize,
    /// Totals indexed in [`SpanKind::ALL`] order.
    pub kinds: Row,
}

impl WorkerAgg {
    /// Totals for one kind.
    pub fn kind(&self, kind: SpanKind) -> SpanTotals {
        self.kinds[kind.idx()]
    }

    /// Nanoseconds across every kind.
    pub fn total_nanos(&self) -> u64 {
        self.kinds.iter().map(|t| t.nanos).sum()
    }
}

/// Aggregated profile: per-worker and overall per-kind totals.
#[derive(Debug, Clone, Default)]
pub struct ProfileAgg {
    /// Per-worker totals, ordered by worker index.
    pub workers: Vec<WorkerAgg>,
}

impl ProfileAgg {
    /// Per-kind totals summed across workers, in [`SpanKind::ALL`]
    /// order.
    pub fn totals(&self) -> Row {
        let mut totals = Row::default();
        for w in &self.workers {
            for (k, t) in w.kinds.iter().enumerate() {
                totals[k].add(*t);
            }
        }
        totals
    }

    /// Overall totals for one kind.
    pub fn kind(&self, kind: SpanKind) -> SpanTotals {
        self.totals()[kind.idx()]
    }

    /// Nanoseconds across every worker and kind.
    pub fn total_nanos(&self) -> u64 {
        self.workers.iter().map(WorkerAgg::total_nanos).sum()
    }

    /// Whether anything was recorded at all.
    pub fn is_empty(&self) -> bool {
        self.total_nanos() == 0 && self.workers.iter().all(|w| w.kinds.iter().all(|t| t.count == 0))
    }

    /// Rebuilds per-worker, per-kind totals from parsed folded stacks
    /// (the inverse of [`Profiler::folded`] up to unit counts, which the
    /// folded format does not carry).
    pub fn from_folded(entries: &[FoldedEntry]) -> Result<ProfileAgg, String> {
        let mut map: BTreeMap<usize, Row> = BTreeMap::new();
        for e in entries {
            let (first, last) = match (e.frames.first(), e.frames.last()) {
                (Some(f), Some(l)) if e.frames.len() >= 2 => (f, l),
                _ => {
                    return Err(format!(
                        "stack `{}` needs worker and kind frames",
                        e.frames.join(";")
                    ))
                }
            };
            let worker: usize = first
                .strip_prefix("worker")
                .and_then(|w| w.parse().ok())
                .ok_or_else(|| format!("bad worker frame `{first}`"))?;
            let kind =
                SpanKind::from_name(last).ok_or_else(|| format!("bad kind frame `{last}`"))?;
            map.entry(worker).or_default()[kind.idx()].nanos += e.value;
        }
        Ok(ProfileAgg {
            workers: map.into_iter().map(|(worker, kinds)| WorkerAgg { worker, kinds }).collect(),
        })
    }
}

/// One parsed folded-stack line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedEntry {
    /// Stack frames, outermost first.
    pub frames: Vec<String>,
    /// The sample value (nanoseconds in this crate's output).
    pub value: u64,
}

/// Parses folded-stack text (`frame;frame;frame value` per line; blank
/// lines ignored) — accepts anything flamegraph tooling would.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedEntry>, String> {
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let (stack, value) =
            line.rsplit_once(' ').ok_or_else(|| format!("line {}: no value separator", i + 1))?;
        let value: u64 =
            value.parse().map_err(|_| format!("line {}: bad value `{value}`", i + 1))?;
        if stack.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        entries.push(FoldedEntry { frames: stack.split(';').map(str::to_string).collect(), value });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_a_noop() {
        let prof = Profiler::disabled();
        assert!(!prof.enabled());
        let mut t = prof.worker(0);
        t.lap(SpanKind::Compute, 5);
        t.set_level(3);
        t.lap(SpanKind::Encode, 1);
        t.flush();
        drop(t);
        assert!(prof.aggregate().is_empty());
        assert_eq!(prof.folded(), "");
    }

    #[test]
    fn laps_accumulate_per_worker_and_level() {
        let prof = Profiler::new();
        let mut t0 = prof.worker(0);
        t0.set_level(0);
        t0.lap(SpanKind::Compute, 2);
        t0.lap(SpanKind::Encode, 7);
        t0.set_level(1);
        t0.lap(SpanKind::BarrierWait, 1);
        drop(t0);
        let mut t1 = prof.worker(1);
        t1.lap(SpanKind::Compute, 3);
        drop(t1);

        let agg = prof.aggregate();
        assert_eq!(agg.workers.len(), 2);
        assert_eq!(agg.kind(SpanKind::Compute).count, 5);
        assert_eq!(agg.kind(SpanKind::Encode).count, 7);
        assert_eq!(agg.kind(SpanKind::BarrierWait).count, 1);
        let folded = prof.folded();
        assert!(folded.contains("worker0;L0;compute "));
        assert!(folded.contains("worker0;L1;barrier_wait "));
        assert!(folded.contains("worker1;compute "), "level-less rows have no level frame");
    }

    #[test]
    fn folded_round_trips_through_the_parser() {
        let prof = Profiler::new();
        let mut t = prof.worker(2);
        t.set_level(0);
        t.lap(SpanKind::Compute, 1);
        t.lap(SpanKind::Ship, 4);
        drop(t);
        let folded = prof.folded();
        let entries = parse_folded(&folded).unwrap();
        let rebuilt = ProfileAgg::from_folded(&entries).unwrap();
        let agg = prof.aggregate();
        assert_eq!(rebuilt.workers.len(), agg.workers.len());
        for (r, a) in rebuilt.workers.iter().zip(agg.workers.iter()) {
            assert_eq!(r.worker, a.worker);
            for kind in SpanKind::ALL {
                assert_eq!(r.kind(kind).nanos, a.kind(kind).nanos, "{}", kind.name());
            }
        }
    }

    #[test]
    fn parse_folded_rejects_malformed_lines() {
        assert!(parse_folded("no_value_here").is_err());
        assert!(parse_folded("a;b notanumber").is_err());
        assert!(parse_folded(" 5").is_err());
        assert!(parse_folded("").unwrap().is_empty());
    }

    #[test]
    fn publish_registers_only_nondet_metrics() {
        let prof = Profiler::new();
        let mut t = prof.worker(0);
        t.lap(SpanKind::Compute, 3);
        drop(t);
        let reg = Registry::new();
        prof.publish(&reg);
        let snap = reg.snapshot();
        assert!(snap.counters.contains_key("profile_compute_nanos_total"));
        assert_eq!(snap.counters["profile_compute_spans_total"], 3);
        for name in snap.counters.keys() {
            assert!(
                snap.nondeterministic.contains(name),
                "{name} must be nondet so deterministic views ignore profiling"
            );
        }
        assert_eq!(reg.snapshot().deterministic().counters.len(), 0);
    }

    #[test]
    fn span_kind_names_round_trip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(SpanKind::from_name("nope"), None);
        assert!(SpanKind::Compute.deterministic_count());
        assert!(!SpanKind::Ship.deterministic_count());
    }
}
