//! `ccr bench diff` — the perf-regression comparator.
//!
//! Compares two JSON files of the same kind and reports regressions:
//!
//! * **Bench reports** (`BENCH_mc.json`, anything with a top-level
//!   `"bench"` key): workloads are matched by name; `states`,
//!   `transitions` and `encoded_len_bytes` must match exactly (the state
//!   space is deterministic — any drift is a correctness bug, not
//!   noise), throughput (`states_per_sec`, serial and per thread count)
//!   may drop by at most `tolerance`, `store.arena_bytes_per_state` may
//!   grow by at most `bytes_tolerance`, per-phase wall times may
//!   grow by at most `tolerance` (with a small absolute floor so
//!   microsecond phases don't flap), and the flight-recorder
//!   `sampler.overhead_share` may grow by at most 2 percentage points
//!   over the baseline (the "<2% sampling overhead" claim).
//!   `--counts-only` drops every timing- and memory-based threshold and
//!   gates the exact counts alone — for workloads too short to time reliably, such as the
//!   symmetry-reduced orbit spaces. `--min-engine-overhead R` asserts
//!   the new report's 1-thread `engine_overhead` ratio stays at or
//!   above `R` — a same-host ratio, so it holds up even under
//!   `--counts-only` on hosts too noisy for absolute-rate gates.
//! * **Metrics snapshots** (`ccr --metrics` output, anything with a
//!   top-level `"counters"` key): every metric *not* tagged in either
//!   file's `nondeterministic` list must match exactly — counters,
//!   gauges, and histogram bucket counts alike. Phases are wall-clock
//!   and are ignored.
//!
//! `diff_strs` is the library entry; [`cli`] is the `ccr bench diff`
//! front end (exit 0 clean, 1 on regression, 2 on usage/parse errors).

use ccr_metrics::jsonval::Json;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Relative-tolerance thresholds for [`diff_strs`].
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Maximum allowed relative throughput drop / phase-time growth.
    pub tolerance: f64,
    /// Maximum allowed relative growth in bytes per state.
    pub bytes_tolerance: f64,
    /// Compare only the deterministic counts (`states`, `transitions`,
    /// `encoded_len_bytes`) and skip every timing- and memory-based
    /// threshold. For gating workloads whose wall time is too short to
    /// measure reliably — e.g. the symmetry-reduced orbit spaces, where
    /// the counts *are* the result being pinned.
    pub counts_only: bool,
    /// Absolute floor on the **new** report's 1-thread `engine_overhead`
    /// ratio (parallel-at-1-thread throughput over serial throughput).
    /// Unlike the relative thresholds this does not compare against the
    /// old report — it asserts the overhead gap itself never regresses
    /// past a fixed line, and it applies even under `counts_only`
    /// (a ratio of two same-host runs is far more stable than either
    /// absolute rate, so it survives hosts too noisy for `tolerance`).
    pub min_engine_overhead: Option<f64>,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self { tolerance: 0.1, bytes_tolerance: 0.1, counts_only: false, min_engine_overhead: None }
    }
}

/// Outcome of a comparison: hard regressions plus informational notes
/// (entries present on only one side, skipped nondeterministic metrics).
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Violations of the thresholds — any entry here fails the gate.
    pub regressions: Vec<String>,
    /// Observations that do not fail the gate.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// True when no regression was found.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.regressions {
            let _ = writeln!(out, "REGRESSION: {r}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        if self.ok() {
            let _ = writeln!(out, "ok: no regressions");
        }
        out
    }
}

/// Compares two JSON documents (both bench reports or both metrics
/// snapshots). Errors on unparsable input or mismatched kinds.
pub fn diff_strs(old: &str, new: &str, opts: &DiffOptions) -> Result<DiffReport, String> {
    let old = Json::parse(old).map_err(|e| format!("old file: {e}"))?;
    let new = Json::parse(new).map_err(|e| format!("new file: {e}"))?;
    let kind = |j: &Json| {
        if j.get("bench").is_some() {
            Some("bench")
        } else if j.get("counters").is_some() {
            Some("snapshot")
        } else {
            None
        }
    };
    match (kind(&old), kind(&new)) {
        (Some("bench"), Some("bench")) => Ok(diff_bench(&old, &new, opts)),
        (Some("snapshot"), Some("snapshot")) => Ok(diff_snapshot(&old, &new)),
        (Some(a), Some(b)) => Err(format!("cannot compare a {a} report against a {b} report")),
        _ => Err("unrecognized report: expected a top-level \"bench\" or \"counters\" key".into()),
    }
}

fn workload_map(doc: &Json) -> Vec<(&str, &Json)> {
    doc.get("workloads")
        .and_then(Json::as_array)
        .map(|ws| {
            ws.iter().filter_map(|w| w.get("name").and_then(Json::as_str).map(|n| (n, w))).collect()
        })
        .unwrap_or_default()
}

fn diff_bench(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    let mut rep = DiffReport::default();
    let old_ws = workload_map(old);
    let new_ws = workload_map(new);
    for (name, _) in &old_ws {
        if !new_ws.iter().any(|(n, _)| n == name) {
            rep.notes.push(format!("workload {name} only in old report"));
        }
    }
    for (name, nw) in &new_ws {
        let Some((_, ow)) = old_ws.iter().find(|(n, _)| n == name) else {
            rep.notes.push(format!("workload {name} only in new report"));
            continue;
        };
        diff_workload(name, ow, nw, opts, &mut rep);
    }
    rep
}

fn diff_workload(name: &str, old: &Json, new: &Json, opts: &DiffOptions, rep: &mut DiffReport) {
    // The state space is deterministic: exact equality, no tolerance.
    for key in ["states", "transitions", "encoded_len_bytes"] {
        match (old.get(key).and_then(Json::as_u64), new.get(key).and_then(Json::as_u64)) {
            (Some(o), Some(n)) if o != n => {
                rep.regressions.push(format!(
                    "{name}: {key} changed {o} -> {n} ({:+.2}%, must be exact)",
                    (n as f64 / o.max(1) as f64 - 1.0) * 100.0
                ));
            }
            (Some(_), Some(_)) => {}
            _ => rep.notes.push(format!("{name}: {key} missing on one side")),
        }
    }
    // Engine overhead: an absolute floor on the new report's 1-thread
    // ratio, asserted regardless of `counts_only` (see `DiffOptions`).
    if let Some(floor) = opts.min_engine_overhead {
        let one_t = new
            .get("parallel")
            .and_then(Json::as_array)
            .and_then(|par| par.iter().find(|e| e.get("threads").and_then(Json::as_u64) == Some(1)))
            .and_then(|e| e.get("engine_overhead"))
            .and_then(Json::as_f64);
        match one_t {
            Some(ratio) if ratio < floor => rep.regressions.push(format!(
                "{name}: 1-thread engine_overhead {ratio:.2} below the {floor:.2} floor"
            )),
            Some(_) => {}
            None => rep.notes.push(format!("{name}: no 1-thread engine_overhead sample")),
        }
    }
    if opts.counts_only {
        return;
    }
    // Throughput: one-sided relative drop.
    let rate = |w: &Json, path: &str| w.path(path).and_then(Json::as_f64);
    check_rate(
        rep,
        opts.tolerance,
        format!("{name}: serial states_per_sec"),
        rate(old, "serial.states_per_sec"),
        rate(new, "serial.states_per_sec"),
    );
    let threads_of = |e: &Json| e.get("threads").and_then(Json::as_u64);
    let old_par = old.get("parallel").and_then(Json::as_array).unwrap_or(&[]);
    let new_par = new.get("parallel").and_then(Json::as_array).unwrap_or(&[]);
    for ne in new_par {
        let Some(t) = threads_of(ne) else { continue };
        let Some(oe) = old_par.iter().find(|e| threads_of(e) == Some(t)) else {
            rep.notes.push(format!("{name}: {t}-thread sample only in new report"));
            continue;
        };
        check_rate(
            rep,
            opts.tolerance,
            format!("{name}: {t}-thread states_per_sec"),
            oe.get("states_per_sec").and_then(Json::as_f64),
            ne.get("states_per_sec").and_then(Json::as_f64),
        );
    }
    // Memory: one-sided relative growth.
    match (rate(old, "store.arena_bytes_per_state"), rate(new, "store.arena_bytes_per_state")) {
        (Some(o), Some(n)) if o > 0.0 && n > o * (1.0 + opts.bytes_tolerance) => {
            rep.regressions.push(format!(
                "{name}: arena_bytes_per_state grew {o:.1} -> {n:.1} ({:+.1}% > {:.0}% tolerance)",
                (n / o - 1.0) * 100.0,
                opts.bytes_tolerance * 100.0
            ));
        }
        _ => {}
    }
    // Phase wall times: one-sided growth with a 20 ms absolute floor so
    // sub-millisecond phases don't flap on scheduler noise.
    let old_ph = phase_entries(old);
    for (key, n) in phase_entries(new) {
        let Some(&(_, o)) = old_ph.iter().find(|(k, _)| *k == key) else {
            rep.notes.push(format!("{name}: phase {key} only in new report"));
            continue;
        };
        if n > o * (1.0 + opts.tolerance) && n - o > 0.02 {
            rep.regressions.push(format!(
                "{name}: phase {key} slowed {o:.3}s -> {n:.3}s ({:+.1}% > {:.0}% tolerance)",
                (n / o - 1.0) * 100.0,
                opts.tolerance * 100.0
            ));
        }
    }
    // Flight-recorder cost: the new `sampler.overhead_share` may exceed
    // the old one by at most 2 percentage points — an absolute band, not
    // a ratio, because the share itself hovers near zero and a ratio
    // would flap on noise. This is the "<2% sampling overhead" claim:
    // a baseline share of ~0 caps the new share at ~0.02.
    match (rate(old, "sampler.overhead_share"), rate(new, "sampler.overhead_share")) {
        (Some(o), Some(n)) if n > o.max(0.0) + 0.02 => {
            rep.regressions.push(format!(
                "{name}: sampler overhead_share grew {o:.4} -> {n:.4} \
                 (+{:.1} points > 2.0-point band)",
                (n - o.max(0.0)) * 100.0
            ));
        }
        _ => {}
    }
}

fn check_rate(rep: &mut DiffReport, tolerance: f64, label: String, o: Option<f64>, n: Option<f64>) {
    match (o, n) {
        (Some(o), Some(n)) if o > 0.0 && n < o * (1.0 - tolerance) => {
            rep.regressions.push(format!(
                "{label} dropped {o:.0} -> {n:.0} states/sec ({:+.1}% > {:.0}% tolerance)",
                (n / o - 1.0) * 100.0,
                tolerance * 100.0
            ));
        }
        (Some(_), Some(_)) => {}
        _ => rep.notes.push(format!("{label} missing on one side")),
    }
}

fn phase_entries(w: &Json) -> Vec<(&str, f64)> {
    w.get("phases")
        .and_then(Json::as_object)
        .map(|o| o.iter().filter_map(|(k, v)| v.as_f64().map(|f| (k.as_str(), f))).collect())
        .unwrap_or_default()
}

fn diff_snapshot(old: &Json, new: &Json) -> DiffReport {
    let mut rep = DiffReport::default();
    let nondet: BTreeSet<&str> = [old, new]
        .iter()
        .filter_map(|j| j.get("nondeterministic").and_then(Json::as_array))
        .flatten()
        .filter_map(Json::as_str)
        .collect();
    for family in ["counters", "gauges"] {
        let old_m = old.get(family).and_then(Json::as_object).unwrap_or(&[]);
        let new_m = new.get(family).and_then(Json::as_object).unwrap_or(&[]);
        let names: BTreeSet<&str> = old_m.iter().chain(new_m).map(|(k, _)| k.as_str()).collect();
        for name in names {
            if nondet.contains(name) {
                rep.notes.push(format!("{name}: nondeterministic, skipped"));
                continue;
            }
            let get = |m: &[(String, Json)]| {
                m.iter().find(|(k, _)| k == name).and_then(|(_, v)| v.as_u64())
            };
            match (get(old_m), get(new_m)) {
                (Some(o), Some(n)) if o != n => rep.regressions.push(format!(
                    "{name}: deterministic {family} changed {o} -> {n} ({:+.2}%)",
                    (n as f64 / o.max(1) as f64 - 1.0) * 100.0
                )),
                (Some(_), Some(_)) => {}
                (Some(o), None) => {
                    rep.regressions
                        .push(format!("{name}: deterministic {family} disappeared (was {o})"));
                }
                (None, Some(_)) => rep.notes.push(format!("{name}: new {family}")),
                (None, None) => {}
            }
        }
    }
    let old_h = old.get("histograms").and_then(Json::as_object).unwrap_or(&[]);
    let new_h = new.get("histograms").and_then(Json::as_object).unwrap_or(&[]);
    let names: BTreeSet<&str> = old_h.iter().chain(new_h).map(|(k, _)| k.as_str()).collect();
    for name in names {
        if nondet.contains(name) {
            rep.notes.push(format!("{name}: nondeterministic, skipped"));
            continue;
        }
        let shape = |m: &[(String, Json)]| {
            m.iter().find(|(k, _)| k == name).map(|(_, v)| {
                let nums = |key: &str| -> Vec<u64> {
                    v.get(key)
                        .and_then(Json::as_array)
                        .map(|a| a.iter().filter_map(Json::as_u64).collect())
                        .unwrap_or_default()
                };
                (nums("counts"), v.get("sum").and_then(Json::as_u64))
            })
        };
        match (shape(old_h), shape(new_h)) {
            (Some(o), Some(n)) if o != n => {
                let fmt_sum =
                    |s: Option<u64>| s.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string());
                rep.regressions.push(format!(
                    "{name}: deterministic histogram changed \
                     (sum {} -> {}, counts {:?} -> {:?})",
                    fmt_sum(o.1),
                    fmt_sum(n.1),
                    o.0,
                    n.0
                ));
            }
            (Some(_), Some(_)) => {}
            (Some(o), None) => {
                rep.regressions.push(format!(
                    "{name}: deterministic histogram disappeared (sum was {})",
                    o.1.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string())
                ));
            }
            (None, Some(_)) => rep.notes.push(format!("{name}: new histogram")),
            (None, None) => {}
        }
    }
    if old.get("phases").and_then(Json::as_object).map(|p| !p.is_empty()).unwrap_or(false)
        || new.get("phases").and_then(Json::as_object).map(|p| !p.is_empty()).unwrap_or(false)
    {
        rep.notes.push("phases: wall-clock timings, not compared".into());
    }
    rep
}

/// The `ccr bench diff` front end. `args` excludes the `bench` word
/// itself: `["diff", old, new, --tolerance T, --bytes-tolerance B]`.
pub fn cli(args: &[String]) -> std::process::ExitCode {
    use std::process::ExitCode;
    let usage = || {
        eprintln!(
            "usage: ccr bench diff <old.json> <new.json> \
             [--tolerance T] [--bytes-tolerance B] [--counts-only] \
             [--min-engine-overhead R]"
        );
        ExitCode::from(2)
    };
    if args.first().map(String::as_str) != Some("diff") {
        return usage();
    }
    let mut files = Vec::new();
    let mut opts = DiffOptions::default();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => opts.tolerance = t,
                _ => return usage(),
            },
            "--bytes-tolerance" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => opts.bytes_tolerance = t,
                _ => return usage(),
            },
            "--counts-only" => opts.counts_only = true,
            "--min-engine-overhead" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(r) if (0.0..=1.0).contains(&r) => opts.min_engine_overhead = Some(r),
                _ => return usage(),
            },
            _ if a.starts_with('-') => return usage(),
            _ => files.push(a.clone()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage();
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("ccr bench diff: cannot read {path}: {e}");
        })
    };
    let (Ok(old), Ok(new)) = (read(old_path), read(new_path)) else {
        return ExitCode::from(2);
    };
    match diff_strs(&old, &new, &opts) {
        Ok(rep) => {
            print!("{}", rep.render());
            if rep.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ccr bench diff: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(states: u64, serial_rate: f64, bytes_per_state: f64, explore_secs: f64) -> String {
        format!(
            r#"{{"bench":"mc_perf","workloads":[{{"name":"w1","states":{states},
              "transitions":10,"encoded_len_bytes":16,
              "serial":{{"secs":1.0,"states_per_sec":{serial_rate}}},
              "parallel":[{{"threads":4,"secs":1.0,"states_per_sec":{serial_rate},"speedup":1.0}}],
              "store":{{"arena_bytes_per_state":{bytes_per_state}}},
              "phases":{{"explore_secs":{explore_secs}}}}}]}}"#
        )
    }

    #[test]
    fn identical_bench_reports_pass() {
        let doc = bench_doc(100, 5000.0, 20.0, 1.0);
        let rep = diff_strs(&doc, &doc, &DiffOptions::default()).unwrap();
        assert!(rep.ok(), "{:?}", rep.regressions);
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let old = bench_doc(100, 5000.0, 20.0, 1.0);
        let new = bench_doc(100, 4000.0, 20.0, 1.0);
        let rep = diff_strs(&old, &new, &DiffOptions::default()).unwrap();
        assert!(!rep.ok());
        assert!(rep.regressions.iter().any(|r| r.contains("states_per_sec")), "{rep:?}");
        // The same drop passes under a looser gate.
        let loose = DiffOptions { tolerance: 0.25, ..DiffOptions::default() };
        assert!(diff_strs(&old, &new, &loose).unwrap().ok());
    }

    #[test]
    fn state_count_drift_fails_exactly() {
        let old = bench_doc(100, 5000.0, 20.0, 1.0);
        let new = bench_doc(101, 5000.0, 20.0, 1.0);
        let rep = diff_strs(&old, &new, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("states changed")), "{rep:?}");
    }

    #[test]
    fn bytes_growth_and_phase_slowdown_fail() {
        let old = bench_doc(100, 5000.0, 20.0, 1.0);
        let fat = bench_doc(100, 5000.0, 25.0, 1.0);
        let rep = diff_strs(&old, &fat, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("arena_bytes_per_state")), "{rep:?}");
        let slow = bench_doc(100, 5000.0, 20.0, 1.5);
        let rep = diff_strs(&old, &slow, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("explore_secs")), "{rep:?}");
        // Faster is never a regression.
        let fast = bench_doc(100, 5000.0, 20.0, 0.5);
        assert!(diff_strs(&old, &fast, &DiffOptions::default()).unwrap().ok());
    }

    #[test]
    fn counts_only_ignores_timing_but_still_pins_counts() {
        let opts = DiffOptions { counts_only: true, ..DiffOptions::default() };
        let old = bench_doc(100, 5000.0, 20.0, 1.0);
        // Half the throughput, fatter store, slower phase: all ignored.
        let noisy = bench_doc(100, 2500.0, 30.0, 2.0);
        assert!(diff_strs(&old, &noisy, &opts).unwrap().ok());
        // State-count drift still fails exactly.
        let drifted = bench_doc(99, 5000.0, 20.0, 1.0);
        let rep = diff_strs(&old, &drifted, &opts).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("states changed")), "{rep:?}");
    }

    fn bench_doc_with_sampler(share: f64) -> String {
        format!(
            r#"{{"bench":"mc_perf","workloads":[{{"name":"w1","states":100,
              "transitions":10,"encoded_len_bytes":16,
              "serial":{{"secs":1.0,"states_per_sec":5000.0}},
              "parallel":[{{"threads":4,"secs":1.0,"states_per_sec":5000.0,"speedup":1.0}}],
              "store":{{"arena_bytes_per_state":20.0}},
              "phases":{{"explore_secs":1.0}},
              "sampler":{{"interval_ms":50,"off_secs":1.0,"on_secs":{},
                "overhead_share":{share},"samples":20}}}}]}}"#,
            1.0 + share
        )
    }

    #[test]
    fn sampler_overhead_gated_within_two_points() {
        let old = bench_doc_with_sampler(0.005);
        // Inside the 2-point band: clean.
        let near = bench_doc_with_sampler(0.024);
        assert!(diff_strs(&old, &near, &DiffOptions::default()).unwrap().ok());
        // Past it: regression.
        let heavy = bench_doc_with_sampler(0.03);
        let rep = diff_strs(&old, &heavy, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("overhead_share")), "{rep:?}");
        // counts_only skips the sampler gate like every timing gate.
        let lax = DiffOptions { counts_only: true, ..DiffOptions::default() };
        assert!(diff_strs(&old, &heavy, &lax).unwrap().ok());
        // A report without a sampler entry (pre-recorder baseline) is
        // not a regression.
        let legacy = bench_doc(100, 5000.0, 20.0, 1.0);
        assert!(diff_strs(&legacy, &heavy, &DiffOptions::default()).unwrap().ok());
    }

    fn bench_doc_with_overhead(overhead: f64) -> String {
        format!(
            r#"{{"bench":"mc_perf","workloads":[{{"name":"w1","states":100,
              "transitions":10,"encoded_len_bytes":16,
              "serial":{{"secs":1.0,"states_per_sec":5000.0}},
              "parallel":[
                {{"threads":1,"secs":1.0,"states_per_sec":{},"engine_overhead":{overhead}}},
                {{"threads":4,"secs":1.0,"states_per_sec":5000.0,"speedup":1.0}}],
              "store":{{"arena_bytes_per_state":20.0}},
              "phases":{{"explore_secs":1.0}}}}]}}"#,
            5000.0 * overhead
        )
    }

    #[test]
    fn engine_overhead_floor_gates_the_one_thread_ratio() {
        let old = bench_doc_with_overhead(0.60);
        let opts = DiffOptions {
            counts_only: true,
            min_engine_overhead: Some(0.50),
            ..DiffOptions::default()
        };
        // At or above the floor: clean, even though counts_only skips
        // every other timing gate.
        let good = bench_doc_with_overhead(0.55);
        assert!(diff_strs(&old, &good, &opts).unwrap().ok());
        // Below the floor: regression, despite counts_only.
        let bad = bench_doc_with_overhead(0.45);
        let rep = diff_strs(&old, &bad, &opts).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("engine_overhead")), "{rep:?}");
        // A report without a 1-thread sample notes the absence instead
        // of failing (old reports predate the field).
        let legacy = bench_doc(100, 5000.0, 20.0, 1.0);
        let rep = diff_strs(&old, &legacy, &opts).unwrap();
        assert!(rep.ok(), "{:?}", rep.regressions);
        assert!(rep.notes.iter().any(|n| n.contains("engine_overhead")), "{rep:?}");
        // Without the flag the ratio is not gated at all.
        let lax = DiffOptions { counts_only: true, ..DiffOptions::default() };
        assert!(diff_strs(&old, &bad, &lax).unwrap().ok());
    }

    #[test]
    fn every_violation_reports_workload_values_and_delta() {
        let old = bench_doc(100, 5000.0, 20.0, 1.0);
        // Drifted counts, slower throughput (serial and 4-thread), fatter
        // store, slower phase — every violation class at once.
        let bad = bench_doc(101, 4000.0, 25.0, 1.5);
        let rep = diff_strs(&old, &bad, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.len() >= 5, "{rep:?}");
        for r in &rep.regressions {
            assert!(r.contains("w1:"), "missing workload name: {r}");
            assert!(r.contains("->"), "missing old -> new values: {r}");
            assert!(r.contains('%'), "missing relative delta: {r}");
        }
    }

    #[test]
    fn snapshot_deterministic_drift_fails_and_nondet_is_skipped() {
        let reg = ccr_metrics::Registry::new();
        reg.counter("mc_states_total", "states").add(10);
        reg.counter_nondet("mc_batches_flushed_total", "batches").add(3);
        let old = reg.snapshot().to_json();
        reg.counter("mc_states_total", "states").add(1);
        let drifted = reg.snapshot().to_json();
        let rep = diff_strs(&old, &old, &DiffOptions::default()).unwrap();
        assert!(rep.ok());
        let rep = diff_strs(&old, &drifted, &DiffOptions::default()).unwrap();
        assert!(rep.regressions.iter().any(|r| r.contains("mc_states_total")), "{rep:?}");
        // The nondet counter may drift freely.
        reg.counter_nondet("mc_batches_flushed_total", "batches").add(99);
        let nondet_only = {
            let reg2 = ccr_metrics::Registry::new();
            reg2.counter("mc_states_total", "states").add(11);
            reg2.counter_nondet("mc_batches_flushed_total", "batches").add(500);
            reg2.snapshot().to_json()
        };
        let rep = diff_strs(&drifted, &nondet_only, &DiffOptions::default()).unwrap();
        assert!(rep.ok(), "{:?}", rep.regressions);
    }

    #[test]
    fn mismatched_kinds_and_garbage_error() {
        let bench = bench_doc(1, 1.0, 1.0, 1.0);
        let snap = ccr_metrics::Registry::new().snapshot().to_json();
        assert!(diff_strs(&bench, &snap, &DiffOptions::default()).is_err());
        assert!(diff_strs("not json", &snap, &DiffOptions::default()).is_err());
        assert!(diff_strs("{}", "{}", &DiffOptions::default()).is_err());
    }
}
