//! Shared experiment configurations, so the binaries, the Criterion
//! benches and EXPERIMENTS.md all describe the same runs.

use ccr_mc::search::Budget;
use std::time::Duration;

/// The Table 3 memory/time budget, standing in for the paper's 64 MB SPIN
/// limit. A run that exhausts any bound reports `Unfinished`.
pub fn table3_budget() -> Budget {
    Budget { max_states: 1_500_000, max_bytes: 64 << 20, max_time: Some(Duration::from_secs(60)) }
}

/// Remote counts for the migratory rows of Table 3 (the paper's 2/4/8).
pub const MIGRATORY_NS: [u32; 3] = [2, 4, 8];

/// Remote counts for the invalidate rows. The paper used 2/4/6; our
/// reconstruction gives each remote an independent read-vs-write decision,
/// so equal qualitative behaviour (asynchronous blow-up past the budget)
/// occurs at smaller N — we report 2/3/4 and document the shift.
pub const INVALIDATE_NS: [u32; 3] = [2, 3, 4];

/// Data domain used for the checking runs (writes count modulo this).
pub const DATA_DOMAIN: i64 = 2;

/// The §5 scaling experiment: rendezvous migratory up to 64 nodes.
pub const SCALING_NS: [u32; 7] = [2, 4, 8, 16, 24, 32, 64];

/// DSM workload length for message-efficiency runs.
pub const MESSAGE_RUN_STEPS: u64 = 200_000;

/// Buffer sizes for the §6 sweep.
pub const BUFFER_KS: [usize; 4] = [2, 3, 4, 8];
