//! # ccr-bench — benchmark harness regenerating the paper's evaluation
//!
//! Report binaries (run with `cargo run --release -p ccr-bench --bin <name>`):
//!
//! * `table3`  — Table 3: reachability cost of rendezvous vs asynchronous
//!   protocols (migratory and invalidate) under a memory budget.
//! * `scaling` — the §5 claim that the rendezvous migratory protocol checks
//!   out to 64 nodes in a few tens of MB.
//! * `messages` — §3.3/§5 message efficiency: derived (optimized) vs
//!   derived (no request/reply optimization) vs the hand-written baseline.
//! * `buffers` — §6 buffer-size sweep: nack rate, fairness, starvation.
//! * `calib`   — raw state-space calibration (development aid).
//! * `mc_perf` — parallel-checker throughput: states/sec serial vs 2/4/8
//!   threads and store bytes per state, written to `BENCH_mc.json`.
//! * `gen_specs` — regenerates the textual `.ccp` specs under `specs/`
//!   from the protocol constructors (kept in sync by `tests/shipped_specs.rs`).
//!
//! The reachability binaries (`table3`, `scaling`, `mc_perf`) take
//! `--threads N` to route exploration through the sharded parallel
//! engine; see [`cli`] for the shared flag parsing.
//!
//! Criterion benches (`cargo bench -p ccr-bench`): `table3`, `refinement`,
//! `simulation`.

pub mod cli;
pub mod configs;
pub mod diff;
