//! The §6 buffer/fairness study.
//!
//! §2.5 and §6 of the paper: a 2-slot home buffer suffices for *weak*
//! fairness (some remote always progresses) but admits per-remote
//! starvation; growing the buffer towards `n` removes nacks and starvation.
//! We sweep the home buffer size under (a) a fair random scheduler and (b)
//! an adversarial scheduler that deprioritizes one victim remote, and
//! report nack rates, Jain fairness and starvation counts.
//!
//! Run: `cargo run --release -p ccr-bench --bin buffers`
//!
//! Pass `--trace <file>` to narrate every run to `<file>` as JSONL trace
//! events (one run after another, each ending with an `Outcome` line).
//! Pass `--seed <N>` to shift the workload and scheduler seeds by `N`
//! (default 0, reproducing the canonical run).

use ccr_bench::cli::{seed_from_args, sink_from_args};
use ccr_bench::configs;
use ccr_core::ids::RemoteId;
use ccr_dsm::machine::{Machine, MachineConfig};
use ccr_dsm::workload::Migrating;
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::AsyncConfig;
use ccr_runtime::sched::{BiasedSched, RandomSched, Scheduler};

fn main() {
    let mut sink = sink_from_args();
    let seed = seed_from_args();
    let n = 6u32;
    let refined = migratory_refined(&MigratoryOptions::default());
    println!("Migratory, n={n}, {} steps, home buffer k swept (§6):", configs::MESSAGE_RUN_STEPS);
    println!();
    for (sched_name, adversarial) in [("random", false), ("biased-vs-r0", true)] {
        println!("scheduler: {sched_name}");
        println!(
            "| {:>2} | {:>7} | {:>8} | {:>7} | {:>9} | {:>8} | {:>7} |",
            "k", "ops", "messages", "nacks", "nack-rate", "fairness", "starved"
        );
        println!(
            "|{:-<4}|{:-<9}|{:-<10}|{:-<9}|{:-<11}|{:-<10}|{:-<9}|",
            "", "", "", "", "", "", ""
        );
        for k in configs::BUFFER_KS {
            let mut config = MachineConfig::standard(&refined, n, configs::MESSAGE_RUN_STEPS);
            config.asynch = AsyncConfig::with_home_buffer(k);
            let machine = Machine::new(&refined, config);
            let mut wl = Migrating::new(77 + seed, 0.8, 0.5);
            let mut sched: Box<dyn Scheduler> = if adversarial {
                Box::new(BiasedSched::new(vec![RemoteId(0)], 88 + seed))
            } else {
                Box::new(RandomSched::new(88 + seed))
            };
            let report =
                machine.run_observed("derived", &mut wl, sched.as_mut(), &mut *sink).expect("run");
            let nack_rate = if report.messages == 0 {
                0.0
            } else {
                report.nacks as f64 / report.messages as f64
            };
            println!(
                "| {:>2} | {:>7} | {:>8} | {:>7} | {:>9.4} | {:>8} | {:>7} |",
                k,
                report.ops,
                report.messages,
                report.nacks,
                nack_rate,
                report.fairness.map(|f| format!("{f:.3}")).unwrap_or_else(|| "-".into()),
                report.starved
            );
        }
        println!();
    }
    println!("Expected shape (§6): global progress (ops > 0) at every k >= 2; nacks");
    println!("shrink as k grows; the adversarial schedule cannot deadlock the system");
    println!("(weak fairness holds by construction) even at k=2.");
}
