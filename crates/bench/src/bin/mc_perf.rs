//! Parallel model-checker throughput: the perf trajectory behind the
//! sharded engine (`ccr_mc::explore_parallel`).
//!
//! Measures states/sec of the serial BFS against the parallel engine at
//! 1, 2, 4, and 8 threads on the async state spaces the paper's Table 3
//! exercises (the 1-thread row isolates the sharded engine's overhead
//! from actual parallelism), plus visited-set bytes per state for the
//! arena-backed store against an estimate of the previous
//! `HashMap<Vec<u8>, u32>` layout. Results go to `BENCH_mc.json`
//! (override with `--out <file>`) so future changes have a baseline to
//! regress against.
//!
//! The JSON records `host_parallelism`; on a single-core host (CI
//! containers included) parallel speedup is physically impossible and
//! the speedup columns measure pure engine overhead, so read them
//! against that field.
//!
//! Each workload also records per-phase wall times (`phases`): the
//! encode microbench, the serial exploration, and one forward-progress
//! check — the axes `ccr bench diff` gates independently. `--workload
//! <name>` restricts the run to a single workload (the CI perf gate uses
//! the headline space only).
//!
//! Each workload further records the flight-recorder cost (`sampler`):
//! a serial exploration with the `--timeline` sampler attached at 50 ms
//! against an identically observed run with the recorder disabled. The
//! `overhead_share` pins the "<2% sampling overhead" claim and is gated
//! absolutely by `ccr bench diff` (skipped under `--counts-only`).
//!
//! Each workload additionally runs one *profiled* serial and one
//! profiled 1-thread parallel repetition (the timed best-of samples stay
//! unprofiled) and records the span `attribution`: how much of the
//! 1-thread-vs-serial gap the engine's ship/drain/barrier-wait spans
//! account for (`overhead_explained`). Attribution is timing-based and
//! not gated by `ccr bench diff`. `--profile <path>` writes the headline
//! workload's 1-thread folded stacks for flamegraph tooling.
//!
//! Run: `cargo run --release -p ccr-bench --bin mc_perf`
//!
//! The headline workload is the asynchronous migratory protocol at
//! n=3 (data domain widened and home buffer k=3 so the space is large
//! enough that thread startup and level barriers are noise); each
//! configuration is run `REPEATS` times and the fastest run is kept.
//! `migratory_async_n3_sym` re-runs the headline space under the
//! symmetry reduction (`ccr_mc::Reduced`): its `states` value is the
//! orbit count, so the gate also pins the reduction factor.
//! `migratory_async_n3_spill` re-runs it through the persistence layer
//! with a deliberately tiny in-memory budget (`docs/persistence.md`):
//! the gated counts pin "spilling does not change the answer", and its
//! `spill` submap records the (ungated) spill/recovery overhead.

use ccr_bench::configs;
use ccr_mc::parallel::explore_parallel_observed;
use ccr_mc::progress::check_progress_default;
use ccr_mc::search::{
    explore_observed, explore_observed_persist, explore_plain, report_from_manifest, Budget,
    PersistOpts, SearchObserver, SerialPersist, SerialPersistOpen,
};
use ccr_mc::{explore_parallel, CrashSwitch, ExploreReport, ParallelConfig, Reduced};
use ccr_metrics::profile::{ProfileAgg, Profiler, SpanKind};
use ccr_metrics::timeseries::{Recorder, Timeline};
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::TransitionSystem;
use ccr_trace::NullSink;
use serde::{MapSer, Serializer};
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Fastest-of-N repetitions, to strip scheduler noise from the ratios.
const REPEATS: usize = 3;
/// Thread counts measured against the serial engine.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// States in the encode-phase sample (breadth-first from the initial
/// state) and passes per timed repetition of that microbench.
const ENCODE_SAMPLE: usize = 10_000;
const ENCODE_PASSES: usize = 20;

/// One measured engine configuration (serial or a thread count).
struct Sample {
    threads: usize,
    report: ExploreReport,
}

impl Sample {
    fn states_per_sec(&self) -> f64 {
        self.report.states as f64 / self.report.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Best-of-`REPEATS` serial run.
fn measure_serial<T>(sys: &T, budget: &Budget) -> Sample
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let report = (0..REPEATS)
        .map(|_| explore_plain(sys, budget))
        .min_by_key(|r| r.elapsed)
        .expect("at least one repeat");
    Sample { threads: 1, report }
}

/// Best-of-`REPEATS` parallel run at `threads` workers.
fn measure_parallel<T>(sys: &T, budget: &Budget, threads: usize) -> Sample
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let cfg = ParallelConfig::threads(threads);
    let report = (0..REPEATS)
        .map(|_| explore_parallel(sys, budget, |_| None, false, &cfg).explore_report())
        .min_by_key(|r| r.elapsed)
        .expect("at least one repeat");
    Sample { threads, report }
}

/// Span attribution of one profiled serial run and one profiled
/// 1-thread parallel run: where the sharded engine's 1-thread overhead
/// over the serial BFS actually goes (shipping batches, draining
/// inboxes, waiting at level barriers).
struct Attribution {
    serial_agg: ProfileAgg,
    serial_profiled_secs: f64,
    par1_agg: ProfileAgg,
    par1_profiled_secs: f64,
    /// Folded stacks of the profiled 1-thread parallel run, for
    /// `--profile <path>`.
    par1_folded: String,
}

impl Attribution {
    /// Seconds the 1-thread parallel worker spent in ship + drain +
    /// barrier-wait spans — the engine's coordination machinery.
    fn sync_overhead_secs(&self) -> f64 {
        [SpanKind::Ship, SpanKind::Drain, SpanKind::BarrierWait]
            .iter()
            .map(|k| self.par1_agg.kind(*k).secs())
            .sum()
    }
}

/// Profiled serial and 1-thread parallel runs, best-of-[`REPEATS`] like
/// the unprofiled timed samples (so profiled-vs-unprofiled deltas
/// measure profiling overhead, not first-run noise). A fresh profiler
/// per repetition; the fastest repetition's aggregate is kept.
fn measure_attribution<T>(sys: &T, budget: &Budget) -> Attribution
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let best_of = |parallel: bool| -> (f64, Profiler) {
        (0..REPEATS)
            .map(|_| {
                let mut null = NullSink;
                let prof = Profiler::new();
                let t = Instant::now();
                {
                    let mut obs = SearchObserver::new(&mut null).with_profiler(prof.clone());
                    if parallel {
                        explore_parallel_observed(
                            sys,
                            budget,
                            |_| None,
                            false,
                            &ParallelConfig::threads(1),
                            &mut obs,
                        );
                    } else {
                        explore_observed(sys, budget, |_| None, false, &mut obs);
                    }
                }
                (t.elapsed().as_secs_f64(), prof)
            })
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("at least one repeat")
    };
    let (serial_profiled_secs, serial_prof) = best_of(false);
    let (par1_profiled_secs, par1_prof) = best_of(true);
    Attribution {
        serial_agg: serial_prof.aggregate(),
        serial_profiled_secs,
        par1_agg: par1_prof.aggregate(),
        par1_profiled_secs,
        par1_folded: par1_prof.folded(),
    }
}

/// Serializes one span-kind breakdown (`{kind: {secs, count, share}}`).
fn spans_entry(m: &mut MapSer<'_>, key: &str, agg: &ProfileAgg) {
    let totals = agg.totals();
    let grand: u64 = totals.iter().map(|t| t.nanos).sum();
    m.entry_with(key, |ser| {
        let mut e = ser.begin_map();
        for (i, kind) in SpanKind::ALL.iter().enumerate() {
            if totals[i].nanos == 0 && totals[i].count == 0 {
                continue;
            }
            e.entry_with(kind.name(), |ser| {
                let mut cell = ser.begin_map();
                cell.entry("secs", &totals[i].secs());
                cell.entry("count", &totals[i].count);
                cell.entry(
                    "share",
                    &if grand == 0 { 0.0 } else { totals[i].nanos as f64 / grand as f64 },
                );
                cell.end();
            });
        }
        e.end();
    });
}

/// Sampling interval of the sampler-overhead measurement: aggressive
/// enough (20 Hz) that a sub-second workload still takes several
/// samples, so the measured share bounds any realistic cadence from
/// above.
const SAMPLER_INTERVAL_MS: u64 = 50;

/// Flight-recorder cost: a serial exploration with the timeline sampler
/// attached, against an identically observed run with the recorder
/// disabled. Both sides best-of-[`REPEATS`], so the share compares two
/// fastest runs of the same code path and isolates the sampler itself.
struct SamplerCost {
    off_secs: f64,
    on_secs: f64,
    samples: u64,
}

impl SamplerCost {
    /// Fraction of wall time the sampler adds (clamped at zero: on a
    /// quiet host the sampled best-of can win the coin flip).
    fn overhead_share(&self) -> f64 {
        (self.on_secs - self.off_secs).max(0.0) / self.off_secs.max(1e-9)
    }
}

fn measure_sampler<T>(name: &str, sys: &T, budget: &Budget) -> SamplerCost
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let dir = std::env::temp_dir().join(format!("ccr-mc-perf-sampler-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create sampler dir");
    let timed_run = |recorder: Recorder| -> (f64, ExploreReport) {
        let mut null = NullSink;
        let t = Instant::now();
        let report = {
            let mut obs = SearchObserver::new(&mut null)
                .with_interval(Duration::from_millis(SAMPLER_INTERVAL_MS))
                .with_timeline(recorder);
            explore_observed(sys, budget, |_| None, false, &mut obs)
        };
        (t.elapsed().as_secs_f64(), report)
    };
    let off_secs = (0..REPEATS)
        .map(|_| timed_run(Recorder::disabled()).0)
        .min_by(f64::total_cmp)
        .expect("at least one repeat");
    let mut best: Option<(f64, PathBuf)> = None;
    for rep in 0..REPEATS {
        let path = dir.join(format!("{name}-rep{rep}.jsonl"));
        let recorder =
            Recorder::create(&path, name, SAMPLER_INTERVAL_MS, 5).expect("create sampler timeline");
        let (secs, report) = timed_run(recorder.clone());
        recorder.finish(report.outcome.name(), report.states as u64, report.transitions as u64);
        assert!(recorder.take_error().is_none(), "{name}: sampler write failed");
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, path));
        }
    }
    let (on_secs, best_path) = best.expect("at least one repeat");
    // Dogfood the parser: the sample count comes from reading the best
    // repetition's timeline back, not from a side channel.
    let timeline = Timeline::read(&best_path).expect("read sampler timeline");
    timeline.validate().expect("sampler timeline validates");
    let samples = timeline.points.len() as u64;
    let _ = std::fs::remove_dir_all(&dir);
    SamplerCost { off_secs, on_secs, samples }
}

/// Bytes per state of the retired `HashMap<Vec<u8>, u32>` visited set,
/// from its layout: the encoded key on its own heap allocation, a
/// 24-byte `Vec` header plus the 4-byte index (padded to 32 bytes per
/// bucket), and the table's power-of-two slack (~1.5x buckets per entry
/// at the default 87% max load) with one control byte per bucket.
fn hashmap_bytes_per_state_estimate(encoded_len: usize) -> f64 {
    encoded_len as f64 + 1.5 * 33.0
}

/// Per-phase wall times of one workload, separating the cost of state
/// encoding from the exploration proper and from the progress check —
/// `ccr bench diff` gates each phase independently.
struct Phases {
    /// Best-of-[`REPEATS`] time of [`ENCODE_PASSES`] encode passes over
    /// an [`ENCODE_SAMPLE`]-state breadth-first sample.
    encode_secs: f64,
    /// Serial exploration wall time (the best repetition).
    explore_secs: f64,
    /// One serial forward-progress check (exploration + CSR + backward
    /// propagation).
    progress_secs: f64,
}

/// Breadth-first sample of up to `cap` distinct states, for phase
/// microbenches that need real states without a full exploration.
fn collect_sample<T: TransitionSystem>(sys: &T, cap: usize) -> Vec<T::State> {
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut queue = VecDeque::new();
    let mut out = Vec::new();
    let mut succs = Vec::new();
    let mut enc = Vec::new();
    let init = sys.initial();
    sys.encode(&init, &mut enc);
    seen.insert(enc.clone());
    queue.push_back(init.clone());
    out.push(init);
    'bfs: while let Some(state) = queue.pop_front() {
        succs.clear();
        if sys.successors(&state, &mut succs).is_err() {
            continue;
        }
        for (_, next) in succs.drain(..) {
            sys.encode(&next, &mut enc);
            if seen.insert(enc.clone()) {
                out.push(next.clone());
                queue.push_back(next);
                if out.len() >= cap {
                    break 'bfs;
                }
            }
        }
    }
    out
}

fn measure_phases<T>(sys: &T, serial: &Sample, budget: &Budget) -> Phases
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let sample = collect_sample(sys, ENCODE_SAMPLE);
    let mut enc = Vec::new();
    let encode_secs = (0..REPEATS)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..ENCODE_PASSES {
                for state in &sample {
                    sys.encode(state, &mut enc);
                }
            }
            t.elapsed().as_secs_f64()
        })
        .min_by(f64::total_cmp)
        .expect("at least one repeat");
    let t = Instant::now();
    let progress = check_progress_default(sys, budget);
    let progress_secs = t.elapsed().as_secs_f64();
    assert!(progress.complete, "progress phase must fit the budget");
    Phases { encode_secs, explore_secs: serial.report.elapsed.as_secs_f64(), progress_secs }
}

struct Workload {
    name: &'static str,
    description: &'static str,
    serial: Sample,
    parallel: Vec<Sample>,
    encoded_len: usize,
    phases: Phases,
    attribution: Attribution,
    sampler: SamplerCost,
}

fn run_workload<T>(name: &'static str, description: &'static str, sys: &T) -> Workload
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let budget = Budget::states(3_000_000);
    let serial = measure_serial(sys, &budget);
    assert!(
        serial.report.outcome.is_complete(),
        "{name}: workload must fit the budget, got {:?}",
        serial.report.outcome
    );
    let parallel: Vec<Sample> =
        THREADS.iter().map(|&t| measure_parallel(sys, &budget, t)).collect();
    for p in &parallel {
        assert_eq!(p.report.states, serial.report.states, "{name}: parallel states diverged");
        assert_eq!(
            p.report.transitions, serial.report.transitions,
            "{name}: parallel transitions diverged"
        );
    }
    let phases = measure_phases(sys, &serial, &budget);
    let attribution = measure_attribution(sys, &budget);
    let sampler = measure_sampler(name, sys, &budget);
    eprintln!(
        "{name}: sampler off {:.3}s, on {:.3}s ({:+.2}%, {} samples)",
        sampler.off_secs,
        sampler.on_secs,
        sampler.overhead_share() * 100.0,
        sampler.samples,
    );
    let mut enc = Vec::new();
    sys.encode(&sys.initial(), &mut enc);
    let gap = attribution.par1_profiled_secs - attribution.serial_profiled_secs;
    let delta = |kind: SpanKind| {
        attribution.par1_agg.kind(kind).secs() - attribution.serial_agg.kind(kind).secs()
    };
    eprintln!(
        "{name}: 1t gap {:.3}s — compute {:+.3}s, encode {:+.3}s, insert {:+.3}s, \
         ship+drain+barrier {:.3}s",
        gap,
        delta(SpanKind::Compute),
        delta(SpanKind::Encode),
        delta(SpanKind::Insert),
        attribution.sync_overhead_secs(),
    );
    eprintln!(
        "{name}: {} states; serial {:.0}/s; {}",
        serial.report.states,
        serial.states_per_sec(),
        parallel
            .iter()
            .map(|p| format!(
                "{}t {:.0}/s ({:.2}x)",
                p.threads,
                p.states_per_sec(),
                p.states_per_sec() / serial.states_per_sec()
            ))
            .collect::<Vec<_>>()
            .join("; ")
    );
    Workload {
        name,
        description,
        serial,
        parallel,
        encoded_len: enc.len(),
        phases,
        attribution,
        sampler,
    }
}

/// In-memory byte budget of the spill workload: far below the headline
/// space's ~2 MB of encoded states, so the arena evicts almost every
/// payload to the on-disk log and interior dedup re-reads hit disk.
const SPILL_EVICT_BYTES: usize = 64 * 1024;
/// Checkpoint cadence of the spill workload. Frequent enough that a
/// sub-second run commits several manifests, without syncing per
/// expansion.
const SPILL_CHECKPOINT_MS: u64 = 10;

/// The headline space explored through the persistence layer
/// (`docs/persistence.md`) under [`SPILL_EVICT_BYTES`]. The
/// `states`/`transitions` counts are gated exactly by `ccr bench diff`
/// — spilling must not change the answer — while the `spill` submap
/// records the overhead axes (wall-time ratio against the in-memory
/// serial engine, committed log bytes, finished-checkpoint restore
/// time), which are timing-based and not gated.
struct SpillWorkload {
    name: &'static str,
    description: &'static str,
    report: ExploreReport,
    encoded_len: usize,
    in_memory_secs: f64,
    spill_secs: f64,
    log_bytes: u64,
    restore_secs: f64,
}

fn run_spill_workload<T>(name: &'static str, description: &'static str, sys: &T) -> SpillWorkload
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    let budget = Budget::states(3_000_000);
    let in_memory = measure_serial(sys, &budget);
    let dir = std::env::temp_dir().join(format!("ccr-mc-perf-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = |resume: bool| PersistOpts {
        interval: Duration::from_millis(SPILL_CHECKPOINT_MS),
        evict_at: SPILL_EVICT_BYTES,
        resume,
        crash: CrashSwitch::after(None),
    };
    // Best-of-[`REPEATS`] persisted runs, each into a fresh directory
    // (reusing one would turn later repetitions into resumes).
    let mut best: Option<(f64, PathBuf, ExploreReport)> = None;
    for rep in 0..REPEATS {
        let root = dir.join(format!("rep{rep}"));
        std::fs::create_dir_all(&root).expect("create spill dir");
        let t = Instant::now();
        let report = {
            let SerialPersistOpen::Run(mut p) =
                SerialPersist::open(&root, &opts(false)).expect("open spill store")
            else {
                panic!("{name}: a fresh spill dir cannot hold a finished run");
            };
            let mut null = NullSink;
            let mut obs = SearchObserver::new(&mut null);
            explore_observed_persist(sys, &budget, |_| None, false, &mut obs, &mut p)
        };
        let secs = t.elapsed().as_secs_f64();
        assert!(
            report.outcome.is_complete(),
            "{name}: spill run must finish, got {:?}",
            report.outcome
        );
        assert_eq!(report.states, in_memory.report.states, "{name}: spill states diverged");
        assert_eq!(
            report.transitions, in_memory.report.transitions,
            "{name}: spill transitions diverged"
        );
        if best.as_ref().is_none_or(|(b, _, _)| secs < *b) {
            best = Some((secs, root, report));
        }
    }
    let (spill_secs, best_root, report) = best.expect("at least one repeat");
    let log_bytes = std::fs::metadata(best_root.join("log")).expect("spill log exists").len();
    // Restoring the finished checkpoint replays no search: it reads the
    // terminal manifest back into a report.
    let t = Instant::now();
    let SerialPersistOpen::Finished(manifest) =
        SerialPersist::open(&best_root, &opts(true)).expect("reopen finished spill store")
    else {
        panic!("{name}: a finished run must restore from its manifest");
    };
    let restore_secs = t.elapsed().as_secs_f64();
    let restored = report_from_manifest(&manifest);
    assert_eq!(restored.states, report.states, "{name}: restored states diverged");
    assert_eq!(restored.transitions, report.transitions, "{name}: restored transitions diverged");
    let _ = std::fs::remove_dir_all(&dir);
    let mut enc = Vec::new();
    sys.encode(&sys.initial(), &mut enc);
    let in_memory_secs = in_memory.report.elapsed.as_secs_f64();
    eprintln!(
        "{name}: {} states; in-memory {:.3}s, spilled {:.3}s ({:.2}x), \
         log {} KiB, restore {:.4}s",
        report.states,
        in_memory_secs,
        spill_secs,
        spill_secs / in_memory_secs.max(1e-9),
        log_bytes / 1024,
        restore_secs,
    );
    SpillWorkload {
        name,
        description,
        report,
        encoded_len: enc.len(),
        in_memory_secs,
        spill_secs,
        log_bytes,
        restore_secs,
    }
}

fn out_path() -> String {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--out") {
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--out requires a file argument");
            std::process::exit(2);
        }),
        None => "BENCH_mc.json".to_string(),
    }
}

/// `--profile <path>` writes the folded stacks of the headline
/// workload's profiled 1-thread parallel run (flamegraph-ready).
fn profile_path() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--profile").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--profile requires a file argument");
            std::process::exit(2);
        })
    })
}

/// `--workload <name>` restricts the run to one workload — the CI perf
/// gate measures only the headline space to stay inside its time box.
fn workload_filter() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--workload").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--workload requires a workload name");
            std::process::exit(2);
        })
    })
}

fn main() {
    let out = out_path();
    let host = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    // The headline space: async migratory at n=3, widened (data domain 4,
    // home buffer 3) so it is large enough to time. The n=4 row keeps the
    // Table 3 checking configuration, and async invalidate n=3 is the
    // largest space that completes, dominating visited-set pressure.
    let mig_wide = migratory_refined(&MigratoryOptions::checking_with_data(4));
    let mig_n3 = AsyncSystem::new(&mig_wide, 3, AsyncConfig::with_home_buffer(3));
    let mig_std = migratory_refined(&MigratoryOptions::checking_with_data(configs::DATA_DOMAIN));
    let mig_n4 = AsyncSystem::new(&mig_std, 4, AsyncConfig::default());
    let inv = invalidate_refined(&InvalidateOptions { data_domain: Some(configs::DATA_DOMAIN) });
    let inv_n3 = AsyncSystem::new(&inv, 3, AsyncConfig::default());

    let defs: [(&'static str, &'static str, &AsyncSystem<'_>); 3] = [
        ("migratory_async_n3", "async migratory, n=3, data domain 4, home buffer k=3", &mig_n3),
        ("migratory_async_n4", "async migratory, n=4, Table 3 checking configuration", &mig_n4),
        ("invalidate_async_n3", "async invalidate, n=3, Table 3 checking configuration", &inv_n3),
    ];
    let filter = workload_filter();
    let mut workloads: Vec<Workload> = defs
        .iter()
        .filter(|(name, _, _)| filter.as_deref().is_none_or(|f| f == *name))
        .map(|(name, description, sys)| run_workload(name, description, *sys))
        .collect();
    // The headline space again, explored modulo remote symmetry. Its
    // `states` count is the orbit count, so the gate pins the reduction
    // factor: states(migratory_async_n3) / states(migratory_async_n3_sym)
    // must not drift.
    let sym_name = "migratory_async_n3_sym";
    if filter.as_deref().is_none_or(|f| f == sym_name) {
        let red_n3 = Reduced::new(&mig_n3);
        workloads.push(run_workload(
            sym_name,
            "headline space under symmetry reduction (states are orbit counts)",
            &red_n3,
        ));
    }
    // The headline space once more, through the persistence layer with
    // a deliberately tiny in-memory budget: the counts pin "spilling
    // does not change the answer", the `spill` submap records the
    // overhead.
    let spill_name = "migratory_async_n3_spill";
    let spill = filter.as_deref().is_none_or(|f| f == spill_name).then(|| {
        run_spill_workload(
            spill_name,
            "headline space through the persistence layer, 64 KiB in-memory budget",
            &mig_n3,
        )
    });
    if workloads.is_empty() && spill.is_none() {
        eprintln!(
            "no workload named {:?}; known: {}, {sym_name}, {spill_name}",
            filter.unwrap_or_default(),
            defs.map(|(n, _, _)| n).join(", ")
        );
        std::process::exit(2);
    }

    let mut s = Serializer::new();
    {
        let mut m = s.begin_map();
        m.entry("bench", "mc_perf");
        m.entry("host_parallelism", &host);
        if host == 1 {
            m.entry(
                "note",
                "single-core host: no parallel speedup is physically possible; \
                 the 1-thread engine_overhead ratio is the meaningful column, \
                 multi-thread speedups only measure contention",
            );
        }
        m.entry("repeats_best_of", &REPEATS);
        m.entry_with("workloads", |ser| {
            let mut seq = ser.begin_seq();
            for w in &workloads {
                seq.elem_with(|ser| {
                    let mut row = ser.begin_map();
                    row.entry("name", w.name);
                    row.entry("description", w.description);
                    row.entry("states", &w.serial.report.states);
                    row.entry("transitions", &w.serial.report.transitions);
                    row.entry("encoded_len_bytes", &w.encoded_len);
                    row.entry_with("serial", |ser| {
                        let mut e = ser.begin_map();
                        e.entry("secs", &w.serial.report.elapsed.as_secs_f64());
                        e.entry("states_per_sec", &w.serial.states_per_sec());
                        e.end();
                    });
                    row.entry_with("parallel", |ser| {
                        let mut ps = ser.begin_seq();
                        for p in &w.parallel {
                            ps.elem_with(|ser| {
                                let mut e = ser.begin_map();
                                e.entry("threads", &p.threads);
                                e.entry("secs", &p.report.elapsed.as_secs_f64());
                                e.entry("states_per_sec", &p.states_per_sec());
                                let ratio = p.states_per_sec() / w.serial.states_per_sec();
                                if p.threads == 1 {
                                    // At one thread the ratio measures the
                                    // parallel engine's fixed overhead over
                                    // the serial engine — not scaling — so
                                    // name it what it is, and let the gate
                                    // (`ccr bench diff --min-engine-overhead`)
                                    // assert it directly.
                                    e.entry("engine_overhead", &ratio);
                                } else {
                                    e.entry("speedup", &ratio);
                                }
                                e.end();
                            });
                        }
                        ps.end();
                    });
                    row.entry_with("store", |ser| {
                        let mut e = ser.begin_map();
                        e.entry(
                            "arena_bytes_per_state",
                            &(w.serial.report.store_bytes as f64 / w.serial.report.states as f64),
                        );
                        e.entry(
                            "hashmap_bytes_per_state_estimate",
                            &hashmap_bytes_per_state_estimate(w.encoded_len),
                        );
                        e.end();
                    });
                    row.entry_with("phases", |ser| {
                        let mut e = ser.begin_map();
                        e.entry("encode_secs", &w.phases.encode_secs);
                        e.entry("explore_secs", &w.phases.explore_secs);
                        e.entry("progress_secs", &w.phases.progress_secs);
                        e.end();
                    });
                    // Flight-recorder cost: `ccr bench diff` gates
                    // `overhead_share` (the <2% claim) unless running
                    // `--counts-only`.
                    row.entry_with("sampler", |ser| {
                        let mut e = ser.begin_map();
                        e.entry("interval_ms", &SAMPLER_INTERVAL_MS);
                        e.entry("off_secs", &w.sampler.off_secs);
                        e.entry("on_secs", &w.sampler.on_secs);
                        e.entry("overhead_share", &w.sampler.overhead_share());
                        e.entry("samples", &w.sampler.samples);
                        e.end();
                    });
                    // Span attribution: where the sharded engine's
                    // 1-thread overhead over the serial BFS goes.
                    // Timing-based — `ccr bench diff` does not gate it.
                    row.entry_with("attribution", |ser| {
                        let a = &w.attribution;
                        let mut e = ser.begin_map();
                        e.entry("serial_profiled_secs", &a.serial_profiled_secs);
                        e.entry("parallel_1t_profiled_secs", &a.par1_profiled_secs);
                        spans_entry(&mut e, "serial_spans", &a.serial_agg);
                        spans_entry(&mut e, "parallel_1t_spans", &a.par1_agg);
                        let sync = a.sync_overhead_secs();
                        e.entry("sync_overhead_secs", &sync);
                        let par1_total = a.par1_agg.total_nanos() as f64 / 1e9;
                        e.entry(
                            "sync_overhead_share",
                            &if par1_total > 0.0 { sync / par1_total } else { 0.0 },
                        );
                        // The 1-thread-vs-serial gap (profiled best-of
                        // timings, so both sides carry the same probe
                        // cost), decomposed span by span: at one worker
                        // every successor routes to the local shard, so
                        // the gap sits in the sharded compute/encode
                        // paths rather than in shipping proper. The
                        // per-span deltas sum to ~the gap — the full
                        // answer to "where does the 1-thread overhead
                        // go".
                        let gap = a.par1_profiled_secs - a.serial_profiled_secs;
                        e.entry("gap_secs", &gap);
                        e.entry_with("gap_attribution", |ser| {
                            let mut g = ser.begin_map();
                            for kind in SpanKind::ALL {
                                let delta =
                                    a.par1_agg.kind(kind).secs() - a.serial_agg.kind(kind).secs();
                                if delta.abs() > 1e-9 {
                                    g.entry(
                                        kind.name(),
                                        &if gap > 0.0 { delta / gap } else { 0.0 },
                                    );
                                }
                            }
                            g.end();
                        });
                        // Share of the gap in engine-coordination spans
                        // alone (ship + drain + barrier-wait).
                        e.entry("overhead_explained", &if gap > 0.0 { sync / gap } else { 0.0 });
                        e.end();
                    });
                    row.end();
                });
            }
            if let Some(sw) = &spill {
                seq.elem_with(|ser| {
                    let mut row = ser.begin_map();
                    row.entry("name", sw.name);
                    row.entry("description", sw.description);
                    row.entry("states", &sw.report.states);
                    row.entry("transitions", &sw.report.transitions);
                    row.entry("encoded_len_bytes", &sw.encoded_len);
                    // Spill/recovery overhead: wall-clock timings, not
                    // gated by `ccr bench diff` (the counts above are).
                    row.entry_with("spill", |ser| {
                        let mut e = ser.begin_map();
                        e.entry("evict_bytes", &SPILL_EVICT_BYTES);
                        e.entry("checkpoint_interval_ms", &SPILL_CHECKPOINT_MS);
                        e.entry("in_memory_secs", &sw.in_memory_secs);
                        e.entry("spill_secs", &sw.spill_secs);
                        e.entry("overhead_ratio", &(sw.spill_secs / sw.in_memory_secs.max(1e-9)));
                        e.entry("log_bytes", &sw.log_bytes);
                        e.entry("restore_secs", &sw.restore_secs);
                        e.end();
                    });
                    row.end();
                });
            }
            seq.end();
        });
        if let Some(headline) = workloads.iter().find(|w| w.name == "migratory_async_n3") {
            let four = headline
                .parallel
                .iter()
                .find(|p| p.threads == 4)
                .expect("4-thread sample")
                .states_per_sec()
                / headline.serial.states_per_sec();
            m.entry("acceptance_speedup_4t_migratory_async_n3", &four);
        }
        if let (Some(full), Some(red)) = (
            workloads.iter().find(|w| w.name == "migratory_async_n3"),
            workloads.iter().find(|w| w.name == sym_name),
        ) {
            m.entry(
                "symmetry_reduction_factor_migratory_async_n3",
                &(full.serial.report.states as f64 / red.serial.report.states as f64),
            );
        }
        m.end();
    }
    let json = s.into_string();
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out}");
    if let Some(path) = profile_path() {
        let w = workloads.iter().find(|w| w.name == "migratory_async_n3").unwrap_or(&workloads[0]);
        std::fs::write(&path, &w.attribution.par1_folded).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path} ({} 1-thread folded stacks)", w.name);
    }
}
