use ccr_mc::search::{explore_plain, Budget};
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;

fn main() {
    let budget = Budget { max_states: 3_000_000, ..Budget::default() };
    let mig = migratory_refined(&MigratoryOptions::checking_with_data(2));
    for n in [2u32, 3, 4] {
        let sys = AsyncSystem::new(&mig, n, AsyncConfig::default());
        let r = explore_plain(&sys, &budget);
        println!(
            "async migratory(data=2) n={n}: {} states {:?} in {:?}",
            r.states, r.outcome, r.elapsed
        );
    }
    let spec = mig.spec.clone();
    for n in [8u32, 16] {
        let sys = RendezvousSystem::new(&spec, n);
        let r = explore_plain(&sys, &budget);
        println!(
            "rv migratory(data=2) n={n}: {} states {:?} in {:?}",
            r.states, r.outcome, r.elapsed
        );
    }
    let inv = invalidate_refined(&InvalidateOptions { data_domain: Some(2) });
    for n in [2u32, 3] {
        let sys = AsyncSystem::new(&inv, n, AsyncConfig::default());
        let r = explore_plain(&sys, &budget);
        println!(
            "async invalidate(data=2) n={n}: {} states {:?} in {:?}",
            r.states, r.outcome, r.elapsed
        );
    }
    for n in [4u32, 6] {
        let sys = RendezvousSystem::new(&inv.spec, n);
        let r = explore_plain(&sys, &budget);
        println!(
            "rv invalidate(data=2) n={n}: {} states {:?} in {:?}",
            r.states, r.outcome, r.elapsed
        );
    }
}
