//! Message efficiency (§3.3 and §5): how many wire messages does each
//! protocol variant need per completed line acquisition?
//!
//! Compares, on identical DSM workloads and schedules:
//!
//! * **derived**      — the refinement with the request/reply optimization
//!   (the paper's procedure, Figures 4–5);
//! * **derived-noopt** — the refinement with every rendezvous paying the
//!   full request+ack cost (ablation of §3.3);
//! * **hand**         — the Avalanche hand design (no ack after `LR`): the
//!   baseline the paper says the derived protocol nearly matches.
//!
//! Run: `cargo run --release -p ccr-bench --bin messages`
//!
//! Pass `--trace <file>` to narrate every run to `<file>` as JSONL trace
//! events (one run after another, each ending with an `Outcome` line).
//! Pass `--seed <N>` to shift every workload and scheduler seed by `N`
//! (default 0, reproducing the canonical run).

use ccr_bench::cli::{seed_from_args, sink_from_args};
use ccr_bench::configs;
use ccr_core::refine::{refine, RefineOptions, RefinedProtocol, ReqRepMode};
use ccr_dsm::machine::{Machine, MachineConfig};
use ccr_dsm::workload::Migrating;
use ccr_protocols::hand::{hand_async_config, migratory_hand};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_runtime::sched::RandomSched;
use ccr_trace::TraceSink;

fn run(
    refined: &RefinedProtocol,
    variant: &str,
    n: u32,
    hand: bool,
    seed: u64,
    sink: &mut dyn TraceSink,
) {
    let mut config = MachineConfig::standard(refined, n, configs::MESSAGE_RUN_STEPS);
    if hand {
        config.asynch = hand_async_config(n);
    }
    let machine = Machine::new(refined, config);
    let mut wl = Migrating::new(1000 + n as u64 + seed, 0.7, 0.5);
    let mut sched = RandomSched::new(2000 + n as u64 + seed);
    let report = machine.run_observed(variant, &mut wl, &mut sched, sink).expect("machine run");
    println!("{}", report.summary());
}

fn main() {
    let mut sink = sink_from_args();
    let seed = seed_from_args();
    println!("Migratory message efficiency on a migrating workload");
    println!("(one line, {} machine steps, random scheduler):", configs::MESSAGE_RUN_STEPS);
    println!();
    let opts = MigratoryOptions { data_domain: None, cpu_gate: true };
    let spec = migratory(&opts);
    let derived = refine(&spec, &RefineOptions::default()).expect("refine");
    let noopt = refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).expect("refine");
    let hand = migratory_hand(&opts);
    for n in [2u32, 4, 8] {
        run(&derived, "derived", n, false, seed, &mut *sink);
        run(&noopt, "derived-noopt", n, false, seed, &mut *sink);
        run(&hand, "hand", n, true, seed, &mut *sink);
        println!();
    }
    println!("Static per-rendezvous cost (messages, successful case):");
    for (label, r) in [("derived", &derived), ("derived-noopt", &noopt), ("hand", &hand)] {
        let spec = &r.spec;
        let costs: Vec<String> = ["req", "gr", "LR", "inv", "ID"]
            .iter()
            .map(|m| {
                let mt = spec.msg_by_name(m).unwrap();
                format!("{m}={}", r.message_cost(mt))
            })
            .collect();
        println!("  {:<14} {}  (total {})", label, costs.join(" "), r.total_static_cost());
    }
    println!();
    println!("Paper §5: the hand design saves exactly the LR ack; 'the loss of");
    println!("efficiency due to the extra ack is small'. §3.3: the optimization");
    println!("halves req/gr and inv/ID from 4 messages to 2 per pair.");
}
