use ccr_core::text::to_text;
use ccr_protocols::invalidate::{invalidate, InvalidateOptions};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_protocols::token::token;
use ccr_protocols::update::{update, UpdateOptions};
use ccr_protocols::zoo::{zoo_chain, zoo_unsound_pair};
fn main() {
    std::fs::write("specs/token.ccp", to_text(&token())).unwrap();
    std::fs::write("specs/migratory.ccp", to_text(&migratory(&MigratoryOptions::checking())))
        .unwrap();
    std::fs::write(
        "specs/migratory_gated.ccp",
        to_text(&migratory(&MigratoryOptions { data_domain: Some(2), cpu_gate: true })),
    )
    .unwrap();
    std::fs::write(
        "specs/invalidate.ccp",
        to_text(&invalidate(&InvalidateOptions { data_domain: Some(2) })),
    )
    .unwrap();
    std::fs::write("specs/update.ccp", to_text(&update(&UpdateOptions { data_domain: Some(2) })))
        .unwrap();
    std::fs::write("specs/zoo_chain.ccp", to_text(&zoo_chain())).unwrap();
    std::fs::write("specs/zoo_unsound_pair.ccp", to_text(&zoo_unsound_pair())).unwrap();
    println!("specs written");
}
