//! The §5 scaling claim: "the rendezvous migratory protocol could be model
//! checked for up to 64 nodes using 32MB of memory, while the asynchronous
//! protocol can be model checked for only two nodes using 64MB".
//!
//! Run: `cargo run --release -p ccr-bench --bin scaling`
//!
//! Pass `--threads N` to route the reachability runs through the sharded
//! parallel engine (identical counts, wall-clock drops on large spaces).

use ccr_bench::cli::{explore_threaded, threads_from_args};
use ccr_bench::configs;
use ccr_mc::search::Budget;
use ccr_protocols::migratory::{migratory, migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use std::time::Duration;

fn main() {
    let threads = threads_from_args();
    let opts = MigratoryOptions::checking_with_data(configs::DATA_DOMAIN);
    let spec = migratory(&opts);
    if threads > 1 {
        println!("(parallel engine, {threads} threads)");
    }
    println!("Rendezvous migratory scaling (budget 32 MB, as in the paper):");
    println!(
        "| {:>3} | {:>10} | {:>12} | {:>10} | {:>9} |",
        "N", "states", "transitions", "store KB", "secs"
    );
    println!("|{:-<5}|{:-<12}|{:-<14}|{:-<12}|{:-<11}|", "", "", "", "", "");
    let budget = Budget {
        max_bytes: 32 << 20,
        max_time: Some(Duration::from_secs(120)),
        ..Budget::default()
    };
    for n in configs::SCALING_NS {
        let sys = RendezvousSystem::new(&spec, n);
        let r = explore_threaded(&sys, &budget, threads);
        println!(
            "| {:>3} | {:>10} | {:>12} | {:>10} | {:>9.3} |{}",
            n,
            r.states,
            r.transitions,
            r.store_bytes / 1024,
            r.elapsed.as_secs_f64(),
            if r.outcome.is_complete() { "" } else { "  (Unfinished)" }
        );
    }

    println!();
    println!("Asynchronous migratory under the same 32 MB budget:");
    println!("| {:>3} | {:>10} | {:>10} | {:>9} | outcome |", "N", "states", "store KB", "secs");
    println!("|{:-<5}|{:-<12}|{:-<12}|{:-<11}|---------|", "", "", "", "");
    let refined = migratory_refined(&opts);
    for n in [2u32, 3, 4, 5] {
        let sys = AsyncSystem::new(&refined, n, AsyncConfig::default());
        let r = explore_threaded(&sys, &budget, threads);
        println!(
            "| {:>3} | {:>10} | {:>10} | {:>9.3} | {} |",
            n,
            r.states,
            r.store_bytes / 1024,
            r.elapsed.as_secs_f64(),
            if r.outcome.is_complete() { "Complete" } else { "Unfinished" }
        );
    }
}
