//! Regenerates the paper's Table 3: states visited and time taken for
//! reachability analysis of the rendezvous and asynchronous versions of
//! the migratory and invalidate protocols, under a fixed memory budget.
//!
//! Run: `cargo run --release -p ccr-bench --bin table3`
//!
//! Pass `--threads N` to route the reachability runs through the sharded
//! parallel engine (identical counts, wall-clock drops on large spaces).

use ccr_bench::cli::{explore_threaded, threads_from_args};
use ccr_bench::configs;
use ccr_core::refine::RefinedProtocol;
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;

fn row(refined: &RefinedProtocol, protocol: &str, n: u32, threads: usize) -> (String, String) {
    let budget = configs::table3_budget();
    let asys = AsyncSystem::new(refined, n, AsyncConfig::default());
    let a = explore_threaded(&asys, &budget, threads);
    let rsys = RendezvousSystem::new(&refined.spec, n);
    let r = explore_threaded(&rsys, &budget, threads);
    let _ = protocol;
    (a.table_cell(), r.table_cell())
}

fn main() {
    let threads = threads_from_args();
    if threads > 1 {
        println!("(parallel engine, {threads} threads)");
    }
    println!("Table 3 reproduction — states visited / seconds for reachability");
    println!(
        "analysis (budget: {} states, {} MB, {:?}; 'Unfinished' = budget hit)",
        configs::table3_budget().max_states,
        configs::table3_budget().max_bytes >> 20,
        configs::table3_budget().max_time.unwrap()
    );
    println!();
    println!(
        "| {:<10} | {:>2} | {:>22} | {:>22} |",
        "Protocol", "N", "Asynchronous protocol", "Rendezvous protocol"
    );
    println!("|{:-<12}|{:-<4}|{:-<24}|{:-<24}|", "", "", "", "");

    let mig = migratory_refined(&MigratoryOptions::checking_with_data(configs::DATA_DOMAIN));
    for n in configs::MIGRATORY_NS {
        let (a, r) = row(&mig, "Migratory", n, threads);
        println!("| {:<10} | {:>2} | {:>22} | {:>22} |", "Migratory", n, a, r);
    }
    let inv = invalidate_refined(&InvalidateOptions { data_domain: Some(configs::DATA_DOMAIN) });
    for n in configs::INVALIDATE_NS {
        let (a, r) = row(&inv, "Invalidate", n, threads);
        println!("| {:<10} | {:>2} | {:>22} | {:>22} |", "Invalidate", n, a, r);
    }
    println!();
    println!("Paper's Table 3 (SPIN, 64 MB): migratory 23163/2.84 vs 54/0.1 at N=2,");
    println!("async Unfinished from N=4; invalidate 193389/19.23 vs 546/0.6 at N=2,");
    println!("async Unfinished from N=4. Absolute counts differ (different encoder");
    println!("granularity); the shape — rendezvous orders of magnitude cheaper, the");
    println!("asynchronous versions exceeding the budget as N grows — reproduces.");
}
