//! Shared command-line parsing and exploration helpers for the report
//! binaries, so every `--trace`/`--seed`/`--threads` flag behaves the
//! same across `table3`, `scaling`, `messages`, `buffers`, and `mc_perf`.

use ccr_mc::search::{explore_plain, Budget};
use ccr_mc::{explore_parallel, ExploreReport, ParallelConfig};
use ccr_runtime::TransitionSystem;
use ccr_trace::{JsonlSink, NullSink, TraceSink};

/// `--trace <file>` from the command line, as a boxed sink (`NullSink`
/// when absent).
pub fn sink_from_args() -> Box<dyn TraceSink> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            let path = args.get(i + 1).unwrap_or_else(|| {
                eprintln!("--trace requires a file argument");
                std::process::exit(2);
            });
            Box::new(JsonlSink::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(2);
            }))
        }
        None => Box::new(NullSink),
    }
}

/// `--seed <N>` from the command line (0 when absent: the canonical run).
pub fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--seed") {
        Some(i) => args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
            eprintln!("--seed requires an integer argument");
            std::process::exit(2);
        }),
        None => 0,
    }
}

/// `--threads <N>` from the command line (1 when absent: the serial
/// engine, exactly as before the flag existed).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--threads") {
        Some(i) => {
            args.get(i + 1).and_then(|s| s.parse().ok()).filter(|&t: &usize| t >= 1).unwrap_or_else(
                || {
                    eprintln!("--threads requires an integer argument >= 1");
                    std::process::exit(2);
                },
            )
        }
        None => 1,
    }
}

/// Plain reachability through the engine selected by `threads`: the
/// serial [`explore_plain`] at 1, the sharded [`explore_parallel`]
/// otherwise. Complete runs report identical states/transitions either
/// way, so tables stay comparable across thread counts.
pub fn explore_threaded<T>(sys: &T, budget: &Budget, threads: usize) -> ExploreReport
where
    T: TransitionSystem + Sync,
    T::State: Send,
{
    if threads > 1 {
        explore_parallel(sys, budget, |_| None, false, &ParallelConfig::threads(threads))
            .explore_report()
    } else {
        explore_plain(sys, budget)
    }
}
