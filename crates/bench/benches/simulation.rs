//! Criterion benchmark of the DSM machine: steps/second of the verified
//! global executor under workloads, derived vs hand variants, and the
//! deployment-style threaded engines.

use ccr_bench::configs;
use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_dsm::machine::{Machine, MachineConfig};
use ccr_dsm::threaded::{run_threaded, ThreadedConfig};
use ccr_dsm::workload::Migrating;
use ccr_protocols::hand::{hand_async_config, migratory_hand};
use ccr_protocols::migratory::{migratory, MigratoryOptions};
use ccr_runtime::sched::RandomSched;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const STEPS: u64 = 20_000;

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation");
    group.sample_size(10);
    let _ = configs::MESSAGE_RUN_STEPS;

    let opts = MigratoryOptions::default();
    let spec = migratory(&opts);
    let derived = refine(&spec, &RefineOptions::default()).unwrap();
    let noopt = refine(&spec, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap();
    let hand = migratory_hand(&opts);

    for (label, refined, hand_mode) in
        [("derived", &derived, false), ("noopt", &noopt, false), ("hand", &hand, true)]
    {
        group.bench_function(format!("machine/migratory/{label}/n4"), |b| {
            b.iter(|| {
                let mut config = MachineConfig::standard(refined, 4, STEPS);
                if hand_mode {
                    config.asynch = hand_async_config(4);
                }
                let machine = Machine::new(refined, config);
                let mut wl = Migrating::new(3, 0.7, 0.5);
                let mut sched = RandomSched::new(4);
                let report = machine.run(label, &mut wl, &mut sched).unwrap();
                assert!(!report.deadlocked);
                black_box(report.ops)
            })
        });
    }

    group.bench_function("threaded/migratory/n4/500ops", |b| {
        b.iter(|| {
            let config = ThreadedConfig { n: 4, target_ops: 500, ..Default::default() };
            let report = run_threaded(&derived, &config);
            assert!(report.error.is_none());
            black_box(report.ops)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
