//! Criterion benchmark of the refinement procedure itself: building,
//! validating and refining each protocol spec, and the Equation 1
//! simulation check over a full (small) asynchronous state space. The
//! refinement is the compile-time step of the paper's workflow, so its cost
//! matters for spec-edit-verify loops.

use ccr_core::refine::{refine, RefineOptions, ReqRepMode};
use ccr_mc::search::Budget;
use ccr_mc::simrel::check_simulation;
use ccr_protocols::invalidate::{invalidate, InvalidateOptions};
use ccr_protocols::migratory::{migratory, migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");

    group.bench_function("build/migratory", |b| {
        b.iter(|| black_box(migratory(&MigratoryOptions::default())))
    });
    group.bench_function("build/invalidate", |b| {
        b.iter(|| black_box(invalidate(&InvalidateOptions::default())))
    });

    let mig = migratory(&MigratoryOptions::default());
    let inv = invalidate(&InvalidateOptions::default());
    group.bench_function("refine/migratory/auto", |b| {
        b.iter(|| black_box(refine(&mig, &RefineOptions::default()).unwrap()))
    });
    group.bench_function("refine/migratory/off", |b| {
        b.iter(|| black_box(refine(&mig, &RefineOptions { reqrep: ReqRepMode::Off }).unwrap()))
    });
    group.bench_function("refine/invalidate/auto", |b| {
        b.iter(|| black_box(refine(&inv, &RefineOptions::default()).unwrap()))
    });

    // The soundness check (Equation 1) over migratory at n=2.
    let refined = migratory_refined(&MigratoryOptions::checking());
    group.bench_function("simrel/migratory/n2", |b| {
        b.iter(|| {
            let rv = RendezvousSystem::new(&refined.spec, 2);
            let asys = AsyncSystem::new(&refined, 2, AsyncConfig::default());
            let r = check_simulation(&asys, &rv, &Budget::default());
            assert!(r.holds());
            black_box(r.transitions_checked)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
