//! Criterion benchmark over the Table 3 reachability runs: wall time of
//! exploring each protocol/semantics/N cell (bounded cells only, so the
//! benchmark terminates quickly; the budget blow-ups are demonstrated by
//! the `table3` report binary).

use ccr_bench::configs;
use ccr_mc::search::{explore_plain, Budget};
use ccr_protocols::invalidate::{invalidate_refined, InvalidateOptions};
use ccr_protocols::migratory::{migratory_refined, MigratoryOptions};
use ccr_runtime::asynch::{AsyncConfig, AsyncSystem};
use ccr_runtime::rendezvous::RendezvousSystem;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);

    let mig = migratory_refined(&MigratoryOptions::checking_with_data(configs::DATA_DOMAIN));
    for n in [2u32, 4] {
        group.bench_function(format!("migratory/rendezvous/n{n}"), |b| {
            let sys = RendezvousSystem::new(&mig.spec, n);
            b.iter(|| black_box(explore_plain(&sys, &Budget::default()).states))
        });
        group.bench_function(format!("migratory/async/n{n}"), |b| {
            let sys = AsyncSystem::new(&mig, n, AsyncConfig::default());
            b.iter(|| black_box(explore_plain(&sys, &Budget::default()).states))
        });
    }

    let inv = invalidate_refined(&InvalidateOptions { data_domain: Some(configs::DATA_DOMAIN) });
    group.bench_function("invalidate/rendezvous/n2", |b| {
        let sys = RendezvousSystem::new(&inv.spec, 2);
        b.iter(|| black_box(explore_plain(&sys, &Budget::default()).states))
    });
    group.bench_function("invalidate/async/n2", |b| {
        let sys = AsyncSystem::new(&inv, 2, AsyncConfig::default());
        b.iter(|| black_box(explore_plain(&sys, &Budget::default()).states))
    });

    // The 64-node rendezvous scaling point of §5.
    group.bench_function("migratory/rendezvous/n64", |b| {
        let sys = RendezvousSystem::new(&mig.spec, 64);
        b.iter(|| black_box(explore_plain(&sys, &Budget::default()).states))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
