//! A small JSON syntax validator.
//!
//! The workspace has no JSON *parser* dependency (the build is hermetic),
//! but tests and tools still want to assert that emitted trace lines and
//! `--json` reports are well-formed. This is a strict recursive-descent
//! recognizer for RFC 8259 JSON — it validates, it does not build values.

/// Whether `s` is exactly one well-formed JSON value (with optional
/// surrounding whitespace).
pub fn is_valid_json(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0;
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if !string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) != Some(&b'"') {
        return false;
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1F => return false,
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            return false;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::is_valid_json;

    #[test]
    fn accepts_well_formed() {
        for ok in [
            "null",
            "true",
            "-12.5e3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":1,\"b\":{\"c\":[true,null]}}",
            "  {\"x\" : 0}  ",
        ] {
            assert!(is_valid_json(ok), "{ok}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            "+1",
            "\"unterminated",
            "nul",
            "[1] []",
            "{\"a\" 1}",
        ] {
            assert!(!is_valid_json(bad), "{bad}");
        }
    }
}
